"""IoT dashboard scenario — the paper's motivating workload (Section I).

Azure IoT Central hosts thousands of dashboard queries: the *same*
aggregate over the *same* device stream at several horizons (5-minute
tile, hourly chart, daily summary...).  This example drives the full
declarative pipeline: an ASA-like SQL query over a multi-device
temperature stream, compiled, optimized, rewritten, and executed — then
shows the dashboard values and the work saved.

Run with:  python examples/iot_dashboard.py
"""

import numpy as np

from repro import execute_plan, plan_query, to_trill
from repro.engine import make_batch

QUERY = """
SELECT DeviceID, System.Window().Id, MIN(Temperature) AS MinTemp
FROM Telemetry TIMESTAMP BY EntryTime
GROUP BY DeviceID, WINDOWS(
    WINDOW('5 min tile',  TUMBLING(minute, 5)),
    WINDOW('15 min tile', TUMBLING(minute, 15)),
    WINDOW('30 min tile', TUMBLING(minute, 30)),
    WINDOW('hourly',      TUMBLING(minute, 60)),
    WINDOW('2h chart',    TUMBLING(minute, 120)))
"""


def telemetry_stream(devices: int = 4, hours: int = 8, seed: int = 21):
    """One reading per device per second with per-device base levels."""
    rng = np.random.default_rng(seed)
    horizon = hours * 3600
    timestamps = np.repeat(np.arange(horizon), devices)
    keys = np.tile(np.arange(devices), horizon)
    base = rng.uniform(18.0, 26.0, devices)
    daily = 3.0 * np.sin(2 * np.pi * timestamps / (24 * 3600.0))
    noise = rng.normal(0.0, 0.8, horizon * devices)
    values = base[keys] + daily + noise
    return make_batch(
        timestamps, values, keys=keys, num_keys=devices, horizon=horizon
    )


def main() -> None:
    planned = plan_query(QUERY)
    print("=== Optimizer decision ===")
    print(planned.optimization.summary())
    print()
    print("=== Executable form (Trill-style, as ASA would emit) ===")
    print(to_trill(planned.best_plan))
    print()

    batch = telemetry_stream()
    original = execute_plan(planned.original, batch)
    best = execute_plan(planned.best_plan, batch)

    print("=== Work comparison over an 8-hour, 4-device stream ===")
    print(f"original plan  : {original.stats.total_pairs:>12,} pairs")
    print(f"optimized plan : {best.stats.total_pairs:>12,} pairs")
    saved = 1 - best.stats.total_pairs / original.stats.total_pairs
    print(f"work saved     : {saved:.1%}")
    print()

    print("=== Dashboard: hourly MIN temperature per device ===")
    hourly = next(w for w in best.results if w.name == "hourly")
    table = best.results[hourly]
    hours = table.shape[1]
    header = "device | " + " | ".join(f"h{h:<4d}" for h in range(hours))
    print(header)
    for device in range(table.shape[0]):
        row = " | ".join(f"{table[device, h]:5.1f}" for h in range(hours))
        print(f"   d{device}  | {row}")

    # Sanity: both plans agree on every dashboard tile.
    for window in original.results:
        np.testing.assert_allclose(
            original.results[window], best.results[window], equal_nan=True
        )
    print("\nOriginal and optimized dashboards are identical.")


if __name__ == "__main__":
    main()
