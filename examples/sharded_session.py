"""A key-sharded live session: one stream, N parallel shard cores.

The paper's motivating service (Azure IoT Central, Section I) watches
*millions* of devices; one core over one stream caps out long before
that.  :class:`repro.runtime.ShardedSession` hash-partitions the
device-key space across N shard-local session cores behind one
coordinator clock (DESIGN.md §7) — and guarantees the merged results
are identical at every shard count (invariant 10).

The script runs the same dashboard workload five ways:

1. a 1-shard baseline (the plain ``QuerySession`` semantics);
2. 4 shards on the deterministic in-process backend;
3. 4 shards on the ``multiprocessing`` backend, shipping columnar
   chunk slices to one worker process per shard over pipes;
4. 4 shards on the shared-memory backend (``shm``): the same workers
   fed through per-shard SPSC rings — no pickling on the data plane
   (DESIGN.md §8);
5. the shm configuration again behind the non-blocking async ingest
   front door (``async_ingest=True``);

registering along the way:

* two per-key dashboards (merged per shard, concatenated by key at
  the coordinator),
* a *global* AVG across every device (shards emit pre-finalize
  partials reduced over their keys; the coordinator ``combine``s and
  finalizes — the only sound way to merge an algebraic aggregate),
* a *global* MEDIAN (holistic: no partial form exists, so raw values
  forward to a coordinator-local core),

and verifies all five runs agree bit-for-bit.

Run with:  python examples/sharded_session.py
"""

import time

import numpy as np

from repro import ShardedSession
from repro.workloads.streams import constant_rate_stream

NUM_KEYS = 64
EVENTS = 200_000

PER_KEY_MIN = (
    "SELECT DeviceID, MIN(Reading) FROM Sensors "
    "GROUP BY DeviceID, WINDOWS(HOPPING(second, 300, 50), "
    "HOPPING(second, 600, 100))"
)
PER_KEY_SUM = (
    "SELECT DeviceID, SUM(Reading) FROM Sensors "
    "GROUP BY DeviceID, WINDOWS(HOPPING(second, 400, 80))"
)
GLOBAL_AVG = (
    "SELECT AVG(Reading) FROM Sensors "
    "GROUP BY WINDOWS(HOPPING(second, 480, 120))"
)
GLOBAL_MEDIAN = (
    "SELECT MEDIAN(Reading) FROM Sensors "
    "GROUP BY WINDOWS(TUMBLING(second, 240))"
)


def run(num_shards: int, backend: str, async_ingest: bool = False):
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=num_shards,
        backend=backend,
        hysteresis=None,
        async_ingest=async_ingest,
    )
    try:
        session.register(PER_KEY_MIN, name="mins")
        session.register(PER_KEY_SUM, name="sums")
        session.register(GLOBAL_AVG, name="fleet_avg", scope="global")
        session.register(GLOBAL_MEDIAN, name="fleet_median", scope="global")
        stream = constant_rate_stream(
            EVENTS, num_keys=NUM_KEYS, rate=8, seed=11
        )
        started = time.perf_counter()
        session.push_batch(stream)  # the vectorized sorted fast path
        results = session.finish(horizon=stream.horizon)
        wall = time.perf_counter() - started
        stats = session.stats()
    finally:
        session.close()
    return results, wall, stats


def main() -> None:
    print(f"{EVENTS:,} events, {NUM_KEYS} device keys\n")
    baseline, base_wall, base_stats = run(1, "serial")
    configs = [
        (4, "serial", False),
        (4, "process", False),
        (4, "shm", False),
        (4, "shm", True),
    ]
    print(f"{'config':>18}: {'K ev/s':>9}  vs 1-shard")
    print(f"{'serial x1':>18}: {EVENTS / base_wall / 1e3:>9,.0f}  1.00x")
    for num_shards, backend, async_ingest in configs:
        results, wall, stats = run(num_shards, backend, async_ingest)
        # Invariant 10: per-key results (and raw-forwarded holistics)
        # are bit-identical at every shard count even for float
        # streams; the global partial merge reassociates the cross-key
        # float sum, so it is exact-to-reassociation here (and
        # bit-exact on integer streams — see the property tests).
        for name, by_window in baseline.items():
            for window, reference in by_window.items():
                emitted = results[name][window].values
                if name == "fleet_avg":
                    np.testing.assert_allclose(
                        emitted, reference.values, rtol=1e-12
                    )
                else:
                    np.testing.assert_array_equal(
                        emitted, reference.values
                    )
        assert stats.pairs_per_window == base_stats.pairs_per_window
        label = f"{backend} x{num_shards}" + (
            " +async" if async_ingest else ""
        )
        print(
            f"{label:>18}: {EVENTS / wall / 1e3:>9,.0f}  "
            f"{base_wall / wall:.2f}x"
        )
    print(
        "\nall configurations agree: per-key and forwarded results "
        "bit-identical,\nglobal partial merges exact to float "
        "reassociation"
    )

    fleet_avg = next(iter(baseline["fleet_avg"].values()))
    fleet_median = next(iter(baseline["fleet_median"].values()))
    print(
        f"\nfleet AVG    row shape {fleet_avg.values.shape} "
        f"(instances [{fleet_avg.start_instance}, {fleet_avg.frontier}))"
    )
    print(
        f"fleet MEDIAN row shape {fleet_median.values.shape} "
        "(raw-forwarded: holistic aggregates have no partial form)"
    )


if __name__ == "__main__":
    main()
