"""Multi-query sharing — the IoT Central workload (paper Section I).

"Microsoft's Azure IoT Central service hosts thousands of concurrently
running dashboard queries ... it is very common to see multiple (e.g.,
5 to 10) queries over the same event stream but with varying window
sizes."  The paper optimizes one query at a time; this example uses the
workload extension in ``repro.core.multiquery`` to share operators and
factor windows *across* queries.

Run with:  python examples/multi_query_dashboards.py
"""

from repro import MIN, AVG, WindowSet, tumbling
from repro.core.multiquery import Query, optimize_workload
from repro.plans.render import to_tree

MINUTE = 60


def dashboard_workload() -> list[Query]:
    """Six downstream applications watching one device stream."""
    return [
        Query(
            "ops-wallboard",
            WindowSet([tumbling(5 * MINUTE), tumbling(15 * MINUTE)]),
            MIN,
        ),
        Query(
            "mobile-app",
            WindowSet([tumbling(15 * MINUTE), tumbling(60 * MINUTE)]),
            MIN,
        ),
        Query(
            "daily-report",
            WindowSet([tumbling(60 * MINUTE), tumbling(180 * MINUTE)]),
            MIN,
        ),
        Query(
            "alerting",
            WindowSet([tumbling(10 * MINUTE)]),
            MIN,
        ),
        Query(
            "capacity-planner",
            WindowSet([tumbling(30 * MINUTE), tumbling(90 * MINUTE)]),
            AVG,
        ),
        Query(
            "billing",
            WindowSet([tumbling(90 * MINUTE)]),
            AVG,
        ),
    ]


def main() -> None:
    workload = optimize_workload(dashboard_workload())

    print("=== Workload optimization summary ===")
    print(workload.summary())
    print()

    for group in workload.groups:
        names = ", ".join(q.name for q in group.queries)
        print(f"=== Shared group: {group.aggregate.name.upper()} ({names}) ===")
        if group.gmin is None:
            print("(holistic aggregate: queries run independently)\n")
            continue
        factors = ", ".join(w.label for w in group.gmin.factor_windows)
        print(f"factor windows injected: {factors or 'none'}")
        print(to_tree(group.plan))
        print()

    # Where the sharing comes from: duplicated windows collapse
    # (15 min, 60 min and 90 min each appear in two queries) and
    # cross-query coverage lets one query's windows feed another's.
    gains = workload.sharing_gain
    print(f"Sharing across queries pays {gains:.2f}x on top of per-query")
    print("optimization — without changing any query's results.")


if __name__ == "__main__":
    main()
