"""DEBS-2012-style manufacturing monitoring (the paper's real dataset).

The paper's Real-32M experiment aggregates the ``mf01`` power sensor of
manufacturing equipment over correlated windows.  This example runs a
hopping-window AVG + a MIN/MAX envelope over a DEBS-like stream and
compares all plan variants, including the Scotty-style slicing
baseline (Section V-F).

Run with:  python examples/debs_manufacturing.py
"""

from repro import (
    AVG,
    MAX,
    MIN,
    WindowSet,
    execute_plan,
    execute_sliced,
    hopping,
    optimize,
    original_plan,
    rewrite_plan,
)
from repro.workloads import debs_like_stream


def monitoring_windows() -> WindowSet:
    """Sliding dashboards: 2-min/4-min/8-min views refreshed every minute."""
    minute = 60
    return WindowSet(
        [
            hopping(2 * minute, minute, name="2 min"),
            hopping(4 * minute, minute, name="4 min"),
            hopping(8 * minute, minute, name="8 min"),
            hopping(16 * minute, 2 * minute, name="16 min"),
        ]
    )


def run_aggregate(name, aggregate, windows, batch) -> None:
    print(f"--- {name} over mf01 ---")
    result = optimize(windows, aggregate)
    print(result.summary())

    original = execute_plan(original_plan(windows, aggregate), batch)
    rows = [("original", original)]
    if result.best is not None:
        best_plan = rewrite_plan(result.best, aggregate)
        rows.append(("optimized", execute_plan(best_plan, batch)))
    sliced = execute_sliced(windows, aggregate, batch)

    for label, execution in rows:
        print(
            f"{label:10s} throughput={execution.stats.throughput / 1e6:6.2f}M ev/s"
            f"  work={execution.stats.total_pairs:>10,} pairs"
        )
    print(
        f"{'scotty':10s} throughput={sliced.stats.throughput / 1e6:6.2f}M ev/s"
        f"  work={sliced.stats.total_pairs:>10,} pairs"
    )
    print()


def main() -> None:
    batch = debs_like_stream(500_000, seed=7)
    windows = monitoring_windows()
    print(
        f"stream: {batch.num_events:,} readings, horizon "
        f"{batch.horizon:,} s  (DEBS-like mf01 signal)\n"
    )

    # MIN/MAX exploit the general covered-by relation (Theorem 6)...
    run_aggregate("MIN envelope", MIN, windows, batch)
    run_aggregate("MAX envelope", MAX, windows, batch)
    # ...while AVG (algebraic) is restricted to partitioned-by, where
    # hopping windows can only be fed by tumbling providers — factor
    # windows earn their keep here.
    run_aggregate("AVG power", AVG, windows, batch)


if __name__ == "__main__":
    main()
