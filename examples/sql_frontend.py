"""SQL front-end tour: parse, inspect, optimize, and render queries.

Demonstrates the ASA-like dialect end to end, including how the
optimizer's decision changes with the aggregate function: MIN can use
the general covered-by relation; SUM is restricted to partitioned-by;
MEDIAN (holistic) cannot share at all and keeps the original plan.

Run with:  python examples/sql_frontend.py
"""

from repro import parse, plan_query, to_flink, to_tree, to_trill

TEMPLATE = """
SELECT DeviceID, {agg}(Reading) AS Value
FROM Sensors TIMESTAMP BY EventTime
GROUP BY DeviceID, WINDOWS(
    WINDOW('fast',   HOPPING(second, 120, 60)),
    WINDOW('medium', HOPPING(second, 240, 60)),
    WINDOW('slow',   HOPPING(second, 480, 120)))
"""


def show_ast() -> None:
    print("=== Parsed AST (MIN variant) ===")
    query = parse(TEMPLATE.format(agg="MIN"))
    print(f"source      : {query.source}")
    print(f"timestamp by: {query.timestamp_column}")
    print(f"group keys  : {[str(k) for k in query.group_keys]}")
    for definition in query.window_defs:
        print(f"window      : {definition}")
    print()


def show_optimizations() -> None:
    for agg in ("MIN", "SUM", "MEDIAN"):
        print(f"=== {agg} ===")
        planned = plan_query(TEMPLATE.format(agg=agg))
        print(planned.optimization.summary())
        print(to_tree(planned.best_plan))
        print()


def show_renderings() -> None:
    planned = plan_query(TEMPLATE.format(agg="MIN"))
    print("=== Trill-style rendering of the best plan ===")
    print(to_trill(planned.best_plan))
    print()
    print("=== Flink DataStream-style rendering ===")
    print(to_flink(planned.best_plan))


def main() -> None:
    show_ast()
    show_optimizations()
    show_renderings()


if __name__ == "__main__":
    main()
