"""Adaptive re-optimization under drifting event rates (§VI future work).

The paper's cost model is static in the event rate η, and Section VI
names runtime adaptation as future work.  This example demonstrates the
prototype in ``repro.core.adaptive``: a stream whose rate ramps up and
back down, three planning policies (static / adaptive / oracle), and
the cost each pays per epoch.

Why the optimal plan depends on the rate: raw-event reads cost η·r per
window instance while sub-aggregate reads cost the covering multiplier
M independently of η.  At low rates a factor window's own raw pass can
outweigh what it saves downstream; at high rates it pays for itself
many times over.

Run with:  python examples/adaptive_rates.py
"""

from repro import MIN, WindowSet, hopping
from repro.core.adaptive import simulate_adaptive
from repro.bench.charts import sparkline


def main() -> None:
    # Two sliding dashboards whose optimal plan provably flips with the
    # rate: a W(2,1) factor window costs 36·η − 70 — a loss below
    # η = 2, a win above (see tests/core/test_adaptive.py).
    windows = WindowSet([hopping(6, 3), hopping(8, 4)])
    trace = [1] * 6 + [5, 20, 60, 120, 120, 120, 60, 20, 5] + [1] * 6

    outcome = simulate_adaptive(
        windows, MIN, trace, hysteresis=0.2, alpha=1.0
    )

    print("rate trace (events/tick):", trace)
    print("                        ", sparkline([float(r) for r in trace]))
    print()
    print("=== Plan switches chosen by the adaptive optimizer ===")
    for switch in outcome.switches:
        kind = "with factor windows" if switch.used_factors else "plain rewrite"
        print(
            f"epoch {switch.epoch:>2}: rate={switch.rate:>3}/tick -> "
            f"{kind} (plan cost {switch.cost})"
        )
    print()
    print("=== Total cost over the trace (inputs processed) ===")
    print(f"static plan (rate of epoch 0) : {outcome.static_cost:>12,}")
    print(f"adaptive policy               : {outcome.adaptive_cost:>12,}")
    print(f"oracle (re-plan every epoch)  : {outcome.oracle_cost:>12,}")
    print()
    print(f"adaptive saves {outcome.savings_vs_static:.1%} vs static;")
    print(f"regret vs oracle: {outcome.regret:.3f}x")


if __name__ == "__main__":
    main()
