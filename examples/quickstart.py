"""Quickstart: optimize and execute a multi-window aggregate query.

Reproduces the paper's running example (Examples 1, 6 and 7): MIN over
tumbling windows of 20, 30 and 40 time units.  Shows the three plans —
original, rewritten, rewritten with factor windows — their predicted
costs, and their identical results and measured work on a real stream.

Run with:  python examples/quickstart.py
"""

from repro import (
    MIN,
    WindowSet,
    execute_plan,
    optimize,
    original_plan,
    results_equal,
    rewrite_plan,
    to_tree,
    tumbling,
)
from repro.workloads import constant_rate_stream


def main() -> None:
    # 1. The query's window set: MIN every 20 / 30 / 40 time units.
    windows = WindowSet([tumbling(20), tumbling(30), tumbling(40)])

    # 2. Cost-based optimization (Algorithms 1 and 3 of the paper).
    result = optimize(windows, MIN)
    print("=== Optimizer summary (paper's Example 7: 360 -> 246 -> 150) ===")
    print(result.summary())
    print()

    # 3. Build all three plans.
    plans = {
        "original": original_plan(windows, MIN),
        "rewritten": rewrite_plan(result.without_factors, MIN),
        "with factor windows": rewrite_plan(
            result.with_factors, MIN, description="rewritten+factors"
        ),
    }
    print("=== Best plan (Figure 2(c) of the paper) ===")
    print(to_tree(plans["with factor windows"]))
    print()

    # 4. Execute on a constant-rate stream and compare.
    batch = constant_rate_stream(240_000)
    print("=== Execution (240k events) ===")
    executions = {}
    for name, plan in plans.items():
        executions[name] = execute_plan(plan, batch)
        stats = executions[name].stats
        print(
            f"{name:22s} throughput={stats.throughput / 1e6:6.2f}M events/s"
            f"  work={stats.total_pairs:>9,} pairs"
        )

    # 5. The optimizer never changes answers — only how fast they come.
    assert results_equal(executions["original"], executions["rewritten"])
    assert results_equal(
        executions["original"], executions["with factor windows"]
    )
    print("\nAll three plans produced identical window results.")


if __name__ == "__main__":
    main()
