"""A live dashboard session: dynamic queries over one device stream.

This example replaces the old simulation-only ``adaptive_rates.py``
flow: instead of replaying a rate trace against hypothetical plans, a
:class:`repro.runtime.QuerySession` actually *runs* — dashboards open
and close mid-stream, the event rate ramps up and back down, and the
session re-optimizes and switches shared plans live, at watermark
boundaries, without ever recomputing history or emitting a wrong
result (DESIGN.md §6, invariant 9).

The script streams out-of-order events through the session while:

1. a MIN dashboard is registered before any data;
2. a second MIN dashboard opens mid-stream — the optimizer reroutes
   the first dashboard's windows through the newcomer's smaller
   window, transplanting operator state;
3. the rate ramps 1 -> 30 events/tick, flipping the plan to a
   factor-window one (and back when the burst ends);
4. one dashboard closes again, retiring its operators.

Run with:  python examples/live_session.py
"""

import numpy as np

from repro import QuerySession
from repro.engine.outoforder import scramble_batch
from repro.engine.events import EventBatch

FAST = (
    "SELECT DeviceID, MIN(Reading) AS Fast FROM Sensors "
    "GROUP BY DeviceID, WINDOWS(HOPPING(second, 6, 3), "
    "HOPPING(second, 8, 4))"
)
HOURLY = (
    "SELECT DeviceID, MIN(Reading) AS Hourly FROM Sensors "
    "GROUP BY DeviceID, WINDOWS(TUMBLING(second, 2))"
)


def bursty_stream(seed: int = 7) -> EventBatch:
    """Integer-valued stream: rate 1, then a 30x burst, then rate 1."""
    rng = np.random.default_rng(seed)
    parts = []
    t0 = 0
    for rate, span in ((1, 600), (30, 600), (1, 600)):
        parts.append(np.repeat(np.arange(t0, t0 + span), rate))
        t0 += span
    ts = np.concatenate(parts)
    return EventBatch(
        timestamps=ts.astype(np.int64),
        keys=np.zeros(ts.size, dtype=np.int64),
        values=rng.integers(0, 100, ts.size).astype(np.float64),
        horizon=t0,
        num_keys=1,
    )


def main() -> None:
    batch = bursty_stream()
    events = scramble_batch(batch, max_lateness=5, seed=3)

    session = QuerySession(
        num_keys=1, max_lateness=5, hysteresis=0.5, alpha=0.6
    )
    fast = session.register(FAST, name="fast")
    print(f"registered {fast!r} before any data")

    n = len(events)
    opened = closed = False
    for i, (ts, key, value) in enumerate(events):
        if not opened and i >= n // 4:
            session.register(HOURLY, name="hourly")
            print(f"registered 'hourly' at watermark {session.watermark}")
            opened = True
        if opened and not closed and i >= 4 * n // 5:
            session.deregister("hourly")
            print(f"deregistered 'hourly' at watermark {session.watermark}")
            closed = True
        session.push(ts, key, value)
    results = session.finish(horizon=batch.horizon)

    print()
    print("=== Plan switches (all watermark-safe) ===")
    for switch in session.switches:
        print(f"  {switch}")

    print()
    print("=== Emitted results ===")
    for name, by_window in sorted(results.items()):
        for window, emitted in sorted(
            by_window.items(), key=lambda kv: (kv[0].range, kv[0].slide)
        ):
            print(
                f"  {name:7s} {window}: instances "
                f"[{emitted.start_instance}, {emitted.frontier}) "
                f"last value {emitted.values[0, -1]:.1f}"
            )

    stats = session.stats()
    print()
    print("=== Session counters ===")
    print(f"  events processed : {session.reorder_stats.accepted:,}")
    print(f"  late drops       : {session.reorder_stats.late_dropped:,}")
    print(f"  logical pairs    : {stats.total_pairs:,}")
    print(f"  physical touches : {stats.total_physical:,}")
    print(f"  physical/logical : {stats.physical_fraction:.3f}")
    rate_switches = [s for s in session.switches if s.reason == "rate"]
    print(f"  rate re-plans    : {len(rate_switches)} (burst detected "
          f"live, hysteresis suppressed jitter)")


if __name__ == "__main__":
    main()
