"""Tests for the chunked (vectorized-block) streaming executor."""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MEDIAN, MIN, SUM
from repro.core.optimizer import min_cost_wcg_with_factors
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.engine.streaming import ChunkedStreamingExecutor
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet


@pytest.fixture
def batch():
    rng = np.random.default_rng(23)
    n = 300
    return make_batch(
        np.sort(rng.integers(0, 200, n)),
        rng.normal(5, 2, n),
        keys=rng.integers(0, 2, n),
        num_keys=2,
        horizon=200,
    )


class TestChunkedMatchesReference:
    @pytest.mark.parametrize("aggregate", [MIN, SUM, AVG])
    @pytest.mark.parametrize("chunk_ticks", [1, 7, 30, 500])
    def test_original_plan_any_chunking(self, batch, aggregate, chunk_ticks):
        plan = original_plan(
            WindowSet([Window(10, 10), Window(20, 10), Window(30, 30)]),
            aggregate,
        )
        reference = execute_plan(plan, batch, engine="columnar")
        chunked = execute_plan(
            plan, batch, engine="streaming-chunked", chunk_ticks=chunk_ticks
        )
        assert results_equal(reference, chunked)
        assert (
            reference.stats.pairs_per_window == chunked.stats.pairs_per_window
        )

    def test_factor_plan(self, batch, example7_windows):
        gmin, _ = min_cost_wcg_with_factors(
            example7_windows, CoverageSemantics.PARTITIONED_BY
        )
        plan = rewrite_plan(gmin, MIN)
        reference = execute_plan(plan, batch, engine="streaming")
        chunked = execute_plan(plan, batch, engine="streaming-chunked")
        assert results_equal(reference, chunked)
        assert (
            reference.stats.pairs_per_window == chunked.stats.pairs_per_window
        )

    def test_holistic_plan(self, batch):
        plan = original_plan(WindowSet([Window(20, 10)]), MEDIAN)
        reference = execute_plan(plan, batch, engine="columnar")
        chunked = execute_plan(plan, batch, engine="streaming-chunked")
        assert results_equal(reference, chunked)

    def test_sparse_stream_with_gaps(self):
        # Long empty stretches: instance closes must not depend on
        # events arriving in every chunk.
        batch = make_batch([3, 150, 151, 490], [1.0, 2.0, 3.0, 4.0], horizon=500)
        plan = original_plan(WindowSet([Window(20, 10)]), SUM)
        reference = execute_plan(plan, batch, engine="columnar")
        chunked = execute_plan(
            plan, batch, engine="streaming-chunked", chunk_ticks=35
        )
        assert results_equal(reference, chunked)


class TestBoundedState:
    def test_open_state_is_bounded_in_stream_length(self):
        # Identical window set, growing stream: the high-water mark of
        # retained state must not grow with the horizon.
        window = Window(40, 10)  # panes of 10, r/p = 4
        marks = []
        for n in (500, 2_000, 8_000):
            batch = make_batch(
                np.arange(n), np.sin(np.arange(n) / 3.0), horizon=n
            )
            plan = original_plan(WindowSet([window]), MIN)
            executor = ChunkedStreamingExecutor(plan, batch, chunk_ticks=50)
            executor.run()
            marks.append(executor.max_retained_state())
        assert marks[0] == marks[1] == marks[2]
        # r/p panes for open instances + chunk/p panes in flight.
        assert marks[0] <= 40 // 10 + 50 // 10 + 1

    def test_subagg_state_is_bounded(self, example7_windows):
        gmin, _ = min_cost_wcg_with_factors(
            example7_windows, CoverageSemantics.PARTITIONED_BY
        )
        plan = rewrite_plan(gmin, MIN)
        marks = []
        for n in (600, 4_800):
            batch = make_batch(
                np.arange(n), np.cos(np.arange(n) / 5.0), horizon=n
            )
            executor = ChunkedStreamingExecutor(plan, batch, chunk_ticks=60)
            executor.run()
            marks.append(executor.max_retained_state())
        assert marks[0] == marks[1]

    def test_holistic_event_buffer_is_bounded(self):
        window = Window(30, 10)
        marks = []
        for n in (300, 3_000):
            batch = make_batch(
                np.arange(n), np.sin(np.arange(n)), horizon=n
            )
            plan = original_plan(WindowSet([window]), MEDIAN)
            executor = ChunkedStreamingExecutor(plan, batch, chunk_ticks=40)
            executor.run()
            marks.append(executor.max_retained_state())
        assert marks[0] == marks[1]
        assert marks[0] <= 30 + 40  # r + chunk ticks of buffered events


class TestChunkedValidation:
    def test_bad_chunk_ticks_rejected(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        with pytest.raises(ExecutionError):
            ChunkedStreamingExecutor(plan, batch, chunk_ticks=0)

    def test_default_chunk_is_max_range(self, batch):
        plan = original_plan(
            WindowSet([Window(10, 10), Window(40, 20)]), MIN
        )
        executor = ChunkedStreamingExecutor(plan, batch)
        assert executor.chunk_ticks == 40

    def test_stats_events_counted(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        result = execute_plan(plan, batch, engine="streaming-chunked")
        assert result.stats.events == batch.num_events


class TestStrideExceedsMultiplier:
    def test_consumer_stride_larger_than_covering_set(self):
        # W(6,6) reading W(4,2): stride = 3 > M = 2, so the buffer cut
        # after a close must not run past the provider's emitted
        # frontier (regression: ExecutionError 'not contiguous').
        windows = WindowSet([Window(4, 2), Window(10, 5), Window(12, 6)])
        from repro.core.optimizer import optimize

        result = optimize(windows, MIN)
        rng = np.random.default_rng(3)
        n = 200
        batch = make_batch(
            np.sort(rng.integers(0, 120, n)),
            rng.normal(0, 10, n),
            horizon=120,
        )
        plans = [original_plan(windows, MIN)]
        if result.without_factors is not None:
            plans.append(rewrite_plan(result.without_factors, MIN))
        if result.with_factors is not None:
            plans.append(rewrite_plan(result.with_factors, MIN))
        for plan in plans:
            reference = execute_plan(plan, batch, engine="columnar")
            for chunk_ticks in (1, 5, 13, 200):
                chunked = execute_plan(
                    plan,
                    batch,
                    engine="streaming-chunked",
                    chunk_ticks=chunk_ticks,
                )
                assert results_equal(reference, chunked)
                assert (
                    reference.stats.pairs_per_window
                    == chunked.stats.pairs_per_window
                )
