"""Tests for the row-at-a-time streaming engine."""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MEDIAN, MIN, SUM
from repro.core.optimizer import min_cost_wcg_with_factors
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.engine.streaming import StreamingExecutor
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet


@pytest.fixture
def batch():
    rng = np.random.default_rng(11)
    n = 120
    return make_batch(
        np.arange(n),
        rng.normal(5, 2, n),
        keys=rng.integers(0, 2, n),
        num_keys=2,
        horizon=n,
    )


class TestStreamingMatchesColumnar:
    @pytest.mark.parametrize("aggregate", [MIN, SUM, AVG])
    def test_original_plan(self, batch, aggregate):
        plan = original_plan(
            WindowSet([Window(10, 10), Window(20, 10), Window(30, 30)]),
            aggregate,
        )
        columnar = execute_plan(plan, batch, engine="columnar")
        streaming = execute_plan(plan, batch, engine="streaming")
        assert results_equal(columnar, streaming)

    def test_factor_plan(self, batch, example7_windows):
        gmin, _ = min_cost_wcg_with_factors(
            example7_windows, CoverageSemantics.PARTITIONED_BY
        )
        plan = rewrite_plan(gmin, MIN)
        columnar = execute_plan(plan, batch, engine="columnar")
        streaming = execute_plan(plan, batch, engine="streaming")
        assert results_equal(columnar, streaming)

    def test_pair_counts_match_columnar(self, batch, example7_windows):
        gmin, _ = min_cost_wcg_with_factors(
            example7_windows, CoverageSemantics.PARTITIONED_BY
        )
        plan = rewrite_plan(gmin, MIN)
        columnar = execute_plan(plan, batch, engine="columnar")
        streaming = execute_plan(plan, batch, engine="streaming")
        assert (
            columnar.stats.pairs_per_window
            == streaming.stats.pairs_per_window
        )

    def test_holistic_original_plan(self, batch):
        plan = original_plan(WindowSet([Window(20, 20)]), MEDIAN)
        columnar = execute_plan(plan, batch, engine="columnar")
        streaming = execute_plan(plan, batch, engine="streaming")
        assert results_equal(columnar, streaming)


class TestStreamingBehaviour:
    def test_state_is_bounded(self, batch):
        # Open instances never exceed r/s + 1 per operator.
        plan = original_plan(WindowSet([Window(20, 10)]), MIN)
        executor = StreamingExecutor(plan, batch)
        executor.run()
        assert executor.max_open_instances() <= 3

    def test_results_shape(self, batch):
        plan = original_plan(WindowSet([Window(30, 30)]), MIN)
        results = StreamingExecutor(plan, batch).run()
        assert results[Window(30, 30)].shape == (2, 4)

    def test_empty_instances_emit_nan(self):
        # One event at t=35: earlier instances are empty.
        batch = make_batch([35], [7.0], horizon=40)
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        results = StreamingExecutor(plan, batch).run()
        out = results[Window(10, 10)][0]
        assert np.isnan(out[:3]).all()
        assert out[3] == 7.0

    def test_stats_events_counted(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        result = execute_plan(plan, batch, engine="streaming")
        assert result.stats.events == batch.num_events
