"""Round-trip property tests for key partitioning (DESIGN.md §7).

``partition_batch`` must preserve every :class:`EventBatch` invariant
per shard (sorted timestamps, inherited horizon, dense local key ids)
and lose nothing: ``merge_batch_shards`` reassembles the original
batch bit-for-bit, including arrival order among equal timestamps.
Composed with ``encode_keys`` this is the full outer→inner id pipeline
of the sharded runtime.

Randomized cases are seeded from ``REPRO_TEST_SEED`` (see
tests/conftest.py) so any counterexample reproduces exactly.
"""

import numpy as np
import pytest

from repro.engine.events import (
    EventBatch,
    KeyPartitioner,
    encode_keys,
    make_batch,
    merge_batch_shards,
    partition_batch,
    shard_assignment,
)
from repro.errors import ExecutionError


def random_batch(rng, num_events, num_keys, tick_span=200):
    """A sorted batch with duplicate timestamps and arbitrary keys."""
    ts = np.sort(rng.integers(0, tick_span, num_events)).astype(np.int64)
    return EventBatch(
        timestamps=ts,
        keys=rng.integers(0, num_keys, num_events).astype(np.int64),
        values=rng.normal(0.0, 10.0, num_events),
        horizon=tick_span,
        num_keys=num_keys,
    )


def assert_batches_equal(left: EventBatch, right: EventBatch, msg=""):
    np.testing.assert_array_equal(left.timestamps, right.timestamps, msg)
    np.testing.assert_array_equal(left.keys, right.keys, msg)
    np.testing.assert_array_equal(left.values, right.values, msg)
    assert left.horizon == right.horizon, msg
    assert left.num_keys == right.num_keys, msg


class TestShardAssignment:
    def test_deterministic_and_in_range(self):
        a = shard_assignment(257, 5)
        b = shard_assignment(257, 5)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (257,)
        assert a.min() >= 0 and a.max() < 5

    @pytest.mark.parametrize("num_shards", [2, 3, 4, 7, 8])
    def test_balanced_for_dense_key_spaces(self, num_shards):
        """Fibonacci hashing keeps consecutive dense ids balanced:
        no shard holds more than twice its fair share."""
        assignment = shard_assignment(256, num_shards)
        counts = np.bincount(assignment, minlength=num_shards)
        fair = 256 / num_shards
        assert counts.max() <= 2 * fair
        assert counts.min() >= 1

    def test_invalid_arguments(self):
        with pytest.raises(ExecutionError):
            shard_assignment(0, 2)
        with pytest.raises(ExecutionError):
            shard_assignment(4, 0)


class TestPartitionRoundTrip:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("num_keys", [1, 2, 7, 32])
    def test_reassembly_equals_original(
        self, repro_rng, repro_seed, num_shards, num_keys
    ):
        batch = random_batch(repro_rng, 500, num_keys)
        shards = partition_batch(batch, num_shards)
        rebuilt = merge_batch_shards(
            shards, num_keys=num_keys, horizon=batch.horizon
        )
        assert_batches_equal(
            batch, rebuilt, f"seed={repro_seed} shards={num_shards}"
        )

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 6])
    def test_dense_id_invariants(self, repro_rng, repro_seed, num_shards):
        num_keys = 19
        batch = random_batch(repro_rng, 400, num_keys)
        shards = partition_batch(batch, num_shards)
        seen_keys = []
        total_events = 0
        for shard in shards:
            owned = shard.global_keys
            # Global keys strictly increasing → local ids are a dense,
            # order-preserving re-encoding.
            assert np.all(np.diff(owned) > 0), f"seed={repro_seed}"
            if shard.batch.num_events:
                assert shard.batch.keys.min() >= 0
                assert shard.batch.keys.max() < max(1, owned.size)
                # Decoding local ids lands on owned global keys only.
                decoded = owned[shard.batch.keys]
                assert np.all(
                    np.isin(decoded, owned)
                ), f"seed={repro_seed}"
            # Shard batches keep the parent's invariants.
            assert np.all(np.diff(shard.batch.timestamps) >= 0)
            assert shard.batch.horizon == batch.horizon
            seen_keys.extend(owned.tolist())
            total_events += shard.batch.num_events
        # Disjoint union of owned keys = the full dense space.
        assert sorted(seen_keys) == list(range(num_keys))
        assert total_events == batch.num_events

    def test_empty_shards(self, repro_rng):
        """More shards than keys: surplus shards carry valid empty
        batches (one dummy local key) and round-trip cleanly."""
        batch = random_batch(repro_rng, 100, 2)
        shards = partition_batch(batch, 6)
        empty = [s for s in shards if s.global_keys.size == 0]
        assert empty, "expected at least one key-less shard"
        for shard in empty:
            assert shard.batch.num_events == 0
            assert shard.batch.num_keys == 1  # dummy dense id space
        rebuilt = merge_batch_shards(shards, num_keys=2, horizon=batch.horizon)
        assert_batches_equal(batch, rebuilt)

    def test_single_key_stream(self, repro_rng):
        """All events land on one shard; the rest are empty."""
        batch = random_batch(repro_rng, 200, 1)
        shards = partition_batch(batch, 4)
        non_empty = [s for s in shards if s.batch.num_events]
        assert len(non_empty) == 1
        assert non_empty[0].batch.num_events == 200
        assert np.all(non_empty[0].batch.keys == 0)
        rebuilt = merge_batch_shards(shards, num_keys=1, horizon=batch.horizon)
        assert_batches_equal(batch, rebuilt)

    def test_equal_timestamp_order_preserved(self):
        """Stable partitioning: same-timestamp events return to their
        exact source positions (a plain stable sort could not)."""
        batch = make_batch(
            timestamps=[5, 5, 5, 5],
            keys=[3, 1, 2, 0],
            values=[1.0, 2.0, 3.0, 4.0],
            num_keys=4,
        )
        shards = partition_batch(batch, 3)
        rebuilt = merge_batch_shards(shards, num_keys=4, horizon=batch.horizon)
        assert_batches_equal(batch, rebuilt)

    def test_encode_keys_composes_with_partition(self, repro_rng):
        """Outer→inner pipeline: arbitrary key values encode to dense
        ids, partition, and decode back to the original values."""
        raw = [f"device-{int(i)}" for i in repro_rng.integers(0, 9, 300)]
        ids, mapping = encode_keys(raw)
        # encode_keys round trip on its own.
        inverse = {v: k for k, v in mapping.items()}
        assert [inverse[int(i)] for i in ids] == raw
        ts = np.sort(repro_rng.integers(0, 100, 300)).astype(np.int64)
        batch = EventBatch(
            timestamps=ts,
            keys=ids,
            values=repro_rng.normal(size=300),
            horizon=100,
            num_keys=len(mapping),
        )
        shards = partition_batch(batch, 4)
        rebuilt = merge_batch_shards(
            shards, num_keys=len(mapping), horizon=100
        )
        assert_batches_equal(batch, rebuilt)
        assert [inverse[int(i)] for i in rebuilt.keys] == raw


class TestPartitionErrors:
    def test_num_keys_mismatch(self, repro_rng):
        batch = random_batch(repro_rng, 50, 4)
        with pytest.raises(ExecutionError):
            KeyPartitioner(8, 2).partition(batch)

    def test_bad_assignment(self):
        with pytest.raises(ExecutionError):
            KeyPartitioner(4, 2, assignment=np.array([0, 1, 2, 0]))
        with pytest.raises(ExecutionError):
            KeyPartitioner(4, 2, assignment=np.array([0, 1]))

    def test_merge_zero_shards(self):
        with pytest.raises(ExecutionError):
            merge_batch_shards([])
