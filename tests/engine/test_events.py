"""Tests for columnar event batches."""

import numpy as np
import pytest

from repro.engine.events import EventBatch, encode_keys, make_batch
from repro.errors import ExecutionError


class TestEventBatchValidation:
    def test_column_lengths_must_match(self):
        with pytest.raises(ExecutionError):
            EventBatch(
                timestamps=np.asarray([0, 1]),
                keys=np.asarray([0]),
                values=np.asarray([1.0, 2.0]),
                horizon=10,
                num_keys=1,
            )

    def test_timestamps_must_be_sorted(self):
        # make_batch sorts; direct construction must reject.
        with pytest.raises(ExecutionError):
            EventBatch(
                timestamps=np.asarray([3, 1]),
                keys=np.zeros(2, dtype=np.int64),
                values=np.asarray([1.0, 2.0]),
                horizon=10,
                num_keys=1,
            )

    def test_negative_timestamps_rejected(self):
        with pytest.raises(ExecutionError):
            make_batch([-1, 0], [1.0, 2.0])

    def test_horizon_must_exceed_last_event(self):
        with pytest.raises(ExecutionError):
            make_batch([0, 5], [1.0, 2.0], horizon=5)

    def test_keys_must_be_dense(self):
        with pytest.raises(ExecutionError):
            make_batch([0, 1], [1.0, 2.0], keys=[0, 5], num_keys=2)

    def test_num_keys_positive(self):
        with pytest.raises(ExecutionError):
            EventBatch(
                timestamps=np.asarray([], dtype=np.int64),
                keys=np.asarray([], dtype=np.int64),
                values=np.asarray([], dtype=np.float64),
                horizon=1,
                num_keys=0,
            )


class TestMakeBatch:
    def test_defaults(self):
        batch = make_batch([0, 1, 2], [1.0, 2.0, 3.0])
        assert batch.num_events == 3
        assert batch.num_keys == 1
        assert batch.horizon == 3

    def test_sorts_unsorted_input(self):
        batch = make_batch([2, 0, 1], [30.0, 10.0, 20.0])
        assert list(batch.timestamps) == [0, 1, 2]
        assert list(batch.values) == [10.0, 20.0, 30.0]

    def test_empty_batch(self):
        batch = make_batch([], [])
        assert batch.num_events == 0
        assert batch.horizon == 1

    def test_rows_iteration(self):
        batch = make_batch([0, 1], [1.5, 2.5], keys=[1, 0], num_keys=2)
        assert list(batch.rows()) == [(0, 1, 1.5), (1, 0, 2.5)]

    def test_len(self):
        assert len(make_batch([0, 1], [1.0, 2.0])) == 2


class TestSliceTime:
    def test_slice_selects_half_open_range(self):
        batch = make_batch([0, 1, 2, 3, 4], [0.0, 1.0, 2.0, 3.0, 4.0])
        part = batch.slice_time(1, 3)
        assert list(part.timestamps) == [1, 2]
        assert part.horizon == 3

    def test_slice_preserves_keys(self):
        batch = make_batch(
            [0, 1, 2], [0.0, 1.0, 2.0], keys=[0, 1, 0], num_keys=2
        )
        part = batch.slice_time(1, 3)
        assert list(part.keys) == [1, 0]
        assert part.num_keys == 2


class TestEncodeKeys:
    def test_first_appearance_order(self):
        ids, mapping = encode_keys(["b", "a", "b", "c"])
        assert list(ids) == [0, 1, 0, 2]
        assert mapping == {"b": 0, "a": 1, "c": 2}

    def test_numeric_keys(self):
        ids, mapping = encode_keys([10, 20, 10])
        assert list(ids) == [0, 1, 0]
        assert mapping == {10: 0, 20: 1}
