"""Edge-case and failure-injection tests for the engines."""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, COUNT, MIN, SUM
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.plans.builder import original_plan
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream


class TestHighRateStreams:
    def test_multiple_events_per_tick(self):
        """η > 1: several events share a timestamp; results must match
        brute force and both engines must agree."""
        batch = constant_rate_stream(600, rate=3, seed=9)
        windows = WindowSet([Window(10, 10), Window(20, 10)])
        plan = original_plan(windows, MIN)
        columnar = execute_plan(plan, batch)
        streaming = execute_plan(plan, batch, engine="streaming")
        assert results_equal(columnar, streaming)

    def test_rewritten_plan_with_high_rate(self):
        batch = constant_rate_stream(1200, rate=4, seed=9)
        windows = WindowSet([Window(20, 20), Window(40, 40), Window(60, 60)])
        result = optimize(windows, SUM, event_rate=4)
        fast = execute_plan(rewrite_plan(result.best, SUM), batch)
        slow = execute_plan(original_plan(windows, SUM), batch)
        assert results_equal(fast, slow)


class TestSparseAndAdversarialStreams:
    def test_all_events_in_one_instance(self):
        batch = make_batch([5, 6, 7], [1.0, -2.0, 3.0], horizon=40)
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        out = execute_plan(plan, batch).results[Window(10, 10)][0]
        assert out[0] == -2.0
        assert np.isnan(out[1:]).all()

    def test_single_event_stream(self):
        batch = make_batch([0], [42.0], horizon=10)
        for agg in (MIN, SUM, COUNT, AVG):
            plan = original_plan(WindowSet([Window(10, 5)]), agg)
            out = execute_plan(plan, batch).results[Window(10, 5)]
            assert out.shape == (1, 1)
            assert out[0, 0] == pytest.approx(
                42.0 if agg is not COUNT else 1.0
            )

    def test_extreme_values(self):
        values = [1e308, -1e308, 0.0, 1e-308]
        batch = make_batch([0, 1, 2, 3], values, horizon=4)
        plan = original_plan(WindowSet([Window(4, 4)]), MIN)
        out = execute_plan(plan, batch).results[Window(4, 4)]
        assert out[0, 0] == -1e308

    def test_events_exactly_on_window_boundaries(self):
        # [0,10) excludes ts=10; [10,20) includes it.
        batch = make_batch([0, 10, 20], [1.0, 2.0, 3.0], horizon=30)
        plan = original_plan(WindowSet([Window(10, 10)]), SUM)
        out = execute_plan(plan, batch).results[Window(10, 10)][0]
        assert list(out) == [1.0, 2.0, 3.0]

    def test_duplicate_timestamps_all_counted(self):
        batch = make_batch([3, 3, 3], [1.0, 2.0, 3.0], horizon=10)
        plan = original_plan(WindowSet([Window(10, 10)]), COUNT)
        assert execute_plan(plan, batch).results[Window(10, 10)][0, 0] == 3.0


class TestEmptyWindows:
    def test_horizon_shorter_than_every_window(self):
        batch = make_batch([0, 1], [1.0, 2.0], horizon=5)
        windows = WindowSet([Window(10, 10), Window(20, 20)])
        result = execute_plan(original_plan(windows, MIN), batch)
        for window in windows:
            assert result.results[window].shape == (1, 0)

    def test_rewritten_plan_short_horizon(self):
        batch = make_batch([0, 1], [1.0, 2.0], horizon=25)
        windows = WindowSet([Window(10, 10), Window(20, 20)])
        opt = optimize(windows, MIN)
        fast = execute_plan(rewrite_plan(opt.best, MIN), batch)
        slow = execute_plan(original_plan(windows, MIN), batch)
        assert results_equal(fast, slow)


class TestManyKeys:
    def test_hundreds_of_keys(self):
        rng = np.random.default_rng(12)
        n, keys = 3_000, 200
        batch = make_batch(
            np.sort(rng.integers(0, 500, n)),
            rng.normal(0, 1, n),
            keys=rng.integers(0, keys, n),
            num_keys=keys,
            horizon=500,
        )
        windows = WindowSet([Window(50, 50), Window(100, 50)])
        opt = optimize(windows, MIN)
        fast = execute_plan(rewrite_plan(opt.best, MIN), batch)
        slow = execute_plan(original_plan(windows, MIN), batch)
        assert results_equal(fast, slow)
