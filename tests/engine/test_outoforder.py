"""Tests for out-of-order ingestion (reorder buffer + watermark)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import MIN
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.engine.outoforder import (
    ReorderBuffer,
    batch_from_unordered,
    reorder_events,
    scramble_batch,
)
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream


class TestReorderBuffer:
    def test_in_order_passthrough(self):
        events = [(t, 0, float(t)) for t in range(10)]
        ordered, stats = reorder_events(events, max_lateness=0)
        assert ordered == events
        assert stats.late_dropped == 0

    def test_reorders_within_bound(self):
        events = [(2, 0, 2.0), (0, 0, 0.0), (1, 0, 1.0), (3, 0, 3.0)]
        ordered, stats = reorder_events(events, max_lateness=3)
        assert [e[0] for e in ordered] == [0, 1, 2, 3]
        assert stats.late_dropped == 0

    def test_late_event_dropped_and_counted(self):
        events = [(10, 0, 1.0), (0, 0, 2.0)]  # 0 is 10 ticks late
        ordered, stats = reorder_events(events, max_lateness=3)
        assert [e[0] for e in ordered] == [10]
        assert stats.late_dropped == 1
        assert stats.max_observed_lateness == 7  # watermark 7, event at 0

    def test_same_timestamp_keeps_arrival_order(self):
        events = [(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0)]
        ordered, _ = reorder_events(events, max_lateness=0)
        assert [e[1] for e in ordered] == [0, 1, 2]

    def test_watermark_trails_max_seen(self):
        buffer = ReorderBuffer(max_lateness=5)
        list(buffer.push(10, 0, 1.0))
        assert buffer.watermark == 5
        list(buffer.push(7, 0, 1.0))  # out of order but above watermark
        assert buffer.watermark == 5
        assert buffer.stats.accepted == 2

    def test_negative_lateness_rejected(self):
        with pytest.raises(ExecutionError):
            ReorderBuffer(max_lateness=-1)

    def test_negative_timestamp_rejected(self):
        buffer = ReorderBuffer(max_lateness=1)
        with pytest.raises(ExecutionError):
            list(buffer.push(-1, 0, 1.0))

    def test_keep_late_events(self):
        buffer = ReorderBuffer(max_lateness=0, keep_late_events=True)
        list(buffer.push(5, 0, 1.0))
        list(buffer.push(1, 0, 2.0))
        assert buffer.stats.late_events == [(1, 0, 2.0)]

    def test_retained_late_events_are_capped(self):
        """Counters stay exact; the retained list is bounded (the
        bounded-state guarantee of DESIGN.md §5 applies to the front
        door too)."""
        buffer = ReorderBuffer(
            max_lateness=0, keep_late_events=True, late_event_cap=3
        )
        list(buffer.push(100, 0, 1.0))
        for ts in range(10):
            list(buffer.push(ts, 0, float(ts)))
        assert buffer.stats.late_dropped == 10
        assert len(buffer.stats.late_events) == 3
        assert buffer.stats.late_events == [
            (0, 0, 0.0),
            (1, 0, 1.0),
            (2, 0, 2.0),
        ]
        assert buffer.stats.late_events_elided == 7
        assert buffer.stats.max_observed_lateness == 100

    def test_default_cap_bounds_memory_without_keep(self):
        buffer = ReorderBuffer(max_lateness=0)
        list(buffer.push(1000, 0, 1.0))
        for ts in range(500):
            list(buffer.push(ts, 0, 0.0))
        assert buffer.stats.late_dropped == 500
        assert buffer.stats.late_events == []
        assert buffer.stats.late_events_elided == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(ExecutionError):
            ReorderBuffer(max_lateness=0, late_event_cap=-1)


class TestBatchFromUnordered:
    def test_round_trip_equals_sorted_batch(self):
        batch = constant_rate_stream(500, num_keys=2, seed=3)
        scrambled = scramble_batch(batch, max_lateness=7, seed=1)
        rebuilt, stats = batch_from_unordered(
            scrambled, max_lateness=7, horizon=batch.horizon, num_keys=2
        )
        assert stats.late_dropped == 0
        np.testing.assert_array_equal(rebuilt.timestamps, batch.timestamps)
        # Same multiset of (ts, key, value) triples.
        assert sorted(rebuilt.rows()) == sorted(batch.rows())

    def test_empty_input(self):
        rebuilt, stats = batch_from_unordered([], max_lateness=5)
        assert rebuilt.num_events == 0
        assert stats.total == 0

    def test_query_results_unaffected_by_disorder(self):
        windows = WindowSet([Window(10, 10), Window(20, 10)])
        plan = original_plan(windows, MIN)
        batch = constant_rate_stream(400, seed=5)
        scrambled = scramble_batch(batch, max_lateness=9, seed=2)
        rebuilt, _ = batch_from_unordered(
            scrambled, max_lateness=9, horizon=batch.horizon, num_keys=1
        )
        assert results_equal(
            execute_plan(plan, batch), execute_plan(plan, rebuilt)
        )

    @given(
        lateness=st.integers(0, 20),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_scramble_respects_bound(self, lateness, seed):
        """scramble_batch never produces disorder the buffer drops."""
        batch = constant_rate_stream(120, seed=4)
        scrambled = scramble_batch(batch, max_lateness=lateness, seed=seed)
        _, stats = reorder_events(scrambled, max_lateness=lateness)
        assert stats.late_dropped == 0
        assert stats.accepted == batch.num_events

    def test_insufficient_lateness_drops(self):
        batch = make_batch([0, 1, 2, 3, 4, 5], [0.0] * 6)
        scrambled = [(5, 0, 0.0), (0, 0, 0.0), (4, 0, 0.0), (1, 0, 0.0)]
        _, stats = reorder_events(scrambled, max_lateness=1)
        assert stats.late_dropped == 2  # ts 0 and 1 behind watermark 4


class TestAcceptSorted:
    """The sorted-batch bypass keeps counters and the watermark
    coherent with push() — and refuses every unsafe precondition."""

    def test_accounts_and_advances_watermark(self):
        buffer = ReorderBuffer(0)
        buffer.accept_sorted(10, 5, 42)
        assert buffer.stats.accepted == 10
        assert buffer.watermark == 42
        # A later batch may start at the newest seen timestamp…
        buffer.accept_sorted(3, 42, 50)
        # …but never before it.
        with pytest.raises(ExecutionError):
            buffer.accept_sorted(1, 49, 60)

    def test_requires_in_order_empty_buffer(self):
        with pytest.raises(ExecutionError):
            ReorderBuffer(4).accept_sorted(1, 0, 0)
        buffer = ReorderBuffer(0)
        list(buffer.push(7, 0, 1.0))  # ts=7 still buffered (lateness 0)
        with pytest.raises(ExecutionError):
            buffer.accept_sorted(1, 8, 8)

class TestPushBatch:
    """The columnar batch push is bit-identical to the per-event path
    — on the pure fallback and the compiled kernel alike — including
    every late-drop decision and stats counter."""

    events_strategy = st.lists(
        st.tuples(
            st.integers(0, 120),  # timestamp
            st.integers(0, 3),  # key
            st.floats(-100, 100, allow_nan=False, width=32),
        ),
        min_size=0,
        max_size=200,
    )

    @staticmethod
    def _oracle(events, splits, max_lateness, keep_late):
        buffer = ReorderBuffer(max_lateness, keep_late_events=keep_late)
        released = []
        for ts, key, value in events:
            released.extend(buffer.push(ts, key, value))
        return released, buffer

    @staticmethod
    def _batched(events, splits, max_lateness, keep_late, native):
        buffer = ReorderBuffer(max_lateness, keep_late_events=keep_late)
        out_ts, out_keys, out_values = [], [], []
        bounds = sorted(min(s, len(events)) for s in splits)
        pieces = np.split(np.arange(len(events)), bounds)
        for piece in pieces:
            block = [events[i] for i in piece]
            ts = np.array([e[0] for e in block], dtype=np.int64)
            keys = np.array([e[1] for e in block], dtype=np.int64)
            values = np.array([e[2] for e in block], dtype=np.float64)
            r_ts, r_keys, r_values = buffer.push_batch(
                ts, keys, values, native=native
            )
            out_ts.append(r_ts)
            out_keys.append(r_keys)
            out_values.append(r_values)
        released = list(
            zip(
                np.concatenate(out_ts).tolist(),
                np.concatenate(out_keys).tolist(),
                np.concatenate(out_values).tolist(),
            )
        )
        return released, buffer

    @given(
        events=events_strategy,
        splits=st.lists(st.integers(0, 200), max_size=3),
        max_lateness=st.integers(0, 15),
        keep_late=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_per_event_push_on_both_paths(
        self, events, splits, max_lateness, keep_late
    ):
        from repro import _kernels

        oracle, oracle_buf = self._oracle(
            events, splits, max_lateness, keep_late
        )
        paths = [False]
        if _kernels.available():
            paths.append(True)
        for native in paths:
            released, buf = self._batched(
                events, splits, max_lateness, keep_late, native
            )
            context = f"native={native}"
            assert released == oracle, context
            # Drain order after the batch must also agree.
            assert list(buf.flush()) == list(
                self._oracle(events, splits, max_lateness, keep_late)[
                    1
                ].flush()
            ), context
            for counter in (
                "accepted",
                "late_dropped",
                "max_observed_lateness",
                "late_events",
                "late_events_elided",
            ):
                assert getattr(buf.stats, counter) == getattr(
                    oracle_buf.stats, counter
                ), (context, counter)

    @given(
        events=events_strategy,
        splits=st.lists(st.integers(0, 200), max_size=3),
        max_lateness=st.integers(0, 15),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_push_many_matches_per_event_push(
        self, events, splits, max_lateness
    ):
        """``ShardedSession.push_many`` rides ``push_batch`` — results,
        execution stats, and every reorder counter must match the
        per-event loop exactly."""
        from repro.aggregates.registry import SUM
        from repro.core.multiquery import Query
        from repro.runtime import ShardedSession

        def run(batched):
            session = ShardedSession(
                num_keys=4,
                num_shards=2,
                max_lateness=max_lateness,
                chunk_ticks=16,
                hysteresis=None,
            )
            session.register(
                Query("q", WindowSet([Window(12, 4)]), SUM), scope="per_key"
            )
            if batched:
                bounds = sorted(min(s, len(events)) for s in splits)
                for piece in np.split(np.arange(len(events)), bounds):
                    session.push_many([events[i] for i in piece])
            else:
                for ts, key, value in events:
                    session.push(ts, key, value)
            results = session.finish()
            stats = session.stats()
            reorder = session.reorder_stats
            session.close()
            return results, stats, reorder

        base_results, base_stats, base_reorder = run(batched=False)
        many_results, many_stats, many_reorder = run(batched=True)
        for name, by_window in base_results.items():
            for window, res in by_window.items():
                other = many_results[name][window]
                assert res.start_instance == other.start_instance
                assert res.frontier == other.frontier
                np.testing.assert_array_equal(res.values, other.values)
        assert many_stats.events == base_stats.events
        assert many_stats.total_pairs == base_stats.total_pairs
        for counter in (
            "accepted",
            "late_dropped",
            "max_observed_lateness",
            "late_events",
            "late_events_elided",
        ):
            assert getattr(many_reorder, counter) == getattr(
                base_reorder, counter
            ), counter

    def test_negative_timestamp_rejected_upfront_on_both_paths(self):
        from repro import _kernels

        paths = [False] + ([True] if _kernels.available() else [])
        for native in paths:
            buffer = ReorderBuffer(2)
            with pytest.raises(ExecutionError, match=">= 0"):
                buffer.push_batch(
                    np.array([3, -1, 4]),
                    np.zeros(3, dtype=np.int64),
                    np.zeros(3),
                    native=native,
                )
            # Upfront validation: nothing was pushed.
            assert buffer.stats.total == 0
            assert buffer.buffered == 0
