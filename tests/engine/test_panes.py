"""Tests for the pane-partitioned columnar fast path."""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MAX, MIN, SUM
from repro.engine.columnar import aggregate_raw
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.engine.panes import (
    aggregate_raw_panes,
    build_pane_table,
    logical_raw_pairs,
    pane_width,
    plan_pane_groups,
)
from repro.engine.stats import ExecutionStats
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.windows.window import Window, WindowSet


@pytest.fixture
def batch():
    rng = np.random.default_rng(5)
    n = 400
    return make_batch(
        np.sort(rng.integers(0, 250, n)),
        rng.normal(0, 10, n),
        keys=rng.integers(0, 3, n),
        num_keys=3,
        horizon=250,
    )


class TestPaneWidth:
    def test_tumbling_pane_is_range(self):
        assert pane_width(Window(20, 20)) == 20

    def test_hopping_pane_is_gcd(self):
        assert pane_width(Window(30, 12)) == 6
        assert pane_width(Window(20, 10)) == 10

    def test_coprime_pane_is_one(self):
        assert pane_width(Window(7, 3)) == 1


class TestLogicalRawPairs:
    @pytest.mark.parametrize(
        "window",
        [Window(10, 10), Window(20, 10), Window(30, 5), Window(12, 4)],
    )
    def test_matches_materialized_count(self, batch, window):
        stats = ExecutionStats()
        aggregate_raw(batch, window, MIN, stats)
        from repro.engine.columnar import num_complete_instances

        n_inst = num_complete_instances(window, batch.horizon)
        assert (
            logical_raw_pairs(batch.timestamps, window, n_inst)
            == stats.pairs_per_window[window]
        )

    def test_empty_inputs(self):
        assert logical_raw_pairs(np.empty(0, dtype=np.int64), Window(4, 2), 5) == 0
        assert logical_raw_pairs(np.array([3]), Window(4, 2), 0) == 0


class TestAggregateRawPanes:
    @pytest.mark.parametrize("aggregate", [MIN, MAX, SUM, AVG])
    @pytest.mark.parametrize(
        "window", [Window(10, 10), Window(20, 10), Window(45, 15)]
    )
    def test_state_matches_aggregate_raw(self, batch, window, aggregate):
        reference = aggregate_raw(batch, window, aggregate)
        panes = aggregate_raw_panes(batch, window, aggregate)
        assert panes.num_instances == reference.num_instances
        for ref, got in zip(reference.components, panes.components):
            np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_logical_pairs_match_physical_smaller(self, batch):
        window = Window(60, 5)  # k = 12
        ref_stats, pane_stats = ExecutionStats(), ExecutionStats()
        aggregate_raw(batch, window, MIN, ref_stats)
        aggregate_raw_panes(batch, window, MIN, pane_stats)
        assert (
            pane_stats.pairs_per_window[window]
            == ref_stats.pairs_per_window[window]
        )
        assert pane_stats.total_physical < ref_stats.total_physical

    def test_incompatible_shared_table_rejected(self, batch):
        table = build_pane_table(batch, 7, MIN)
        with pytest.raises(ExecutionError):
            aggregate_raw_panes(batch, Window(20, 10), MIN, table=table)

    def test_empty_batch(self):
        empty = make_batch([], [], horizon=50, num_keys=2)
        state = aggregate_raw_panes(empty, Window(10, 10), SUM)
        assert state.components[0].shape == (2, 5)
        assert (state.components[0] == 0.0).all()


class TestPaneSharing:
    def test_windows_grouped_by_pane_width_and_aggregate(self):
        windows = WindowSet(
            [Window(20, 10), Window(40, 10), Window(30, 15), Window(7, 3)]
        )
        plan = original_plan(windows, MIN)
        groups = plan_pane_groups(plan)
        assert set(groups) == {(10, "min"), (15, "min"), (1, "min")}
        assert groups[(10, "min")] == [Window(20, 10), Window(40, 10)]

    def test_shared_table_binned_once(self, batch):
        windows = WindowSet([Window(20, 10), Window(40, 10)])
        plan = original_plan(windows, MIN)
        result = execute_plan(batch=batch, plan=plan, engine="columnar-panes")
        # One shared pane table for both windows: N events binned once.
        assert result.stats.events_binned == batch.num_events


class TestPanesEngine:
    def test_matches_columnar_results_and_logical_pairs(self, batch):
        plan = original_plan(
            WindowSet([Window(10, 10), Window(20, 10), Window(30, 15)]), AVG
        )
        columnar = execute_plan(plan, batch, engine="columnar")
        panes = execute_plan(plan, batch, engine="columnar-panes")
        assert results_equal(columnar, panes)
        assert columnar.stats.pairs_per_window == panes.stats.pairs_per_window
        assert panes.engine == "columnar-panes"

    def test_physical_fraction_below_one_for_high_k(self):
        n = 5_000
        batch = make_batch(
            np.arange(n), np.sin(np.arange(n) / 7.0), horizon=n
        )
        plan = original_plan(WindowSet([Window(320, 20)]), MIN)  # k = 16
        result = execute_plan(plan, batch, engine="columnar-panes")
        assert result.stats.physical_fraction < 0.25
