"""Tests for the execution facade."""

import numpy as np
import pytest

from repro.aggregates.registry import MEDIAN, MIN
from repro.core.optimizer import min_cost_wcg
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet


@pytest.fixture
def batch():
    n = 120
    return make_batch(np.arange(n), np.sin(np.arange(n) / 5.0), horizon=n)


class TestExecutePlan:
    def test_unknown_engine_rejected(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        with pytest.raises(ExecutionError):
            execute_plan(plan, batch, engine="spark")

    def test_validation_runs_by_default(self, batch):
        from repro.plans.builder import PlanBuilder
        from repro.plans.nodes import LogicalPlan
        from repro.errors import PlanError

        builder = PlanBuilder()
        node = builder.window_aggregate(
            Window(30, 30), MIN, builder.source, provider=Window(20, 20)
        )
        bad = LogicalPlan(root=node, source=builder.source, aggregate=MIN)
        with pytest.raises(PlanError):
            execute_plan(bad, batch)

    def test_throughput_positive(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        result = execute_plan(plan, batch)
        assert result.throughput > 0
        assert result.stats.events == batch.num_events

    def test_results_keyed_by_user_windows(self, batch, example7_windows):
        gmin = min_cost_wcg(example7_windows, CoverageSemantics.PARTITIONED_BY)
        plan = rewrite_plan(gmin, MIN)
        result = execute_plan(plan, batch)
        assert set(result.results) == set(example7_windows)

    def test_holistic_plan_executes(self, batch):
        plan = original_plan(WindowSet([Window(20, 20)]), MEDIAN)
        result = execute_plan(plan, batch)
        assert result.results[Window(20, 20)].shape == (1, 6)


class TestRecords:
    def test_to_records_sorted_and_complete(self, batch):
        plan = original_plan(WindowSet([Window(30, 30), Window(20, 20)]), MIN)
        records = execute_plan(plan, batch).to_records()
        assert len(records) == 6 + 4  # W20: 6 instances, W30: 4
        labels = [r[0] for r in records]
        assert labels == sorted(labels)

    def test_drop_empty(self):
        batch = make_batch([25], [1.0], horizon=30)
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        records = execute_plan(plan, batch).to_records(drop_empty=True)
        assert len(records) == 1
        assert records[0][2] == 2  # instance [20, 30)


class TestResultsEqual:
    def test_equal_results(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        a = execute_plan(plan, batch)
        b = execute_plan(plan, batch)
        assert results_equal(a, b)

    def test_different_windows_not_equal(self, batch):
        a = execute_plan(original_plan(WindowSet([Window(10, 10)]), MIN), batch)
        b = execute_plan(original_plan(WindowSet([Window(20, 20)]), MIN), batch)
        assert not results_equal(a, b)

    def test_nan_equals_nan(self):
        batch = make_batch([25], [1.0], horizon=30)
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        a = execute_plan(plan, batch)
        b = execute_plan(plan, batch, engine="streaming")
        assert results_equal(a, b)
