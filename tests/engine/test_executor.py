"""Tests for the execution facade."""

import numpy as np
import pytest

from repro.aggregates.registry import MEDIAN, MIN
from repro.core.optimizer import min_cost_wcg
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet


@pytest.fixture
def batch():
    n = 120
    return make_batch(np.arange(n), np.sin(np.arange(n) / 5.0), horizon=n)


class TestExecutePlan:
    def test_unknown_engine_rejected(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        with pytest.raises(ExecutionError):
            execute_plan(plan, batch, engine="spark")

    def test_validation_runs_by_default(self, batch):
        from repro.plans.builder import PlanBuilder
        from repro.plans.nodes import LogicalPlan
        from repro.errors import PlanError

        builder = PlanBuilder()
        node = builder.window_aggregate(
            Window(30, 30), MIN, builder.source, provider=Window(20, 20)
        )
        bad = LogicalPlan(root=node, source=builder.source, aggregate=MIN)
        with pytest.raises(PlanError):
            execute_plan(bad, batch)

    def test_throughput_positive(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        result = execute_plan(plan, batch)
        assert result.throughput > 0
        assert result.stats.events == batch.num_events

    def test_results_keyed_by_user_windows(self, batch, example7_windows):
        gmin = min_cost_wcg(example7_windows, CoverageSemantics.PARTITIONED_BY)
        plan = rewrite_plan(gmin, MIN)
        result = execute_plan(plan, batch)
        assert set(result.results) == set(example7_windows)

    def test_holistic_plan_executes(self, batch):
        plan = original_plan(WindowSet([Window(20, 20)]), MEDIAN)
        result = execute_plan(plan, batch)
        assert result.results[Window(20, 20)].shape == (1, 6)


class TestRecords:
    def test_to_records_sorted_and_complete(self, batch):
        plan = original_plan(WindowSet([Window(30, 30), Window(20, 20)]), MIN)
        records = execute_plan(plan, batch).to_records()
        assert len(records) == 6 + 4  # W20: 6 instances, W30: 4
        labels = [r[0] for r in records]
        assert labels == sorted(labels)

    def test_drop_empty(self):
        batch = make_batch([25], [1.0], horizon=30)
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        records = execute_plan(plan, batch).to_records(drop_empty=True)
        assert len(records) == 1
        assert records[0][2] == 2  # instance [20, 30)


class TestResultsEqual:
    def test_equal_results(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        a = execute_plan(plan, batch)
        b = execute_plan(plan, batch)
        assert results_equal(a, b)

    def test_different_windows_not_equal(self, batch):
        a = execute_plan(original_plan(WindowSet([Window(10, 10)]), MIN), batch)
        b = execute_plan(original_plan(WindowSet([Window(20, 20)]), MIN), batch)
        assert not results_equal(a, b)

    def test_nan_equals_nan(self):
        batch = make_batch([25], [1.0], horizon=30)
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        a = execute_plan(plan, batch)
        b = execute_plan(plan, batch, engine="streaming")
        assert results_equal(a, b)


class TestEngineRegistry:
    def test_all_builtin_paths_registered(self):
        from repro.engine.executor import available_engines

        assert set(available_engines()) >= {
            "columnar",
            "columnar-panes",
            "streaming",
            "streaming-chunked",
        }

    def test_registry_is_extensible(self, batch):
        from repro.engine.executor import (
            _ENGINES,
            execute_plan,
            register_engine,
        )

        @register_engine("echo")
        def _echo(plan, batch, **kwargs):
            return execute_plan(plan, batch, engine="columnar")

        try:
            plan = original_plan(WindowSet([Window(10, 10)]), MIN)
            result = execute_plan(plan, batch, engine="echo")
            assert result.stats.events == batch.num_events
        finally:
            del _ENGINES["echo"]

    def test_engine_kwargs_forwarded(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        result = execute_plan(
            plan, batch, engine="streaming-chunked", chunk_ticks=17
        )
        assert result.stats.events == batch.num_events


class TestLogicalPhysicalSplit:
    def test_naive_paths_mirror_logical(self, batch):
        plan = original_plan(WindowSet([Window(20, 10)]), MIN)
        result = execute_plan(plan, batch, engine="columnar")
        assert result.stats.total_physical == result.stats.total_pairs
        assert result.stats.physical_fraction == 1.0

    def test_pane_path_reports_fewer_physical(self, batch):
        plan = original_plan(WindowSet([Window(60, 10)]), MIN)  # k = 6
        fast = execute_plan(plan, batch, engine="columnar-panes")
        assert fast.stats.total_physical < fast.stats.total_pairs
        assert 0 < fast.stats.physical_fraction < 1

    def test_stats_merge_combines_both_counters(self):
        from repro.engine.stats import ExecutionStats

        a = ExecutionStats(events=5)
        a.record_pairs(Window(10, 10), 100)
        a.record_binned(5)
        b = ExecutionStats(events=3)
        b.record_pairs(Window(10, 10), 50, physical=7)
        a.merge(b)
        assert a.events == 8
        assert a.pairs_per_window[Window(10, 10)] == 150
        assert a.physical_per_window[Window(10, 10)] == 107
        assert a.events_binned == 5
        assert a.total_physical == 112


class TestRecordsVectorized:
    def test_multi_key_order_is_key_major(self):
        batch = make_batch(
            [0, 5, 12, 18], [1.0, 2.0, 3.0, 4.0],
            keys=[0, 1, 0, 1], num_keys=2, horizon=20,
        )
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        records = execute_plan(plan, batch).to_records()
        assert [(r[1], r[2]) for r in records] == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]
        assert records[0][3] == 1.0 and records[3][3] == 4.0

    def test_record_types_are_python_scalars(self, batch):
        plan = original_plan(WindowSet([Window(10, 10)]), MIN)
        label, key, instance, value = execute_plan(plan, batch).to_records()[0]
        assert isinstance(key, int)
        assert isinstance(instance, int)
        assert isinstance(value, float)
