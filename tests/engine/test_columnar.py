"""Tests for the columnar engine's window-aggregate operators."""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, COUNT, MAX, MEDIAN, MIN, SUM
from repro.engine.columnar import (
    aggregate_from_provider,
    aggregate_raw,
    aggregate_raw_holistic,
    num_complete_instances,
)
from repro.engine.events import make_batch
from repro.engine.stats import ExecutionStats
from repro.errors import ExecutionError
from repro.windows.window import Window


def _brute_force(batch, window, aggregate, key=0):
    """Reference: aggregate each instance directly from raw events."""
    out = []
    for m in window.instance_range(batch.horizon):
        start, end = window.interval(m)
        values = [
            v
            for t, k, v in batch.rows()
            if start <= t < end and k == key
        ]
        out.append(aggregate.compute(values))
    return np.asarray(out)


@pytest.fixture
def tiny_batch():
    rng = np.random.default_rng(3)
    n = 60
    return make_batch(
        np.arange(n), rng.normal(0, 10, n), keys=rng.integers(0, 2, n),
        num_keys=2, horizon=n,
    )


class TestAggregateRaw:
    @pytest.mark.parametrize("aggregate", [MIN, MAX, SUM, COUNT, AVG])
    @pytest.mark.parametrize(
        "window", [Window(10, 10), Window(10, 5), Window(12, 4)]
    )
    def test_matches_brute_force(self, tiny_batch, aggregate, window):
        state = aggregate_raw(tiny_batch, window, aggregate)
        finalized = state.finalized(aggregate)
        for key in range(2):
            expected = _brute_force(tiny_batch, window, aggregate, key)
            np.testing.assert_allclose(
                finalized[key], expected, rtol=1e-9, equal_nan=True
            )

    def test_pair_count_tumbling(self, tiny_batch):
        stats = ExecutionStats()
        aggregate_raw(tiny_batch, Window(10, 10), MIN, stats)
        # Every event hits exactly one complete instance.
        assert stats.total_pairs == 60

    def test_pair_count_hopping(self, tiny_batch):
        stats = ExecutionStats()
        aggregate_raw(tiny_batch, Window(10, 5), MIN, stats)
        # k = 2 instances per event, minus edge effects at stream start
        # (events in [0,5) hit one instance) and end (instances past the
        # horizon are not produced).
        assert 100 <= stats.total_pairs <= 120

    def test_empty_batch(self):
        batch = make_batch([], [], horizon=40)
        state = aggregate_raw(batch, Window(10, 10), MIN)
        assert state.num_instances == 4
        assert np.all(np.isnan(state.finalized(MIN)))

    def test_short_horizon_no_instances(self):
        batch = make_batch([0, 1], [1.0, 2.0], horizon=5)
        state = aggregate_raw(batch, Window(10, 10), MIN)
        assert state.num_instances == 0

    def test_num_complete_instances(self):
        assert num_complete_instances(Window(10, 5), 30) == 5
        assert num_complete_instances(Window(10, 5), 9) == 0


class TestAggregateFromProvider:
    @pytest.mark.parametrize("aggregate", [MIN, MAX])
    def test_covered_merge_matches_raw(self, tiny_batch, aggregate):
        provider, consumer = Window(8, 2), Window(10, 2)
        provider_state = aggregate_raw(tiny_batch, provider, aggregate)
        state = aggregate_from_provider(
            provider_state, consumer, aggregate, tiny_batch.horizon
        )
        direct = aggregate_raw(tiny_batch, consumer, aggregate)
        np.testing.assert_allclose(
            state.finalized(aggregate),
            direct.finalized(aggregate),
            equal_nan=True,
        )

    @pytest.mark.parametrize("aggregate", [SUM, COUNT, AVG])
    def test_partitioned_merge_matches_raw(self, tiny_batch, aggregate):
        provider, consumer = Window(5, 5), Window(20, 10)
        provider_state = aggregate_raw(tiny_batch, provider, aggregate)
        state = aggregate_from_provider(
            provider_state, consumer, aggregate, tiny_batch.horizon
        )
        direct = aggregate_raw(tiny_batch, consumer, aggregate)
        np.testing.assert_allclose(
            state.finalized(aggregate),
            direct.finalized(aggregate),
            rtol=1e-9,
            equal_nan=True,
        )

    def test_pair_count_matches_multiplier(self, tiny_batch):
        provider, consumer = Window(10, 10), Window(30, 30)
        provider_state = aggregate_raw(tiny_batch, provider, MIN)
        stats = ExecutionStats()
        aggregate_from_provider(
            provider_state, consumer, MIN, tiny_batch.horizon, stats
        )
        # 2 complete consumer instances * M=3 * 2 keys.
        assert stats.pairs_per_window[consumer] == 2 * 3 * 2

    def test_uncovered_provider_rejected(self, tiny_batch):
        from repro.errors import ReproError

        provider_state = aggregate_raw(tiny_batch, Window(4, 4), MIN)
        with pytest.raises(ReproError):
            aggregate_from_provider(
                provider_state, Window(10, 10), MIN, tiny_batch.horizon
            )

    def test_chained_providers(self, tiny_batch):
        # W(10) -> W(20) -> W(40)' three-level chain, still exact.
        s10 = aggregate_raw(tiny_batch, Window(10, 10), MIN)
        s20 = aggregate_from_provider(
            s10, Window(20, 20), MIN, tiny_batch.horizon
        )
        s40 = aggregate_from_provider(
            s20, Window(40, 40), MIN, tiny_batch.horizon
        )
        direct = aggregate_raw(tiny_batch, Window(40, 40), MIN)
        np.testing.assert_allclose(
            s40.finalized(MIN), direct.finalized(MIN), equal_nan=True
        )


class TestHolisticPath:
    def test_median_matches_brute_force(self, tiny_batch):
        out = aggregate_raw_holistic(tiny_batch, Window(12, 4), MEDIAN)
        for key in range(2):
            expected = _brute_force(tiny_batch, Window(12, 4), MEDIAN, key)
            np.testing.assert_allclose(out[key], expected, equal_nan=True)

    def test_empty_batch_all_nan(self):
        batch = make_batch([], [], horizon=24)
        out = aggregate_raw_holistic(batch, Window(12, 4), MEDIAN)
        assert np.all(np.isnan(out))
