"""Property tests for DESIGN.md invariants 10 and 11 (shard and
ingest-mode invariance).

For any shard count, any out-of-order stream, and any randomized
register/deregister/rate schedule over distributive, algebraic, and
holistic aggregates — in both per-key and global scope — a
:class:`~repro.runtime.ShardedSession`'s merged results must be
**bit-identical** to the 1-shard run, and (for everything a
:class:`~repro.runtime.QuerySession` can express) to the unsharded
session, which invariant 9 already ties to a cold batch run.

The same identity must hold across every execution configuration:
{serial, process, shm} backends × {sync, async} ingest (invariant 11
— the async front door and the shared-memory data plane may change
*when* work happens, never *what* is computed).  The serial-sync run
is the oracle every other cell of the matrix is compared against.

Streams carry integer values so every partial merge is exact float64
arithmetic: bit-identity is required, not just closeness.  Schedules
are seeded from ``REPRO_TEST_SEED`` (printed in the pytest header and
embedded in failure messages) so counterexamples reproduce exactly.
"""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MAX, MEDIAN, MIN, SUM
from repro.core.multiquery import Query
from repro.engine.outoforder import scramble_batch
from repro.runtime import QuerySession, ShardedSession
from repro.windows.window import Window, WindowSet

from session_streams import integer_stream

#: (query, scope) pool mixing taxonomies and both result scopes.
POOL = [
    (Query("q0", WindowSet([Window(8, 4), Window(16, 8)]), MIN), "per_key"),
    (Query("q1", WindowSet([Window(6, 3)]), MIN), "per_key"),
    (Query("q2", WindowSet([Window(10, 5)]), SUM), "per_key"),
    (Query("q3", WindowSet([Window(12, 6)]), AVG), "per_key"),
    (Query("q4", WindowSet([Window(9, 3)]), MEDIAN), "per_key"),
    (Query("q5", WindowSet([Window(12, 4)]), SUM), "global"),
    (Query("q6", WindowSet([Window(8, 4)]), AVG), "global"),
    (Query("q7", WindowSet([Window(12, 12)]), MAX), "global"),
    (Query("q8", WindowSet([Window(6, 3)]), MEDIAN), "global"),  # forward
]

NUM_KEYS = 5
TICKS = 500
SHARD_COUNTS = (1, 2, 3, 8)


def make_schedule(rng, n_events):
    """One randomized register/deregister schedule over the pool."""
    picks = rng.permutation(len(POOL))[: rng.integers(2, 7)]
    register_at = {}
    deregister_at = {}
    survivors = set()
    for slot, index in enumerate(picks):
        query, scope = POOL[index]
        point = int(rng.uniform(0.0, 0.6) * n_events)
        register_at.setdefault(point, []).append((query, scope))
        # Slot 0 always survives so the final workload is non-empty.
        if slot > 0 and rng.random() < 0.4:
            drop = int(rng.uniform(0.65, 0.95) * n_events)
            deregister_at.setdefault(drop, []).append(query.name)
        else:
            survivors.add(query.name)
    return register_at, deregister_at


def run_sharded(
    schedule,
    events,
    horizon,
    num_shards,
    backend="serial",
    lateness=0,
    hysteresis=None,
    async_ingest=False,
    ingest_high_watermark=97,
    fault_plan=None,
    worker_recovery=False,
    elastic_at=None,
):
    # The async high watermark is deliberately small and odd so the
    # pump genuinely interleaves with the producer (queueing, gate
    # closes, synchronization points mid-stream) instead of buffering
    # the whole run.
    register_at, deregister_at = schedule
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=num_shards,
        backend=backend,
        max_lateness=lateness,
        hysteresis=hysteresis,
        alpha=0.6,
        async_ingest=async_ingest,
        ingest_high_watermark=ingest_high_watermark,
        fault_plan=fault_plan,
        worker_recovery=worker_recovery,
        control_timeout=10.0 if fault_plan is not None else None,
    )
    try:
        dropped = set()
        for i, (ts, key, value) in enumerate(events):
            for query, scope in register_at.get(i, ()):
                session.register(query, scope=scope)
            for name in deregister_at.get(i, ()):
                if name in session.queries:
                    session.deregister(name)
                    dropped.add(name)
            for op in (elastic_at or {}).get(i, ()):
                op(session)
        # (registration loop above intentionally interleaves with data)
            session.push(ts, key, value)
        for queries in register_at.values():
            for query, scope in queries:
                if (
                    query.name not in session.queries
                    and query.name not in dropped
                ):
                    session.register(query, scope=scope)
        results = session.finish(horizon=horizon)
        watermarks = session.shard_watermarks()
    finally:
        session.close()
    return results, watermarks


def run_unsharded(schedule, events, horizon, lateness=0, hysteresis=None):
    """The same schedule on a QuerySession — minus forward-mode
    (global holistic) queries, which only the sharded runtime serves."""
    register_at, deregister_at = schedule
    session = QuerySession(
        num_keys=NUM_KEYS,
        max_lateness=lateness,
        hysteresis=hysteresis,
        alpha=0.6,
    )
    forward = {
        query.name
        for point in register_at.values()
        for query, scope in point
        if scope == "global" and not query.aggregate.mergeable
    }
    dropped = set()
    for i, (ts, key, value) in enumerate(events):
        for query, scope in register_at.get(i, ()):
            if query.name not in forward:
                session.register(query, scope=scope)
        for name in deregister_at.get(i, ()):
            if name in session.queries:
                session.deregister(name)
                dropped.add(name)
        session.push(ts, key, value)
    for queries in register_at.values():
        for query, scope in queries:
            if (
                query.name not in session.queries
                and query.name not in dropped
                and query.name not in forward
            ):
                session.register(query, scope=scope)
    return session.finish(horizon=horizon), forward


def assert_results_identical(expected, actual, context):
    assert set(expected) == set(actual), context
    for name in expected:
        assert set(expected[name]) == set(actual[name]), (context, name)
        for window, reference in expected[name].items():
            emitted = actual[name][window]
            assert (
                emitted.start_instance == reference.start_instance
                and emitted.frontier == reference.frontier
            ), (context, name, window)
            np.testing.assert_array_equal(
                emitted.values,
                reference.values,
                err_msg=f"{context} {name}/{window}",
            )


@pytest.mark.parametrize("case", range(4))
def test_randomized_schedules_are_shard_invariant(repro_seed, case):
    rng = np.random.default_rng((repro_seed, case))
    lateness = int(rng.integers(0, 9))
    hysteresis = [None, 0.4][int(rng.integers(0, 2))]
    batch = integer_stream(
        ticks=TICKS,
        num_keys=NUM_KEYS,
        seed=int(rng.integers(0, 1000)),
        rate_segments=((2, TICKS // 2), (6, TICKS - TICKS // 2)),
    )
    events = scramble_batch(batch, lateness, seed=int(rng.integers(0, 100)))
    schedule = make_schedule(rng, len(events))
    context = f"seed={repro_seed} case={case} lateness={lateness}"

    baseline, base_marks = run_sharded(
        schedule,
        events,
        batch.horizon,
        num_shards=1,
        lateness=lateness,
        hysteresis=hysteresis,
    )
    # Watermarks aligned: min over shards == max over shards.
    assert min(base_marks) == max(base_marks), context
    for num_shards in SHARD_COUNTS[1:]:
        results, marks = run_sharded(
            schedule,
            events,
            batch.horizon,
            num_shards=num_shards,
            lateness=lateness,
            hysteresis=hysteresis,
        )
        assert min(marks) == max(marks), (context, num_shards)
        assert_results_identical(
            baseline, results, f"{context} shards={num_shards}"
        )

    # Invariant 10 ties into invariant 9: everything a QuerySession can
    # express matches it bit-for-bit (and invariant 9 ties *that* to a
    # cold batch run).
    unsharded, forward = run_unsharded(
        schedule,
        events,
        batch.horizon,
        lateness=lateness,
        hysteresis=hysteresis,
    )
    comparable = {
        name: by_window
        for name, by_window in baseline.items()
        if name.split("@g")[0] not in forward
    }
    assert_results_identical(unsharded, comparable, f"{context} vs-unsharded")


#: Every execution configuration that must match the serial-sync
#: oracle bit-for-bit: {process, shm} backends in both ingest modes,
#: plus the serial backend behind the async front door.
MATRIX = [
    ("serial", True),
    ("process", False),
    ("process", True),
    ("shm", False),
    ("shm", True),
]


@pytest.mark.parametrize(
    "backend,async_ingest",
    MATRIX,
    ids=[f"{b}-{'async' if a else 'sync'}" for b, a in MATRIX],
)
@pytest.mark.parametrize("num_shards", [2, 3])
def test_backend_matrix_matches_serial_sync_oracle(
    repro_seed, num_shards, backend, async_ingest
):
    """Every backend × ingest-mode cell is observationally identical
    to the deterministic serial-sync oracle under a randomized
    schedule (invariants 10 and 11)."""
    rng = np.random.default_rng((repro_seed, 77, num_shards))
    lateness = int(rng.integers(0, 5))
    batch = integer_stream(
        ticks=300, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    events = scramble_batch(batch, lateness, seed=int(rng.integers(0, 100)))
    schedule = make_schedule(rng, len(events))
    context = (
        f"seed={repro_seed} shards={num_shards} backend={backend} "
        f"async={async_ingest}"
    )

    oracle, _ = run_sharded(
        schedule, events, batch.horizon, num_shards, "serial", lateness
    )
    actual, marks = run_sharded(
        schedule,
        events,
        batch.horizon,
        num_shards,
        backend,
        lateness,
        async_ingest=async_ingest,
    )
    assert min(marks) == max(marks), context
    assert_results_identical(oracle, actual, context)


@pytest.mark.chaos
@pytest.mark.parametrize(
    "backend,async_ingest",
    [("process", False), ("process", True), ("shm", False), ("shm", True)],
    ids=["process-sync", "process-async", "shm-sync", "shm-async"],
)
def test_schedules_survive_injected_worker_crashes(
    repro_seed, backend, async_ingest
):
    """Invariant 12 composed with 10 and 11: a randomized
    register/deregister schedule with a seeded mid-stream worker kill
    — recovered via respawn + replay — still matches the serial-sync
    oracle bit-for-bit, on both worker backends in both ingest modes."""
    from repro.runtime import Fault, FaultPlan

    rng = np.random.default_rng((repro_seed, 131))
    num_shards = int(rng.integers(2, 4))
    lateness = int(rng.integers(0, 5))
    batch = integer_stream(
        ticks=300, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    events = scramble_batch(batch, lateness, seed=int(rng.integers(0, 100)))
    schedule = make_schedule(rng, len(events))
    # NUM_KEYS=5 over 3 shards can leave a shard keyless (no worker
    # slot), so the kill targets slot 0 or 1 — both always exist.
    plan = FaultPlan(
        Fault(
            "kill",
            slot=int(rng.integers(0, 2)),
            at_watermark=int(rng.integers(20, 250)),
        )
    )
    context = (
        f"seed={repro_seed} shards={num_shards} backend={backend} "
        f"async={async_ingest} fault={plan.faults[0]}"
    )

    oracle, _ = run_sharded(
        schedule, events, batch.horizon, num_shards, "serial", lateness
    )
    actual, marks = run_sharded(
        schedule,
        events,
        batch.horizon,
        num_shards,
        backend,
        lateness,
        async_ingest=async_ingest,
        fault_plan=plan,
        worker_recovery=True,
    )
    assert plan.exhausted, context
    assert min(marks) == max(marks), context
    assert_results_identical(oracle, actual, context)


@pytest.mark.parametrize(
    "backend,async_ingest",
    [("serial", False), ("serial", True), ("shm", False), ("shm", True)],
    ids=["serial-sync", "serial-async", "shm-sync", "shm-async"],
)
def test_push_batch_matches_per_event_push(repro_seed, backend, async_ingest):
    """The vectorized sorted fast path is observationally identical to
    pushing the same events one at a time — on every backend, in both
    ingest modes."""
    rng = np.random.default_rng((repro_seed, 99))
    batch = integer_stream(
        ticks=400, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    queries = [
        (POOL[0][0], "per_key"),
        (POOL[2][0], "per_key"),
        (POOL[6][0], "global"),
        (POOL[8][0], "global"),
    ]

    def run(use_batch):
        session = ShardedSession(
            num_keys=NUM_KEYS,
            num_shards=3,
            backend=backend,
            hysteresis=None,
            async_ingest=async_ingest,
            ingest_high_watermark=113,
        )
        try:
            for query, scope in queries:
                session.register(query, scope=scope)
            if use_batch:
                session.push_batch(batch)
            else:
                session.push_many(batch.rows())
            return session.finish(horizon=batch.horizon)
        finally:
            session.close()

    assert_results_identical(
        run(False),
        run(True),
        f"seed={repro_seed} push_batch {backend} async={async_ingest}",
    )


# ---------------------------------------------------------------------
# Zero-copy data plane (DESIGN.md §11)
# ---------------------------------------------------------------------

from repro.engine.events import EVENT_BYTES  # noqa: E402


@pytest.mark.parametrize("backend", ["serial", "shm", "process"])
def test_zero_copy_plane_copies_at_most_once_per_event(
    repro_seed, backend
):
    """End-to-end copy discipline: across partition -> transport ->
    shard-core buffering, each event is materialized at most once
    (``bytes_copied <= EVENT_BYTES * events``), a non-trivial share of
    the stream moves with no copy at all, and the results still match
    the serial oracle bit-for-bit."""
    rng = np.random.default_rng((repro_seed, 1109))
    batch = integer_stream(
        ticks=400, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    queries = [(POOL[0][0], "per_key"), (POOL[2][0], "per_key")]

    def run(which):
        session = ShardedSession(
            num_keys=NUM_KEYS,
            num_shards=2,
            backend=which,
            hysteresis=None,
        )
        try:
            for query, scope in queries:
                session.register(query, scope=scope)
            session.push_batch(batch)
            results = session.finish(horizon=batch.horizon)
            stats = session.stats()
        finally:
            session.close()
        return results, stats

    oracle, _ = run("serial")
    results, stats = run(backend)
    assert_results_identical(
        oracle, results, f"seed={repro_seed} backend={backend}"
    )
    assert stats.bytes_copied <= EVENT_BYTES * batch.num_events, (
        f"{backend}: {stats.bytes_copied} bytes copied for "
        f"{batch.num_events} events (> one copy per event)"
    )
    assert stats.copies_elided > 0, backend


@pytest.mark.parametrize("backend", ["serial", "shm", "process"])
def test_ingest_never_mutates_caller_arrays(repro_seed, backend):
    """The zero-copy plane hands caller arrays (and views of them)
    straight to the shard cores; no stage may write into them."""
    rng = np.random.default_rng((repro_seed, 211))
    batch = integer_stream(
        ticks=300, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    before = (
        batch.timestamps.copy(),
        batch.keys.copy(),
        batch.values.copy(),
    )
    session = ShardedSession(
        num_keys=NUM_KEYS, num_shards=3, backend=backend, hysteresis=None
    )
    try:
        session.register(POOL[2][0], scope="per_key")
        session.register(POOL[8][0], scope="global")
        session.push_batch(batch)
        session.finish(horizon=batch.horizon)
    finally:
        session.close()
    np.testing.assert_array_equal(batch.timestamps, before[0])
    np.testing.assert_array_equal(batch.keys, before[1])
    np.testing.assert_array_equal(batch.values, before[2])


# ---------------------------------------------------------------------
# Elastic shards (DESIGN.md §12): slot moves, splits, and merges are
# observationally invisible — invariant 10 extended to mid-stream
# resharding.
# ---------------------------------------------------------------------

from repro.engine.events import DEFAULT_NUM_SLOTS  # noqa: E402


def make_elastic_ops(rng, n_events):
    """A randomized mid-stream resharding schedule.

    Guarantees at least 3 slot moves, 1 split, and 1 merge actually
    execute (a merge finding a single-shard layout splits first —
    deterministic across backends, since every run applies the same
    ops in the same order to the same stream).  Returns
    ``(ops_at, counts)`` where ``ops_at`` maps an event index to
    callables taking the session.
    """
    n_moves = int(rng.integers(3, 6))
    n_splits = int(rng.integers(1, 3))
    n_merges = int(rng.integers(1, 3))
    kinds = ["move"] * n_moves + ["split"] * n_splits + ["merge"] * n_merges
    rng.shuffle(kinds)
    ops = []
    for kind in kinds:
        if kind == "move":
            slots = rng.choice(
                DEFAULT_NUM_SLOTS,
                size=int(rng.integers(1, 33)),
                replace=False,
            ).astype(np.int64)
            pick = int(rng.integers(0, 1 << 30))

            def op(session, slots=slots, pick=pick):
                session.move_slots(slots, pick % session.num_shards)

        elif kind == "split":

            def op(session):
                session.split_shard()

        else:
            pick = int(rng.integers(0, 1 << 30))

            def op(session, pick=pick):
                if session.num_shards == 1:
                    session.split_shard()
                session.merge_shard(pick % session.num_shards)

        ops.append(op)
    lo, hi = int(0.1 * n_events), int(0.9 * n_events)
    indices = rng.choice(np.arange(lo, hi), size=len(ops), replace=False)
    ops_at = {}
    for index, op in zip(sorted(int(i) for i in indices), ops):
        ops_at.setdefault(index, []).append(op)
    counts = {"move": n_moves, "split": n_splits, "merge": n_merges}
    return ops_at, counts


@pytest.mark.parametrize("backend", ["serial", "process", "shm"])
def test_elastic_reshard_schedules_are_layout_invariant(repro_seed, backend):
    """Random OOO streams x random slot-move/split/merge schedules x
    every backend: results stay bit-identical to the static 1-shard
    serial oracle, however the layout was reshaped mid-stream."""
    rng = np.random.default_rng((repro_seed, 1201))
    lateness = int(rng.integers(0, 6))
    batch = integer_stream(
        ticks=300, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    events = scramble_batch(batch, lateness, seed=int(rng.integers(0, 100)))
    schedule = make_schedule(rng, len(events))
    ops_at, counts = make_elastic_ops(rng, len(events))
    assert counts["move"] >= 3
    assert counts["split"] >= 1 and counts["merge"] >= 1
    context = (
        f"seed={repro_seed} backend={backend} lateness={lateness} "
        f"ops={counts}"
    )

    oracle, _ = run_sharded(
        schedule, events, batch.horizon, 1, "serial", lateness
    )
    actual, marks = run_sharded(
        schedule,
        events,
        batch.horizon,
        int(rng.integers(2, 4)),
        backend,
        lateness,
        elastic_at=ops_at,
    )
    assert min(marks) == max(marks), context
    assert_results_identical(oracle, actual, context)


@pytest.mark.parametrize("backend", ["serial", "process", "shm"])
def test_spawn_from_emptied_donor_shard(backend):
    """A single migration plan can retire the shard behind backend
    slot 0 (every one of its keys extracted away) while spawning a
    fresh shard — and extracts run before spawns, so by donation time
    the donor core is already keyless.  Regression: the sibling spawn
    used to die with ``extract_keys needs at least one key``."""
    batch = integer_stream(ticks=240, num_keys=NUM_KEYS, seed=7)
    events = list(batch.rows())
    cut = len(events) // 2
    schedule = ({0: [POOL[0], POOL[5]]}, {})

    oracle, _ = run_sharded(schedule, events, batch.horizon, 1, "serial")

    def evacuate(session):
        assert session.partitioner.owned[0].size > 0
        slot_map = session.partitioner.slot_map
        mine = np.where(slot_map == 0)[0].astype(np.int64)
        # One plan, two structural changes: shard 0 retires (all its
        # slots leave) and shard 2 spawns to receive them.
        session.move_slots(mine, 2)
        assert 0 not in session.active_shards
        assert 2 in session.active_shards

    actual, marks = run_sharded(
        schedule, events, batch.horizon, 2, backend,
        elastic_at={cut: [evacuate]},
    )
    assert min(marks) == max(marks)
    assert_results_identical(oracle, actual, f"backend={backend}")


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_elastic_layout_survives_checkpoint_restore(repro_seed, backend):
    """A checkpoint taken after arbitrary resharding records the slot
    map and backend slot order; restore resumes that exact layout and
    the completed run still matches the static serial oracle."""
    rng = np.random.default_rng((repro_seed, 1301))
    batch = integer_stream(
        ticks=300, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    events = list(batch.rows())
    queries = [(POOL[0][0], "per_key"), (POOL[2][0], "per_key"),
               (POOL[5][0], "global"), (POOL[4][0], "per_key")]
    cut = int(0.55 * len(events))
    context = f"seed={repro_seed} backend={backend}"

    oracle_session = ShardedSession(
        num_keys=NUM_KEYS, num_shards=1, hysteresis=None
    )
    for query, scope in queries:
        oracle_session.register(query, scope=scope)
    for ts, key, value in events:
        oracle_session.push(ts, key, value)
    oracle = oracle_session.finish(horizon=batch.horizon)
    oracle_session.close()

    session = ShardedSession(
        num_keys=NUM_KEYS, num_shards=2, backend=backend, hysteresis=None
    )
    for query, scope in queries:
        session.register(query, scope=scope)
    for i, (ts, key, value) in enumerate(events[:cut]):
        session.push(ts, key, value)
        if i == int(0.2 * len(events)):
            session.move_slots(
                np.arange(DEFAULT_NUM_SLOTS // 2, dtype=np.int64), 1
            )
        if i == int(0.4 * len(events)):
            session.split_shard()
    snap = session.snapshot()
    layout = (session.slot_map, list(session.active_shards))
    session.close()

    restored = ShardedSession.restore(snap, backend=backend)
    np.testing.assert_array_equal(restored.slot_map, layout[0])
    assert list(restored.active_shards) == layout[1], context
    for ts, key, value in events[cut:]:
        restored.push(ts, key, value)
    restored.merge_shard(restored.num_shards - 1)
    results = restored.finish(horizon=batch.horizon)
    restored.close()
    assert_results_identical(oracle, results, context)


#: (migration op, backend slot it targets, backend) cells for the
#: chaos matrix below.  The fixed schedule — every slot to shard 1,
#: then a split, then a merge — retires shard 0 at the move, so the
#: five migration op kinds all fire at known backend slots.
CHAOS_MIGRATION_CELLS = [
    ("kill", "extract", 0, "process"),
    ("kill", "absorb", 1, "shm"),
    ("kill", "sibling", 0, "process"),
    ("kill", "remnant", 0, "shm"),
    ("kill", "absorb_remnant", 0, "process"),
    # Regression: the worker acked absorb_remnant, then died before
    # the epoch-end snapshot landed — per-slot replay would resurrect
    # its pre-migration state; the epoch must roll back instead.
    ("kill_mid_op", "absorb_remnant", 0, "process"),
]


@pytest.mark.chaos
@pytest.mark.parametrize(
    "kind,op,slot,backend",
    CHAOS_MIGRATION_CELLS,
    ids=[f"{k}-{o}-{b}" for k, o, _, b in CHAOS_MIGRATION_CELLS],
)
def test_migrations_survive_worker_kill_mid_op(
    repro_seed, kind, op, slot, backend
):
    """A worker killed mid-migration (on each migration op kind) rolls
    the epoch back, redoes the plan, and still matches the serial
    oracle bit-for-bit."""
    from repro.runtime import Fault, FaultPlan

    rng = np.random.default_rng((repro_seed, 1401))
    lateness = int(rng.integers(0, 5))
    batch = integer_stream(
        ticks=300, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000))
    )
    events = scramble_batch(batch, lateness, seed=int(rng.integers(0, 100)))
    schedule = make_schedule(rng, len(events))
    n = len(events)
    ops_at = {
        int(0.35 * n): [
            lambda s: s.move_slots(
                np.arange(DEFAULT_NUM_SLOTS, dtype=np.int64), 1
            )
        ],
        int(0.55 * n): [lambda s: s.split_shard()],
        int(0.8 * n): [lambda s: s.merge_shard(s.num_shards - 1)],
    }
    plan = FaultPlan(Fault(kind=kind, slot=slot, op=op))
    context = f"seed={repro_seed} {kind} on {op}@{slot} backend={backend}"

    oracle, _ = run_sharded(
        schedule, events, batch.horizon, 1, "serial", lateness
    )
    actual, marks = run_sharded(
        schedule,
        events,
        batch.horizon,
        2,
        backend,
        lateness,
        fault_plan=plan,
        worker_recovery=True,
        elastic_at=ops_at,
    )
    assert plan.exhausted, context
    assert min(marks) == max(marks), context
    assert_results_identical(oracle, actual, context)
