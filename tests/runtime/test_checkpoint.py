"""Durability properties: checkpoint format and invariant 12.

Invariant 12 (DESIGN.md §9): a session restored from a snapshot and
fed the remainder of the stream emits **bit-identical** results to the
uninterrupted session — across {serial, process, shm} backends × {sync,
async} ingest, for snapshots taken at any watermark, and regardless of
which backend the snapshot is restored onto.

The checkpoint *file* contract is all-or-nothing: a torn, truncated,
corrupted, or foreign file raises — it never restores garbage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import AVG, MEDIAN, MIN, SUM
from repro.core.multiquery import Query
from repro.errors import ExecutionError
from repro.runtime import (
    CheckpointStore,
    QuerySession,
    ShardedSession,
    Snapshot,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.runtime.checkpoint import CHECKPOINT_MAGIC
from repro.windows.window import Window, WindowSet

from session_streams import integer_stream

NUM_KEYS = 5
TICKS = 200

#: Mixed taxonomies and scopes, including the forward (global-holistic)
#: path that only the sharded coordinator serves.
WORKLOAD = [
    (Query("mins", WindowSet([Window(8, 4), Window(16, 8)]), MIN), "per_key"),
    (Query("sums", WindowSet([Window(10, 5)]), SUM), "global"),
    (Query("avgs", WindowSet([Window(12, 4)]), AVG), "global"),
    (Query("meds", WindowSet([Window(6, 3)]), MEDIAN), "global"),
]

MATRIX = [
    ("serial", False),
    ("serial", True),
    ("process", False),
    ("process", True),
    ("shm", False),
    ("shm", True),
]


def stream_events(seed, lateness=0):
    batch = integer_stream(ticks=TICKS, num_keys=NUM_KEYS, seed=seed)
    events = list(
        zip(
            batch.timestamps.tolist(),
            batch.keys.tolist(),
            batch.values.tolist(),
        )
    )
    if lateness:
        rng = np.random.default_rng(seed)
        jitter = rng.integers(0, lateness + 1, size=len(events))
        order = np.argsort(
            np.array([ts for ts, _, _ in events]) + jitter, kind="stable"
        )
        events = [events[i] for i in order]
    return events, batch.horizon


def assert_identical(expected, actual, context):
    assert set(expected) == set(actual), context
    for name in expected:
        assert set(expected[name]) == set(actual[name]), (context, name)
        for window, reference in expected[name].items():
            emitted = actual[name][window]
            assert (
                emitted.start_instance == reference.start_instance
                and emitted.frontier == reference.frontier
            ), (context, name, window)
            np.testing.assert_array_equal(
                emitted.values,
                reference.values,
                err_msg=f"{context} {name}/{window}",
            )


# ----------------------------------------------------------------------
# Checkpoint file format: all-or-nothing
# ----------------------------------------------------------------------
class TestCheckpointFormat:
    def make_snapshot(self):
        return Snapshot(
            kind="query",
            watermark=40,
            generation=3,
            queries=("sums",),
            payload={"state": b"\x01\x02\x03" * 100},
            meta={"position": 120},
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.rckpt"
        snap = self.make_snapshot()
        assert write_checkpoint(snap, path) == path
        loaded = read_checkpoint(path)
        assert loaded == snap

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ExecutionError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.rckpt")

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "foreign.rckpt"
        path.write_bytes(b"not a checkpoint at all, but long enough" * 4)
        with pytest.raises(ExecutionError, match="not a .* checkpoint"):
            read_checkpoint(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.rckpt"
        write_checkpoint(self.make_snapshot(), path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ExecutionError, match="corrupt or torn"):
            read_checkpoint(path)

    def test_every_corrupted_body_byte_is_detected(self, tmp_path):
        path = tmp_path / "ckpt.rckpt"
        write_checkpoint(self.make_snapshot(), path)
        blob = bytearray(path.read_bytes())
        # Flip one byte somewhere in the body (past the header).
        for offset in range(len(CHECKPOINT_MAGIC) + 2 + 32, len(blob), 37):
            tampered = bytearray(blob)
            tampered[offset] ^= 0xFF
            path.write_bytes(bytes(tampered))
            with pytest.raises(ExecutionError, match="checksum mismatch"):
                read_checkpoint(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "ckpt.rckpt"
        write_checkpoint(self.make_snapshot(), path)
        blob = bytearray(path.read_bytes())
        blob[len(CHECKPOINT_MAGIC)] = 0xEE  # version word
        path.write_bytes(bytes(blob))
        with pytest.raises(ExecutionError, match="not supported"):
            read_checkpoint(path)

    def test_latest_checkpoint_orders_by_watermark(self, tmp_path):
        assert latest_checkpoint(tmp_path / "absent") is None
        store = CheckpointStore(tmp_path)
        for watermark in (30, 10, 200, 90):
            snap = self.make_snapshot()
            snap.watermark = watermark
            store.save(snap)
        assert latest_checkpoint(tmp_path).name == "ckpt-000000000200.rckpt"
        assert store.latest() == latest_checkpoint(tmp_path)

    def test_store_rotation_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for watermark in (10, 20, 30, 40):
            snap = self.make_snapshot()
            snap.watermark = watermark
            store.save(snap)
        names = [p.name for p in store.paths()]
        assert names == ["ckpt-000000000030.rckpt", "ckpt-000000000040.rckpt"]

    def test_store_cadence(self, tmp_path):
        store = CheckpointStore(tmp_path, every=50)
        assert not store.due(49)
        assert store.due(50)
        snap = self.make_snapshot()
        snap.watermark = 60
        store.save(snap)
        assert not store.due(109)
        assert store.due(110)
        assert not CheckpointStore(tmp_path).due(10**9)  # no cadence

    def test_store_validation(self, tmp_path):
        with pytest.raises(ExecutionError):
            CheckpointStore(tmp_path, keep=0)
        with pytest.raises(ExecutionError):
            CheckpointStore(tmp_path, every=0)


# ----------------------------------------------------------------------
# QuerySession: invariant 12, hypothesis-chosen cut points
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    cut=st.integers(min_value=1, max_value=len(stream_events(0)[0]) - 1),
    seed=st.integers(min_value=0, max_value=2**16),
    lateness=st.sampled_from([0, 5]),
    restore_async=st.booleans(),
)
def test_query_session_restores_bit_identically(
    cut, seed, lateness, restore_async
):
    events, horizon = stream_events(seed, lateness)

    def build():
        session = QuerySession(num_keys=NUM_KEYS, max_lateness=lateness)
        for query, scope in WORKLOAD[:3]:
            if scope == "per_key" or query.aggregate.mergeable:
                session.register(query, scope=scope)
        return session

    baseline = build()
    for ts, key, value in events:
        baseline.push(ts, key, value)
    expected = baseline.finish(horizon=horizon)

    live = build()
    for ts, key, value in events[:cut]:
        live.push(ts, key, value)
    snap = live.snapshot()
    restored = QuerySession.restore(snap, async_ingest=restore_async)
    for ts, key, value in events[cut:]:
        restored.push(ts, key, value)
    actual = restored.finish(horizon=horizon)
    assert_identical(expected, actual, f"cut={cut} seed={seed}")
    # The abandoned original is unaffected by the restore's progress.
    assert live.watermark <= restored.watermark


def test_query_session_checkpoint_file_round_trip(tmp_path):
    events, horizon = stream_events(3)
    session = QuerySession(num_keys=NUM_KEYS)
    session.register(WORKLOAD[0][0])
    for ts, key, value in events[:250]:
        session.push(ts, key, value)
    path = tmp_path / "session.rckpt"
    snap = session.snapshot(path=str(path), meta={"position": 250})
    assert read_checkpoint(path).meta == {"position": 250}
    restored = QuerySession.restore(str(path))
    for ts, key, value in events[250:]:
        restored.push(ts, key, value)
    for ts, key, value in events[250:]:
        session.push(ts, key, value)
    assert_identical(
        session.finish(horizon=horizon),
        restored.finish(horizon=horizon),
        "file round trip",
    )
    assert snap.kind == "query"


def test_query_session_async_residue_is_captured_and_replayed():
    events, horizon = stream_events(11)
    baseline = QuerySession(num_keys=NUM_KEYS)
    baseline.register(WORKLOAD[0][0])
    for ts, key, value in events:
        baseline.push(ts, key, value)
    expected = baseline.finish(horizon=horizon)

    session = QuerySession(
        num_keys=NUM_KEYS, async_ingest=True, ingest_high_watermark=37
    )
    session.register(WORKLOAD[0][0])
    for ts, key, value in events[:300]:
        session.push(ts, key, value)
    # The snapshot synchronizes through the pump: everything pushed
    # before it is either applied or captured as residue.
    snap = session.snapshot()
    session.close()
    restored = QuerySession.restore(snap, async_ingest=True)
    for ts, key, value in events[300:]:
        restored.push(ts, key, value)
    assert_identical(
        expected, restored.finish(horizon=horizon), "async residue"
    )
    restored.close()


def test_restore_rejects_wrong_kind():
    session = ShardedSession(num_keys=NUM_KEYS, num_shards=2)
    session.register(WORKLOAD[0][0], scope="per_key")
    snap = session.snapshot()
    session.close()
    with pytest.raises(
        ExecutionError, match="does not restore into a QuerySession"
    ):
        QuerySession.restore(snap)
    q = QuerySession(num_keys=NUM_KEYS)
    qsnap = q.snapshot()
    with pytest.raises(ExecutionError, match="not a ShardedSession"):
        ShardedSession.restore(qsnap)


# ----------------------------------------------------------------------
# ShardedSession: invariant 12 across the backend × ingest matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend,async_ingest", MATRIX)
def test_sharded_session_restores_bit_identically(
    repro_seed, backend, async_ingest
):
    rng = np.random.default_rng(
        (repro_seed, MATRIX.index((backend, async_ingest)))
    )
    seed = int(rng.integers(0, 1000))
    events, horizon = stream_events(seed)
    cut = int(rng.integers(1, len(events)))
    context = f"backend={backend} async={async_ingest} seed={seed} cut={cut}"

    def build(be, async_mode):
        session = ShardedSession(
            num_keys=NUM_KEYS,
            num_shards=3,
            backend=be,
            async_ingest=async_mode,
            ingest_high_watermark=97,
        )
        for query, scope in WORKLOAD:
            session.register(query, scope=scope)
        return session

    oracle = build("serial", False)
    for ts, key, value in events:
        oracle.push(ts, key, value)
    expected = oracle.finish(horizon=horizon)
    oracle.close()

    live = build(backend, async_ingest)
    try:
        for ts, key, value in events[:cut]:
            live.push(ts, key, value)
        snap = live.snapshot()
    finally:
        live.close()

    # Restore on the snapshot's own backend *and* on serial: the
    # backend is an execution detail, never part of the state.
    for restore_backend in dict.fromkeys([backend, "serial"]):
        restored = ShardedSession.restore(
            snap, backend=restore_backend, async_ingest=async_ingest
        )
        try:
            for ts, key, value in events[cut:]:
                restored.push(ts, key, value)
            actual = restored.finish(horizon=horizon)
        finally:
            restored.close()
        assert_identical(
            expected, actual, f"{context} restore={restore_backend}"
        )


def test_sharded_snapshot_preserves_registration_schedule(repro_seed):
    """Snapshot between mutations: the restored session must carry the
    routing table, plan generation, and retired archives across."""
    events, horizon = stream_events(int(repro_seed) % 1000)
    third = len(events) // 3

    def drive(session, resume_from=0, snap_at=None):
        snap = None
        for i, (ts, key, value) in enumerate(events):
            if i < resume_from:
                continue
            if i == third and resume_from <= third:
                session.register(WORKLOAD[2][0], scope="global")
                session.deregister(WORKLOAD[0][0].name)
            session.push(ts, key, value)
            if snap_at is not None and i == snap_at:
                snap = session.snapshot()
        return session.finish(horizon=horizon), snap

    baseline = ShardedSession(num_keys=NUM_KEYS, num_shards=3)
    baseline.register(WORKLOAD[0][0], scope="per_key")
    baseline.register(WORKLOAD[3][0], scope="global")
    expected, _ = drive(baseline)
    baseline.close()

    for snap_at, label in ((third - 1, "before"), (third + 5, "after")):
        live = ShardedSession(num_keys=NUM_KEYS, num_shards=3)
        live.register(WORKLOAD[0][0], scope="per_key")
        live.register(WORKLOAD[3][0], scope="global")
        _, snap = drive(live, snap_at=snap_at)
        live.close()
        assert snap is not None
        restored = ShardedSession.restore(snap)
        actual, _ = drive(restored, resume_from=snap_at + 1)
        restored.close()
        assert_identical(expected, actual, f"mutation {label} snapshot")
        assert snap.generation == restored.generation or label == "before"


def test_sharded_checkpoint_store_rotation_with_live_session(tmp_path):
    events, horizon = stream_events(21)
    store = CheckpointStore(tmp_path, keep=2, every=40)
    session = ShardedSession(num_keys=NUM_KEYS, num_shards=2)
    session.register(WORKLOAD[0][0], scope="per_key")
    saved = 0
    for i, (ts, key, value) in enumerate(events):
        session.push(ts, key, value)
        if store.due(session.watermark):
            # Stream position rides in caller-owned meta — the
            # watermark alone cannot split a tick's events.
            store.save(session.snapshot(meta={"position": i + 1}))
            saved += 1
    expected = session.finish(horizon=horizon)
    session.close()
    assert saved >= 3
    assert len(store.paths()) == 2  # rotated down to keep=2
    latest = read_checkpoint(store.latest())
    restored = ShardedSession.restore(latest)
    for ts, key, value in events[latest.meta["position"] :]:
        restored.push(ts, key, value)
    assert_identical(
        expected, restored.finish(horizon=horizon), "store round trip"
    )
    restored.close()


# ----------------------------------------------------------------------
# Auto-checkpoint: the cadence lives inside the session
# ----------------------------------------------------------------------
class TestAutoCheckpoint:
    """``auto_checkpoint=`` on both session classes: the ingest path
    itself saves at the store's cadence, on the applying thread, so the
    CLI and the session service share one durability code path."""

    QUERY = WORKLOAD[0]

    def feed(self, session, events):
        for ts, key, value in events:
            session.push(ts, key, value)

    @pytest.mark.parametrize("async_ingest", [False, True])
    def test_query_session_cadence_fires_in_the_push_path(
        self, tmp_path, repro_seed, async_ingest
    ):
        events, _ = stream_events(repro_seed)
        saved = []
        store = CheckpointStore(tmp_path, every=25)
        session = QuerySession(
            num_keys=NUM_KEYS,
            async_ingest=async_ingest,
            auto_checkpoint=store,
            checkpoint_meta=lambda: {"tag": "auto"},
            on_checkpoint=lambda snap, path: saved.append(
                (snap.watermark, path)
            ),
        )
        try:
            query, scope = self.QUERY
            session.register(query, scope=scope)
            self.feed(session, events)
            _ = session.switches  # async mode: pump sync point
        finally:
            session.close()
        assert len(saved) >= 5
        # Strictly increasing watermarks, each >= the cadence apart.
        marks = [wm for wm, _ in saved]
        assert all(b - a >= 25 for a, b in zip(marks, marks[1:]))
        # Every save hit disk, is the store's own rotation, and the
        # meta provider's payload rode along.
        assert store.latest() is not None
        newest = read_checkpoint(store.latest())
        assert newest.meta["tag"] == "auto"
        assert newest.watermark == marks[-1]

    def test_sharded_session_cadence_fires_in_both_push_paths(
        self, tmp_path, repro_seed
    ):
        batch = integer_stream(ticks=TICKS, num_keys=NUM_KEYS, seed=repro_seed)
        saved = []
        store = CheckpointStore(tmp_path, every=40)
        session = ShardedSession(
            num_keys=NUM_KEYS,
            num_shards=2,
            backend="serial",
            auto_checkpoint=store,
            on_checkpoint=lambda snap, path: saved.append(snap.watermark),
        )
        try:
            query, scope = self.QUERY
            session.register(query, scope=scope)
            half = batch.num_events // 2
            # The vectorized batch path first (it needs an untouched
            # reorder buffer), then the scalar path — the cadence must
            # keep rolling across both.
            from repro.engine.events import EventBatch

            session.push_batch(
                EventBatch(
                    timestamps=batch.timestamps[:half],
                    keys=batch.keys[:half],
                    values=batch.values[:half],
                    horizon=batch.horizon,
                    num_keys=batch.num_keys,
                )
            )
            for i in range(half, batch.num_events):
                session.push(
                    int(batch.timestamps[i]),
                    int(batch.keys[i]),
                    float(batch.values[i]),
                )
        finally:
            session.close()
        assert len(saved) >= 3
        assert all(b - a >= 40 for a, b in zip(saved, saved[1:]))

    def test_auto_checkpoint_requires_a_cadence(self, tmp_path):
        store = CheckpointStore(tmp_path)  # no every=
        with pytest.raises(ExecutionError, match="cadence"):
            QuerySession(num_keys=NUM_KEYS, auto_checkpoint=store)

    def test_restore_keeps_the_cadence_rolling(self, tmp_path, repro_seed):
        """Crash after an auto-save, restore with the same store, keep
        streaming: the remaining saves land as if nothing happened, and
        the final results are bit-identical to an uninterrupted run."""
        events, horizon = stream_events(repro_seed)
        query, scope = self.QUERY

        uninterrupted = QuerySession(num_keys=NUM_KEYS)
        try:
            uninterrupted.register(query, scope=scope)
            self.feed(uninterrupted, events)
            expected = uninterrupted.finish(horizon=horizon)
        finally:
            uninterrupted.close()

        store = CheckpointStore(tmp_path, every=30)
        cut = len(events) // 2
        first = QuerySession(num_keys=NUM_KEYS, auto_checkpoint=store)
        applied = 0
        try:
            first.register(query, scope=scope)
            self.feed(first, events[:cut])
            stats = first.reorder_stats
            applied = stats.accepted + stats.late_dropped
        finally:
            first.close()  # the "crash": whatever was saved is saved

        resume_from = read_checkpoint(store.latest())
        second = QuerySession.restore(
            resume_from, auto_checkpoint=store
        )
        try:
            # Resume from the snapshot's own exact position (the
            # restored reorder counters), not the crash position.
            stats = second.reorder_stats
            position = stats.accepted + stats.late_dropped
            assert position <= applied
            before = len(store.paths())
            self.feed(second, events[position:])
            assert len(store.paths()) > before  # cadence kept rolling
            actual = second.finish(horizon=horizon)
        finally:
            second.close()
        assert_identical(
            expected, actual, f"seed={repro_seed} auto-restore"
        )

    def test_sharded_snapshots_never_perturb_results(
        self, tmp_path, repro_seed
    ):
        """Snapshotting is observationally free: a sharded session
        auto-checkpointing at an aggressive cadence emits results
        bit-identical to one that never snapshots (the pre-snapshot
        feed must not advance the watermark)."""
        events, horizon = stream_events(repro_seed)

        def run(**kw):
            session = ShardedSession(
                num_keys=NUM_KEYS, num_shards=2, backend="serial", **kw
            )
            try:
                for query, scope in WORKLOAD:
                    session.register(query, scope=scope)
                self.feed(session, events)
                return session.finish(horizon=horizon)
            finally:
                session.close()

        plain = run()
        chatty = run(auto_checkpoint=CheckpointStore(tmp_path, every=10))
        assert_identical(
            plain, chatty, f"seed={repro_seed} cadence-invariance"
        )
