"""Stream builders for the live-session runtime tests.

Integer-valued streams make every built-in mergeable aggregate's
partial arithmetic *exact* in float64, so session output must be
**bit**-identical to a cold batch run regardless of how the live chunk
boundaries fall (DESIGN.md invariant 9's strongest form).
"""

from __future__ import annotations

import numpy as np

from repro.core.multiquery import optimize_workload
from repro.engine.events import EventBatch
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan


def integer_stream(
    ticks: int,
    rate: int = 2,
    num_keys: int = 2,
    seed: int = 0,
    rate_segments: "tuple[tuple[int, int], ...] | None" = None,
) -> EventBatch:
    """A sorted stream of integer-valued events.

    ``rate_segments`` overrides ``rate`` with ``(rate, span_ticks)``
    pieces — the rate-drift traces the adaptive tests replay.
    """
    rng = np.random.default_rng(seed)
    parts = []
    t0 = 0
    segments = rate_segments or ((rate, ticks),)
    for seg_rate, span in segments:
        if seg_rate > 0:
            parts.append(np.repeat(np.arange(t0, t0 + span), seg_rate))
        t0 += span
    ts = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    n = ts.size
    return EventBatch(
        timestamps=ts.astype(np.int64),
        keys=rng.integers(0, num_keys, n).astype(np.int64),
        values=rng.integers(0, 1000, n).astype(np.float64),
        horizon=t0,
        num_keys=num_keys,
    )


def cold_reference(queries, batch):
    """Per-(query, window) result arrays of a cold batch optimization —
    the invariant-9 reference every session test compares against."""
    workload = optimize_workload(list(queries))
    out = {}
    for group in workload.groups:
        plan = group.plan or original_plan(group.combined, group.aggregate)
        result = execute_plan(plan, batch, engine="streaming-chunked")
        for query in group.queries:
            for window in query.windows:
                out[(query.name, window)] = result.results[window]
    return out
