"""API tests for the key-sharded runtime (DESIGN.md §7).

Complements the invariant-10 property suite with directed checks of
the coordinator: global-scope merging against collapsed-key
references, watermark alignment, the consuming read path, stats
aggregation, and the error surface of both backends.
"""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MEDIAN, MIN, STDEV, SUM
from repro.core.multiquery import Query
from repro.errors import ExecutionError
from repro.runtime import QuerySession, ShardedSession
from repro.windows.window import Window, WindowSet

from session_streams import integer_stream

QA = Query("a", WindowSet([Window(20, 10), Window(40, 20)]), MIN)
QB = Query("b", WindowSet([Window(24, 12)]), SUM)
NUM_KEYS = 6


@pytest.fixture
def int_stream():
    return integer_stream(ticks=600, rate=2, num_keys=NUM_KEYS, seed=21)


def collapsed_reference(stream, query, horizon):
    """The global answer computed the slow, obviously-correct way: all
    keys mapped onto one."""
    session = QuerySession(num_keys=1, hysteresis=None)
    session.register(query)
    for ts, _key, value in stream.rows():
        session.push(ts, 0, value)
    return session.finish(horizon=horizon)


class TestGlobalScope:
    @pytest.mark.parametrize(
        "aggregate", [SUM, AVG, STDEV], ids=lambda a: a.name
    )
    def test_partial_merge_matches_collapsed_keys(
        self, int_stream, aggregate
    ):
        """Vectorized cross-shard ``combine`` equals aggregating the
        un-keyed stream directly (exact for integer values)."""
        query = Query("g", WindowSet([Window(20, 10)]), aggregate)
        reference = collapsed_reference(
            int_stream, query, int_stream.horizon
        )
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=3, hysteresis=None
        )
        session.register(query, scope="global")
        session.push_many(int_stream.rows())
        results = session.finish(horizon=int_stream.horizon)
        emitted = results["g"][Window(20, 10)]
        assert emitted.values.shape[0] == 1  # one global row
        if aggregate is STDEV:
            # Gaussian-free integer stream, but STDEV finalization
            # involves a sqrt of a difference — allow reassociation.
            np.testing.assert_allclose(
                emitted.values,
                reference["g"][Window(20, 10)].values,
                rtol=1e-9,
            )
        else:
            np.testing.assert_array_equal(
                emitted.values, reference["g"][Window(20, 10)].values
            )

    def test_holistic_forwarding_matches_collapsed_keys(self, int_stream):
        """Global MEDIAN has no partial form: raw forwarding to the
        coordinator core must equal the collapsed-key run exactly."""
        query = Query("h", WindowSet([Window(30, 15)]), MEDIAN)
        reference = collapsed_reference(
            int_stream, query, int_stream.horizon
        )
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=4, hysteresis=None
        )
        session.register(query, scope="global")
        session.push_many(int_stream.rows())
        results = session.finish(horizon=int_stream.horizon)
        np.testing.assert_array_equal(
            results["h"][Window(30, 15)].values,
            reference["h"][Window(30, 15)].values,
        )

    def test_midstream_holistic_registration_starts_aligned(
        self, int_stream
    ):
        """A global holistic query registered mid-stream owns only
        instances from its aligned activation start — and matches the
        collapsed-key reference on that suffix."""
        query = Query("h", WindowSet([Window(30, 15)]), MEDIAN)
        reference = collapsed_reference(
            int_stream, query, int_stream.horizon
        )["h"][Window(30, 15)]
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=3, hysteresis=None
        )
        session.register(QA)
        rows = list(int_stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                session.register(query, scope="global")
            session.push(ts, key, value)
        results = session.finish(horizon=int_stream.horizon)
        emitted = results["h"][Window(30, 15)]
        assert emitted.start_instance > 0
        assert emitted.frontier == reference.frontier
        np.testing.assert_array_equal(
            emitted.values,
            reference.values[:, emitted.start_instance:],
        )

    def test_global_and_per_key_share_operators(self, int_stream):
        """A global and a per-key query over the same window share one
        operator: logical pairs match the per-key-only run."""
        def pairs(with_global):
            session = ShardedSession(
                num_keys=NUM_KEYS, num_shards=2, hysteresis=None
            )
            session.register(QA)
            if with_global:
                session.register(
                    Query("g", QA.windows, MIN), scope="global"
                )
            session.push_many(int_stream.rows())
            session.finish(horizon=int_stream.horizon)
            return session.stats().total_pairs

        assert pairs(True) == pairs(False)


class TestCoordination:
    def test_watermarks_stay_aligned(self, int_stream):
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=4, hysteresis=None
        )
        session.register(QA)
        rows = list(int_stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            session.push(ts, key, value)
            if i % 300 == 299:
                marks = session.shard_watermarks()
                assert min(marks) == max(marks) == session.watermark
        session.finish(horizon=int_stream.horizon)
        marks = session.shard_watermarks()
        assert min(marks) == max(marks) == int_stream.horizon

    def test_stats_match_unsharded_session(self, int_stream):
        """Logical pairs are a pure function of (stream, workload):
        sharding must not change the work the cost model prices."""
        unsharded = QuerySession(num_keys=NUM_KEYS, hysteresis=None)
        sharded = ShardedSession(
            num_keys=NUM_KEYS, num_shards=3, hysteresis=None
        )
        for session in (unsharded, sharded):
            session.register(QA)
            session.register(QB)
            session.push_many(int_stream.rows())
            session.finish(horizon=int_stream.horizon)
        assert (
            sharded.stats().pairs_per_window
            == unsharded.stats().pairs_per_window
        )

    def test_drain_results_consumes_and_reassembles(self, int_stream):
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=3, hysteresis=None
        )
        session.register(QA)
        session.register(Query("g", WindowSet([Window(20, 10)]), SUM),
                         scope="global")
        reference = None
        pieces = []
        rows = list(int_stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            session.push(ts, key, value)
            if i % 400 == 399:
                pieces.append(session.drain_results())
        session.finish(horizon=int_stream.horizon)
        pieces.append(session.drain_results())
        cold = ShardedSession(num_keys=NUM_KEYS, num_shards=3,
                              hysteresis=None)
        cold.register(QA)
        cold.register(Query("g", WindowSet([Window(20, 10)]), SUM),
                      scope="global")
        cold.push_many(int_stream.rows())
        reference = cold.finish(horizon=int_stream.horizon)
        for name, window in (
            ("a", Window(20, 10)),
            ("a", Window(40, 20)),
            ("g", Window(20, 10)),
        ):
            parts = [
                p[name][window]
                for p in pieces
                if name in p and window in p[name]
            ]
            for left, right in zip(parts, parts[1:]):
                assert right.start_instance == left.frontier
            stitched = np.concatenate([p.values for p in parts], axis=1)
            np.testing.assert_array_equal(
                stitched, reference[name][window].values
            )

    def test_switch_broadcast_reaches_every_shard(self, int_stream):
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=3, hysteresis=None
        )
        session.register(QA)
        rows = list(int_stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                session.register(QB)
            session.push(ts, key, value)
        session.finish(horizon=int_stream.horizon)
        logs = session.shard_switches()
        assert len(logs) == len(session.active_shards) >= 2
        for log in logs[1:]:
            assert [
                (s.generation, s.reason, s.key, s.watermark)
                for s in log
            ] == [
                (s.generation, s.reason, s.key, s.watermark)
                for s in logs[0]
            ]


class TestApiSurface:
    def test_scope_validation(self):
        session = ShardedSession(num_keys=2, num_shards=2, hysteresis=None)
        with pytest.raises(ExecutionError):
            session.register(QA, scope="banana")

    def test_duplicate_name_rejected(self):
        session = ShardedSession(num_keys=2, num_shards=2, hysteresis=None)
        session.register(QA)
        with pytest.raises(ExecutionError):
            session.register(QA)

    def test_unknown_deregister_rejected(self):
        session = ShardedSession(num_keys=2, num_shards=2, hysteresis=None)
        with pytest.raises(ExecutionError):
            session.deregister("ghost")

    def test_key_range_validated(self):
        session = ShardedSession(num_keys=2, num_shards=2, hysteresis=None)
        session.register(QA)
        with pytest.raises(ExecutionError):
            session.push(0, 2, 1.0)

    def test_push_after_finish_rejected(self):
        session = ShardedSession(num_keys=2, num_shards=2, hysteresis=None)
        session.register(QA)
        session.finish()
        with pytest.raises(ExecutionError):
            session.push(0, 0, 1.0)

    def test_push_batch_requires_in_order_front_door(self, int_stream):
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=2, max_lateness=4,
            hysteresis=None,
        )
        session.register(QA)
        with pytest.raises(ExecutionError):
            session.push_batch(int_stream)

    def test_push_batch_rejects_out_of_order_continuation(self):
        """A second batch must start at or after the newest *seen*
        timestamp — not merely the chunk-clock watermark, which can
        trail events still sitting in the chunk buffer."""
        from repro.engine.events import make_batch

        session = ShardedSession(
            num_keys=2, num_shards=2, chunk_ticks=1000, hysteresis=None
        )
        session.register(QA)
        # Stays buffered: no chunk boundary is crossed, so the
        # coordinator watermark is still 0.
        session.push_batch(
            make_batch([150], [1.0], keys=[0], num_keys=2, horizon=151)
        )
        assert session.watermark == 0
        with pytest.raises(ExecutionError):
            session.push_batch(
                make_batch([20], [1.0], keys=[1], num_keys=2, horizon=21)
            )

    def test_closed_session_fails_loudly(self, int_stream):
        """After close() every surface raises — never a silent empty
        result (the backend and its results are gone)."""
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=2, backend="process",
            hysteresis=None,
        )
        session.register(QA)
        session.push_many(list(int_stream.rows())[:300])
        session.close()
        with pytest.raises(ExecutionError):
            session.push(9999, 0, 1.0)
        with pytest.raises(ExecutionError):
            session.finish()
        with pytest.raises(ExecutionError):
            session.results()
        with pytest.raises(ExecutionError):
            session.stats()
        session.close()  # idempotent

    def test_mode_memory_stays_bounded(self):
        """The cross-core-set name-collision guard ages out with the
        archives it protects — no unbounded per-name growth."""
        session = ShardedSession(
            num_keys=2, num_shards=2, hysteresis=None,
            max_retired_results=3,
        )
        for i in range(20):
            name = session.register(
                Query(f"d{i}", WindowSet([Window(10, 5)]), SUM)
            )
            session.deregister(name)
        assert len(session._modes) <= 3

    def test_cross_core_name_reuse_rejected(self, int_stream):
        """A name whose archive lives on the shard cores cannot be
        re-registered on the forwarding core (and vice versa) — the
        two archives cannot be reconciled."""
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=2, hysteresis=None
        )
        session.register(Query("x", WindowSet([Window(10, 5)]), SUM))
        session.push_many(list(int_stream.rows())[:200])
        session.deregister("x")
        with pytest.raises(ExecutionError):
            session.register(
                Query("x", WindowSet([Window(10, 5)]), MEDIAN),
                scope="global",
            )

    def test_sql_registration_with_auto_name(self, int_stream):
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=2, hysteresis=None
        )
        name = session.register(
            "SELECT MIN(Reading) FROM Sensors "
            "GROUP BY WINDOWS(HOPPING(second, 20, 10))"
        )
        assert name == "q1"
        session.push_many(int_stream.rows())
        results = session.finish(horizon=int_stream.horizon)
        assert results["q1"][Window(20, 10)].values.shape[0] == NUM_KEYS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError):
            ShardedSession(num_keys=2, num_shards=2, backend="quantum")


class TestProcessBackend:
    def test_worker_error_propagates(self):
        session = ShardedSession(
            num_keys=4, num_shards=2, backend="process", hysteresis=None
        )
        try:
            session.register(QA)
            with pytest.raises(ExecutionError):
                # Duplicate registration fails inside the workers and
                # must surface as a clean coordinator-side error.
                session.backend.register(QA, session.watermark, "per_key")
        finally:
            session.close()

    def test_reply_stream_survives_command_failure(self, int_stream):
        """A failing synchronous command must drain every worker's
        reply: later commands must not consume stale replies."""
        session = ShardedSession(
            num_keys=NUM_KEYS, num_shards=3, backend="process",
            hysteresis=None,
        )
        try:
            session.register(QA)
            rows = list(int_stream.rows())
            session.push_many(rows[:400])
            with pytest.raises(ExecutionError):
                session.backend.deregister("ghost", session.watermark)
            # The reply stream is still aligned: results arrive intact.
            session.push_many(rows[400:])
            results = session.finish(horizon=int_stream.horizon)
            serial = ShardedSession(
                num_keys=NUM_KEYS, num_shards=3, hysteresis=None
            )
            serial.register(QA)
            serial.push_many(rows)
            reference = serial.finish(horizon=int_stream.horizon)
            for window in QA.windows:
                np.testing.assert_array_equal(
                    results["a"][window].values,
                    reference["a"][window].values,
                )
        finally:
            session.close()

    def test_context_manager_closes_workers(self, int_stream):
        with ShardedSession(
            num_keys=NUM_KEYS, num_shards=2, backend="process",
            hysteresis=None,
        ) as session:
            session.register(QA)
            session.push_many(list(int_stream.rows())[:400])
            session.finish()
        for proc in session.backend._procs:
            assert not proc.is_alive()
