"""Unit tests for the chunked operators' live-session protocol:
unbounded mode, aligned starts, handoff/adopt, draining caps, and the
emission sink (the machinery DESIGN.md §6 builds the session on)."""

import numpy as np
import pytest

from repro.aggregates.registry import MIN, SUM
from repro.engine.stats import ExecutionStats
from repro.engine.streaming import (
    _ChunkedRawOperator,
    _ChunkedSubAggOperator,
)
from repro.errors import ExecutionError
from repro.windows.window import Window


def _run_chunks(op, ts, keys, values, horizon, chunk=16):
    for start in range(0, horizon, chunk):
        end = min(start + chunk, horizon)
        lo = int(np.searchsorted(ts, start))
        hi = int(np.searchsorted(ts, end))
        op.absorb(ts[lo:hi], keys[lo:hi], values[lo:hi])
        op.advance(end)


class _Collect:
    def __init__(self):
        self.blocks = []

    def __call__(self, window, m0, m1, block):
        self.blocks.append((m0, m1, block))

    def concat(self):
        return np.concatenate([b for _, _, b in self.blocks], axis=1)


@pytest.fixture
def stream():
    rng = np.random.default_rng(3)
    n = 400
    ts = np.sort(rng.integers(0, 200, n)).astype(np.int64)
    keys = np.zeros(n, dtype=np.int64)
    values = rng.integers(0, 100, n).astype(np.float64)
    return ts, keys, values


class TestUnboundedSink:
    def test_unbounded_raw_emits_same_as_batch(self, stream):
        ts, keys, values = stream
        window = Window(20, 10)
        sink = _Collect()
        op = _ChunkedRawOperator(
            window, MIN, 1, None, ExecutionStats(), sink=sink
        )
        _run_chunks(op, ts, keys, values, horizon=200)
        emitted = sink.concat()
        bounded = _ChunkedRawOperator(window, MIN, 1, 19, ExecutionStats())
        bounded.expose_results()
        _run_chunks(bounded, ts, keys, values, horizon=200)
        np.testing.assert_array_equal(emitted, bounded.results)

    def test_expose_results_rejected_when_unbounded(self):
        op = _ChunkedRawOperator(
            Window(10, 10), MIN, 1, None, ExecutionStats()
        )
        with pytest.raises(ExecutionError):
            op.expose_results()


class TestHandoff:
    def test_mid_stream_handoff_is_seamless(self, stream):
        """Splitting a run across a handoff at an arbitrary watermark
        produces the same emissions as an uninterrupted operator."""
        ts, keys, values = stream
        window = Window(20, 10)
        sink = _Collect()
        first = _ChunkedRawOperator(
            window, SUM, 1, None, ExecutionStats(), sink=sink
        )
        cut = int(np.searchsorted(ts, 96))
        _run_chunks(first, ts[:cut], keys[:cut], values[:cut], horizon=96)
        second = _ChunkedRawOperator(
            window, SUM, 1, None, ExecutionStats(), sink=sink
        )
        second.adopt(first.handoff())
        _run_chunks(
            second, ts[cut:], keys[cut:], values[cut:], horizon=200
        )
        reference_sink = _Collect()
        whole = _ChunkedRawOperator(
            window, SUM, 1, None, ExecutionStats(), sink=reference_sink
        )
        _run_chunks(whole, ts, keys, values, horizon=200)
        np.testing.assert_array_equal(
            sink.concat(), reference_sink.concat()
        )

    def test_incompatible_adopt_rejected(self):
        stats = ExecutionStats()
        donor = _ChunkedRawOperator(Window(20, 10), MIN, 1, None, stats)
        heir = _ChunkedRawOperator(Window(20, 10), SUM, 1, None, stats)
        with pytest.raises(ExecutionError):
            heir.adopt(donor.handoff())


class TestDrainingCap:
    def test_cap_limits_owned_instances(self, stream):
        ts, keys, values = stream
        window = Window(20, 10)
        sink = _Collect()
        op = _ChunkedRawOperator(
            window, MIN, 1, None, ExecutionStats(), sink=sink
        )
        op.cap_instances(5)
        _run_chunks(op, ts, keys, values, horizon=200)
        assert op.drained
        assert max(m1 for _, m1, _ in sink.blocks) == 5

    def test_cap_never_revokes_closed_instances(self):
        op = _ChunkedRawOperator(
            Window(10, 10), MIN, 1, None, ExecutionStats()
        )
        op.advance(55)  # closes instances 0..4
        op.cap_instances(2)
        assert op.num_instances == 5  # clamped to next_close


class TestAlignedStart:
    def test_start_instance_skips_earlier_instances(self, stream):
        ts, keys, values = stream
        window = Window(20, 10)
        sink = _Collect()
        op = _ChunkedRawOperator(
            window,
            MIN,
            1,
            None,
            ExecutionStats(),
            start_instance=8,
            sink=sink,
        )
        _run_chunks(op, ts, keys, values, horizon=200)
        assert min(m0 for m0, _, _ in sink.blocks) == 8
        bounded = _ChunkedRawOperator(window, MIN, 1, 19, ExecutionStats())
        bounded.expose_results()
        _run_chunks(bounded, ts, keys, values, horizon=200)
        np.testing.assert_array_equal(
            sink.concat(), bounded.results[:, 8:]
        )


class TestSubAggClipping:
    def test_stale_provider_blocks_ignored(self):
        stats = ExecutionStats()
        provider = Window(10, 10)
        consumer = _ChunkedSubAggOperator(
            provider,
            Window(20, 20),
            MIN,
            1,
            None,
            stats,
            start_instance=3,
        )
        # Blocks before the consumer's coverage (provider instances
        # < 6) are a draining predecessor's traffic: ignored.
        consumer.accept_block(4, 6, (np.full((1, 2), 5.0),))
        assert consumer.retained_state == 0
        # Partial overlap is clipped to the uncovered suffix.
        consumer.accept_block(5, 8, (np.full((1, 3), 7.0),))
        assert consumer.retained_state == 2
        # A genuine gap is still an error.
        with pytest.raises(ExecutionError):
            consumer.accept_block(10, 12, (np.full((1, 2), 1.0),))
