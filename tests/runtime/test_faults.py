"""Chaos properties: deterministic fault injection and crash recovery.

The contract under test (DESIGN.md §9): with ``worker_recovery=True``
a shard-worker crash — injected at any point of the coordinator's
command stream — is absorbed by respawn-from-snapshot plus replay, and
the merged results stay **bit-identical** to a crash-free run
(invariant 12 under fire).  Without recovery, the same crash surfaces
as an :class:`~repro.errors.ExecutionError` carrying actionable
diagnostics: the shard, the exit code, the worker's last-acked
watermark, and its traceback when one was flushed.

Fault schedules are seeded from ``REPRO_TEST_SEED`` so every chaos
counterexample reproduces exactly.
"""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MEDIAN, MIN, SUM
from repro.core.multiquery import Query
from repro.errors import ExecutionError
from repro.runtime import Fault, FaultPlan, ShardedSession
from repro.windows.window import Window, WindowSet

from session_streams import integer_stream

pytestmark = pytest.mark.chaos

NUM_KEYS = 5
NUM_SHARDS = 3
TICKS = 150
#: Slots that actually exist: 5 keys over 3 shards leave one shard
#: empty, so the backend runs two workers (see KeyPartitioner).
SLOTS = 2

WORKLOAD = [
    (Query("mins", WindowSet([Window(8, 4)]), MIN), "per_key"),
    (Query("sums", WindowSet([Window(10, 5)]), SUM), "global"),
    (Query("meds", WindowSet([Window(6, 3)]), MEDIAN), "global"),
]

BACKENDS = ("process", "shm")


def make_events(seed):
    batch = integer_stream(ticks=TICKS, num_keys=NUM_KEYS, seed=seed)
    return (
        list(
            zip(
                batch.timestamps.tolist(),
                batch.keys.tolist(),
                batch.values.tolist(),
            )
        ),
        batch.horizon,
    )


def run_session(
    events,
    horizon,
    backend="serial",
    fault_plan=None,
    worker_recovery=False,
    async_ingest=False,
    snapshot_at=None,
):
    kwargs = {}
    if fault_plan is not None or worker_recovery:
        kwargs.update(
            fault_plan=fault_plan,
            worker_recovery=worker_recovery,
            control_timeout=10.0,
        )
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=NUM_SHARDS,
        backend=backend,
        async_ingest=async_ingest,
        ingest_high_watermark=61,
        **kwargs,
    )
    try:
        for query, scope in WORKLOAD:
            session.register(query, scope=scope)
        for i, (ts, key, value) in enumerate(events):
            session.push(ts, key, value)
            if snapshot_at is not None and i == snapshot_at:
                session.snapshot()
        results = session.finish(horizon=horizon)
        return results, session.worker_recoveries
    finally:
        session.close()


def assert_identical(expected, actual, context):
    assert set(expected) == set(actual), context
    for name in expected:
        for window, reference in expected[name].items():
            emitted = actual[name][window]
            assert (
                emitted.start_instance == reference.start_instance
                and emitted.frontier == reference.frontier
            ), (context, name, window)
            np.testing.assert_array_equal(
                emitted.values,
                reference.values,
                err_msg=f"{context} {name}/{window}",
            )


# ----------------------------------------------------------------------
# FaultPlan unit behaviour
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ExecutionError, match="unknown fault kind"):
            Fault("meteor", slot=0, at_watermark=1)
        with pytest.raises(ExecutionError, match="slot must be >= 0"):
            Fault("kill", slot=-1, at_watermark=1)
        with pytest.raises(ExecutionError, match="needs a trigger"):
            Fault("kill", slot=0)
        with pytest.raises(ExecutionError, match="needs op="):
            Fault("drop_control", slot=0, at_watermark=5)

    def test_advance_point_gating(self):
        plan = FaultPlan(Fault("kill", slot=1, at_watermark=20))
        assert plan.take("advance", 0, watermark=25) == []  # wrong slot
        assert plan.take("advance", 1, watermark=19) == []  # too early
        (fired,) = plan.take("advance", 1, watermark=20)
        assert fired.kind == "kill" and fired.fired
        assert plan.take("advance", 1, watermark=99) == []  # fires once
        assert plan.exhausted
        assert plan.fired == [fired]

    def test_control_point_gating(self):
        plan = FaultPlan(
            Fault("drop_control", slot=0, op="collect", at_watermark=30)
        )
        assert plan.take("control", 0, watermark=10, op="collect") == []
        assert plan.take("control", 0, watermark=40, op="register") == []
        assert len(plan.take("control", 0, watermark=40, op="collect")) == 1
        assert plan.exhausted

    def test_unknown_point_rejected(self):
        plan = FaultPlan(Fault("kill", slot=0, at_watermark=1))
        with pytest.raises(ExecutionError, match="unknown injection point"):
            plan.take("teatime", 0, watermark=5)

    def test_serial_backend_rejects_chaos(self):
        with pytest.raises(ExecutionError, match="does not support"):
            ShardedSession(
                num_keys=NUM_KEYS,
                backend="serial",
                fault_plan=FaultPlan(Fault("kill", slot=0, at_watermark=1)),
            )
        with pytest.raises(ExecutionError, match="does not support"):
            ShardedSession(
                num_keys=NUM_KEYS, backend="serial", worker_recovery=True
            )


# ----------------------------------------------------------------------
# Crash recovery: invariant 12 under fire
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", range(3))
def test_killed_worker_recovers_bit_identically(repro_seed, backend, case):
    """Randomized kill schedules: any slot, any watermark, with and
    without a mid-stream snapshot to truncate the replay log."""
    rng = np.random.default_rng((repro_seed, BACKENDS.index(backend), case))
    seed = int(rng.integers(0, 1000))
    events, horizon = make_events(seed)
    expected, _ = run_session(events, horizon)
    kills = [
        Fault(
            "kill",
            slot=int(rng.integers(0, SLOTS)),
            at_watermark=int(rng.integers(1, TICKS)),
        )
        for _ in range(int(rng.integers(1, 3)))
    ]
    snapshot_at = (
        int(rng.integers(0, len(events))) if rng.random() < 0.5 else None
    )
    plan = FaultPlan(*kills)
    context = f"backend={backend} seed={seed} kills={kills} snap={snapshot_at}"
    actual, recoveries = run_session(
        events,
        horizon,
        backend=backend,
        fault_plan=plan,
        worker_recovery=True,
        snapshot_at=snapshot_at,
    )
    assert_identical(expected, actual, context)
    assert recoveries >= 1, context
    assert plan.exhausted, context


@pytest.mark.parametrize("backend", BACKENDS)
def test_recovery_under_async_ingest(repro_seed, backend):
    rng = np.random.default_rng((repro_seed, 77, BACKENDS.index(backend)))
    seed = int(rng.integers(0, 1000))
    events, horizon = make_events(seed)
    expected, _ = run_session(events, horizon)
    plan = FaultPlan(
        Fault(
            "kill",
            slot=int(rng.integers(0, SLOTS)),
            at_watermark=int(rng.integers(1, TICKS)),
        )
    )
    actual, recoveries = run_session(
        events,
        horizon,
        backend=backend,
        fault_plan=plan,
        worker_recovery=True,
        async_ingest=True,
    )
    assert_identical(expected, actual, f"async {backend} seed={seed}")
    assert recoveries == 1


@pytest.mark.parametrize("op", ["register", "deregister", "snapshot"])
def test_crash_during_mutation_recovers(repro_seed, op):
    """kill_mid_op on a state-mutating command: the command was
    delivered but never acked, so recovery must re-issue it without
    double-applying anything."""
    events, horizon = make_events(int(repro_seed) % 1000)
    cut = len(events) // 2

    def drive(session):
        for query, scope in WORKLOAD[:2]:
            session.register(query, scope=scope)
        for ts, key, value in events[:cut]:
            session.push(ts, key, value)
        if op == "deregister":
            session.deregister(WORKLOAD[1][0].name)
        elif op == "snapshot":
            session.snapshot()
        else:
            session.register(WORKLOAD[2][0], scope="global")
        for ts, key, value in events[cut:]:
            session.push(ts, key, value)
        return session.finish(horizon=horizon)

    oracle = ShardedSession(num_keys=NUM_KEYS, num_shards=NUM_SHARDS)
    expected = drive(oracle)
    oracle.close()

    plan = FaultPlan(Fault("kill_mid_op", slot=1, op=op))
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=NUM_SHARDS,
        backend="process",
        fault_plan=plan,
        worker_recovery=True,
        control_timeout=10.0,
    )
    try:
        actual = drive(session)
        assert session.worker_recoveries == 1
    finally:
        session.close()
    assert plan.exhausted
    assert_identical(expected, actual, f"kill_mid_op {op}")


def test_snapshot_taken_during_crash_is_still_consistent(repro_seed):
    """A worker killed mid-snapshot: the re-issued snapshot command
    (after respawn + replay) must yield the same consistent cut."""
    events, horizon = make_events(int(repro_seed) % 1000)
    cut = len(events) // 2
    expected, _ = run_session(events, horizon)

    plan = FaultPlan(Fault("kill_mid_op", slot=0, op="snapshot"))
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=NUM_SHARDS,
        backend="process",
        fault_plan=plan,
        worker_recovery=True,
        control_timeout=10.0,
    )
    for query, scope in WORKLOAD:
        session.register(query, scope=scope)
    for ts, key, value in events[:cut]:
        session.push(ts, key, value)
    snap = session.snapshot()
    for ts, key, value in events[cut:]:
        session.push(ts, key, value)
    survivor = session.finish(horizon=horizon)
    assert session.worker_recoveries == 1
    session.close()
    assert_identical(expected, survivor, "session that crashed mid-snapshot")

    restored = ShardedSession.restore(snap)
    for ts, key, value in events[cut:]:
        restored.push(ts, key, value)
    assert_identical(
        expected,
        restored.finish(horizon=horizon),
        "snapshot written during the crash",
    )
    restored.close()


def test_drop_control_recovers_via_timeout(repro_seed):
    """A lost control message leaves the worker alive but desynced;
    the control timeout must detect it and recovery must reconverge."""
    events, horizon = make_events(int(repro_seed) % 1000)
    expected, _ = run_session(events, horizon)
    plan = FaultPlan(Fault("drop_control", slot=1, op="collect"))
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=NUM_SHARDS,
        backend="process",
        fault_plan=plan,
        worker_recovery=True,
        control_timeout=1.5,
    )
    try:
        for query, scope in WORKLOAD:
            session.register(query, scope=scope)
        for ts, key, value in events:
            session.push(ts, key, value)
        actual = session.finish(horizon=horizon)
        assert session.worker_recoveries == 1
    finally:
        session.close()
    assert_identical(expected, actual, "drop_control")


def test_delay_control_is_observationally_invisible(repro_seed):
    events, horizon = make_events(int(repro_seed) % 1000)
    expected, _ = run_session(events, horizon)
    plan = FaultPlan(
        Fault("delay_control", slot=0, op="collect", delay_seconds=0.3)
    )
    actual, recoveries = run_session(
        events, horizon, backend="shm", fault_plan=plan
    )
    assert_identical(expected, actual, "delay_control")
    assert recoveries == 0
    assert plan.exhausted


# ----------------------------------------------------------------------
# Crash diagnostics (no recovery)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_unrecovered_crash_raises_actionable_diagnostics(backend):
    events, horizon = make_events(5)
    plan = FaultPlan(Fault("kill", slot=1, at_watermark=40))
    with pytest.raises(ExecutionError) as excinfo:
        run_session(events, horizon, backend=backend, fault_plan=plan)
    message = str(excinfo.value)
    assert "worker failed" in message
    assert "exitcode=-9" in message  # SIGKILL, not a vague EOF
    assert "last-acked watermark" in message
    assert "worker_recovery=True" in message  # tells the user the fix


def test_worker_error_ships_worker_traceback():
    """A Python error inside a worker must surface ITS traceback at
    the coordinator, not a bare broken-pipe or a desynced reply."""
    events, horizon = make_events(5)
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=NUM_SHARDS,
        backend="process",
        control_timeout=10.0,
    )
    try:
        session.register(WORKLOAD[0][0], scope="per_key")
        for ts, key, value in events[:60]:
            session.push(ts, key, value)
        # Reach into one worker and make its next control command
        # explode inside the worker process.
        session.backend._conns[1].send(("no_such_command",))
        with pytest.raises(ExecutionError) as excinfo:
            session.results()
        # The coordinator's reply stream is one behind now, but the
        # diagnostic content is what matters here.
        assert "no_such_command" in str(excinfo.value)
    finally:
        session.close()


def test_poison_ring_is_an_integrity_error():
    events, horizon = make_events(5)
    plan = FaultPlan(Fault("poison_ring", slot=1, at_watermark=40))
    with pytest.raises(ExecutionError) as excinfo:
        run_session(events, horizon, backend="shm", fault_plan=plan)
    assert "corrupt ring record" in str(excinfo.value)


def test_poison_ring_heals_under_recovery(repro_seed):
    """With recovery armed the poisoned segment is discarded whole and
    the worker replays from the clean coordinator log."""
    events, horizon = make_events(int(repro_seed) % 1000)
    expected, _ = run_session(events, horizon)
    plan = FaultPlan(Fault("poison_ring", slot=1, at_watermark=40))
    actual, recoveries = run_session(
        events,
        horizon,
        backend="shm",
        fault_plan=plan,
        worker_recovery=True,
    )
    assert_identical(expected, actual, "poison + recovery")
    assert recoveries == 1


def test_poison_requires_shm():
    events, horizon = make_events(5)
    plan = FaultPlan(Fault("poison_ring", slot=0, at_watermark=40))
    with pytest.raises(ExecutionError, match="require the shm backend"):
        run_session(events, horizon, backend="process", fault_plan=plan)


# ----------------------------------------------------------------------
# Robust teardown (satellite: close() with dead workers)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_close_is_robust_to_dead_workers(backend):
    events, _ = make_events(5)
    session = ShardedSession(
        num_keys=NUM_KEYS, num_shards=NUM_SHARDS, backend=backend
    )
    session.register(WORKLOAD[0][0], scope="per_key")
    for ts, key, value in events[:40]:
        session.push(ts, key, value)
    for proc in session.backend._procs:
        proc.kill()
        proc.join()
    session.close()  # must not hang, raise, or leak segments
    assert session.backend._procs == []
    with pytest.raises(ExecutionError, match="closed"):
        session.results()


def test_context_manager_closes_after_mid_stream_crash():
    events, _ = make_events(5)
    plan = FaultPlan(Fault("kill", slot=0, at_watermark=30))
    with pytest.raises(ExecutionError, match="worker failed"):
        with ShardedSession(
            num_keys=NUM_KEYS,
            num_shards=NUM_SHARDS,
            backend="process",
            fault_plan=plan,
            control_timeout=10.0,
        ) as session:
            session.register(WORKLOAD[0][0], scope="per_key")
            for ts, key, value in events:
                session.push(ts, key, value)
            session.finish()
    # __exit__ ran close() through the failure path; the session is
    # fully torn down.
    assert session.backend._procs == []
