"""Unit tests for the SPSC shared-memory ring (DESIGN.md §8).

These drive producer and consumer from one process (and one helper
thread for the flow-control cases), so they are deterministic; the
cross-process behaviour is covered end-to-end by the shm-backend
shard-invariance tests in ``test_sharding_properties.py``.
"""

import threading

import numpy as np
import pytest

from repro.engine.events import EVENT_BYTES
from repro.errors import ExecutionError
from repro.runtime.shm_ring import RingSpec, ShmRing


def _block(rng, n):
    ts = np.sort(rng.integers(0, 1000, n).astype(np.int64))
    keys = rng.integers(0, 4, n).astype(np.int64)
    values = rng.normal(size=n)
    return ts, keys, values


def test_spec_sizes_slots_from_event_schema():
    spec = RingSpec(name="x", slot_events=100, num_slots=4)
    assert spec.slot_bytes >= 100 * EVENT_BYTES
    assert spec.total_bytes >= 4 * spec.slot_bytes
    with pytest.raises(ExecutionError):
        RingSpec(name="x", slot_events=0, num_slots=4)
    with pytest.raises(ExecutionError):
        RingSpec(name="x", slot_events=8, num_slots=1)


def test_data_and_advance_records_round_trip(repro_rng):
    with ShmRing.create(slot_events=64, num_slots=8) as ring:
        ts, keys, values = _block(repro_rng, 50)
        assert ring.push_events(ts, keys, values) == 1
        ring.push_advance(1234)
        kind, got_ts, got_keys, got_values = ring.pop()
        assert kind == "data"
        np.testing.assert_array_equal(got_ts, ts)
        np.testing.assert_array_equal(got_keys, keys)
        np.testing.assert_array_equal(got_values, values)
        assert ring.pop() == ("advance", 1234)
        assert ring.pop() is None


def test_oversized_blocks_split_and_preserve_order(repro_rng):
    with ShmRing.create(slot_events=16, num_slots=8) as ring:
        ts, keys, values = _block(repro_rng, 100)
        assert ring.push_events(ts, keys, values) == 7  # ceil(100/16)
        out = []
        while (record := ring.pop()) is not None:
            assert record[0] == "data"
            out.append(record[1:])
        np.testing.assert_array_equal(np.concatenate([o[0] for o in out]), ts)
        np.testing.assert_array_equal(np.concatenate([o[1] for o in out]), keys)
        np.testing.assert_array_equal(
            np.concatenate([o[2] for o in out]), values
        )


def test_wraparound_many_times(repro_rng):
    with ShmRing.create(slot_events=8, num_slots=3) as ring:
        for round_no in range(50):
            ts, keys, values = _block(repro_rng, 8)
            ring.push_events(ts, keys, values)
            kind, got_ts, got_keys, got_values = ring.pop()
            assert kind == "data"
            np.testing.assert_array_equal(got_values, values)
            ring.push_advance(round_no)
            assert ring.pop() == ("advance", round_no)
        assert ring.depth == 0


def test_full_ring_blocks_until_consumer_drains(repro_rng):
    """The producer stalls on a full ring and resumes when the
    consumer frees slots — no record is dropped or reordered."""
    with ShmRing.create(slot_events=4, num_slots=2) as ring:
        total = 40
        ts = np.arange(total, dtype=np.int64)
        keys = np.zeros(total, dtype=np.int64)
        values = np.arange(total, dtype=np.float64)
        done = threading.Event()

        def produce():
            ring.push_events(ts, keys, values, timeout=30.0)
            done.set()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        got = []
        consumed = 0
        while consumed < total:
            record = ring.pop()
            if record is None:
                continue
            got.append(record[3])
            consumed += record[3].size
        producer.join(timeout=30.0)
        assert done.is_set()
        np.testing.assert_array_equal(np.concatenate(got), values)


def test_full_ring_times_out_without_consumer():
    with ShmRing.create(slot_events=2, num_slots=2) as ring:
        ts = np.arange(10, dtype=np.int64)
        keys = np.zeros(10, dtype=np.int64)
        values = np.zeros(10, dtype=np.float64)
        with pytest.raises(ExecutionError, match="ring full"):
            ring.push_events(ts, keys, values, timeout=0.05)


def test_dead_consumer_liveness_check_raises():
    with ShmRing.create(slot_events=2, num_slots=2) as ring:
        ts = np.arange(10, dtype=np.int64)
        keys = np.zeros(10, dtype=np.int64)
        values = np.zeros(10, dtype=np.float64)
        with pytest.raises(ExecutionError, match="consumer died"):
            ring.push_events(
                ts, keys, values, timeout=30.0, liveness=lambda: False
            )


def test_closed_ring_rejects_blocked_producers():
    with ShmRing.create(slot_events=2, num_slots=2) as ring:
        ring.push_advance(1)
        ring.push_advance(2)
        ring.close_ring()
        with pytest.raises(ExecutionError, match="closed"):
            ring.push_advance(3)
        # Published records stay drainable after close.
        assert ring.pop() == ("advance", 1)
        assert ring.pop() == ("advance", 2)


def test_attach_sees_creators_records(repro_rng):
    producer = ShmRing.create(slot_events=32, num_slots=4)
    try:
        ts, keys, values = _block(repro_rng, 20)
        producer.push_events(ts, keys, values)
        consumer = ShmRing.attach(producer.spec)
        try:
            kind, got_ts, _, got_values = consumer.pop()
            assert kind == "data"
            np.testing.assert_array_equal(got_ts, ts)
            np.testing.assert_array_equal(got_values, values)
            # The consumer's head store is visible to the producer.
            assert producer.depth == 0
        finally:
            consumer.close()
    finally:
        producer.close()


def test_consumed_data_survives_slot_reuse(repro_rng):
    """pop() hands back owned copies: later slot reuse must not mutate
    previously returned arrays."""
    with ShmRing.create(slot_events=4, num_slots=2) as ring:
        first = np.arange(4, dtype=np.float64)
        ring.push_events(
            np.arange(4, dtype=np.int64), np.zeros(4, dtype=np.int64), first
        )
        _, _, _, got = ring.pop()
        for wave in range(4):  # reuse every slot multiple times
            ring.push_events(
                np.arange(4, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                np.full(4, 99.0 + wave),
            )
            ring.pop()
        np.testing.assert_array_equal(got, first)

# ---------------------------------------------------------------------
# Zero-copy borrow protocol (pop(copy=False) / release)
# ---------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestBorrowProtocol:
    """Aliasing safety of the zero-copy consume path: borrowed slot
    views alias shared memory, stay intact until ``release()``, the
    head never overtakes a borrow (so the producer cannot reuse a
    borrowed slot), and the copy counters account every event exactly
    once."""

    def test_borrowed_views_alias_shared_memory(self, repro_rng):
        with ShmRing.create(slot_events=16, num_slots=4) as ring:
            ts, keys, values = _block(repro_rng, 10)
            ring.push_events(ts, keys, values)
            kind, got_ts, got_keys, got_values = ring.pop(copy=False)
            assert kind == "data"
            slot_ts, slot_keys, slot_values = ring._columns[0]
            assert np.shares_memory(got_ts, slot_ts)
            assert np.shares_memory(got_keys, slot_keys)
            assert np.shares_memory(got_values, slot_values)
            np.testing.assert_array_equal(got_values, values)
            assert ring.borrowed == 1
            assert ring.copies_elided == 10
            assert ring.bytes_copied == 0
            ring.release()
            assert ring.borrowed == 0
            assert ring.depth == 0

    def test_head_never_overtakes_a_borrow(self, repro_rng):
        """Any record consumed while a borrow is outstanding joins the
        pending set — even a copying pop — so slot reuse can never
        clobber a view the consumer still holds."""
        with ShmRing.create(slot_events=8, num_slots=4) as ring:
            for _ in range(3):
                ring.push_events(*_block(repro_rng, 8))
            ring.pop(copy=False)
            assert ring.depth == 3  # head frozen by the borrow
            ring.pop(copy=True)  # copy pop joins pending anyway
            ring.pop(copy=False)
            assert ring.borrowed == 3
            assert ring.depth == 3
            ring.release()
            assert ring.borrowed == 0
            assert ring.depth == 0

    def test_borrowed_view_survives_producer_pressure(self, repro_rng):
        """With every remaining slot refilled, the borrowed slot is the
        one the producer may not reuse: its contents must be stable."""
        with ShmRing.create(slot_events=8, num_slots=3) as ring:
            first_values = np.arange(8, dtype=np.float64)
            ring.push_events(
                np.arange(8, dtype=np.int64),
                np.zeros(8, dtype=np.int64),
                first_values,
            )
            _, _, _, borrowed = ring.pop(copy=False)
            # Fill the two remaining slots; slot 0 stays borrowed.
            for wave in range(2):
                ring.push_events(
                    np.arange(8, dtype=np.int64),
                    np.zeros(8, dtype=np.int64),
                    np.full(8, 50.0 + wave),
                )
            with pytest.raises(ExecutionError, match="ring full"):
                # Head is frozen by the borrow: the ring stays full.
                ring.push_advance(1, timeout=0.05)
            np.testing.assert_array_equal(borrowed, first_values)
            ring.release()
            ring.push_advance(2)  # slot freed once the borrow dies

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(1, 8)),
                st.tuples(st.just("pop"), st.booleans()),
                st.tuples(st.just("release"), st.just(0)),
            ),
            max_size=60,
        ),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaved_borrow_copy_streams_match_pushed_data(
        self, ops, seed
    ):
        """Under any single-threaded interleaving of pushes, borrowing
        pops, copying pops, and releases, the consumed stream equals
        the pushed stream and ``bytes_copied``/``copies_elided``
        partition the consumed events exactly."""
        rng = np.random.default_rng(seed)
        with ShmRing.create(slot_events=8, num_slots=3) as ring:
            pushed, consumed = [], []
            copied_events = elided_events = 0
            for op, arg in ops:
                if op == "push":
                    # Keep the single-threaded loop deadlock-free: on a
                    # full ring, first retire any outstanding borrows,
                    # then (if genuinely full) consume one record —
                    # exactly what a live consumer would do.
                    if ring.depth >= ring.spec.num_slots:
                        ring.release()
                    if ring.depth >= ring.spec.num_slots:
                        record = ring.pop(copy=True)
                        consumed.append(np.array(record[3]))
                        copied_events += record[3].size
                        ring.release()
                    ts, keys, values = _block(rng, arg)
                    ring.push_events(ts, keys, values)
                    pushed.append(values)
                elif op == "pop":
                    record = ring.pop(copy=arg)
                    if record is None:
                        continue
                    # Snapshot immediately: borrowed views are only
                    # guaranteed until release().
                    consumed.append(np.array(record[3]))
                    if arg:
                        copied_events += record[3].size
                    else:
                        elided_events += record[3].size
                else:
                    ring.release()
            ring.release()
            while (record := ring.pop(copy=True)) is not None:
                consumed.append(np.array(record[3]))
                copied_events += record[3].size
            got = np.concatenate(consumed) if consumed else np.empty(0)
            want = np.concatenate(pushed) if pushed else np.empty(0)
            np.testing.assert_array_equal(got, want)
            assert ring.bytes_copied == copied_events * EVENT_BYTES
            assert ring.copies_elided == elided_events
            assert copied_events + elided_events == want.size
