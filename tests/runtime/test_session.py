"""Tests for the live :class:`~repro.runtime.QuerySession`.

The contract under test is DESIGN.md invariant 9: whatever schedule of
register/deregister/rate-shift a session lives through, every emitted
result is identical to a cold batch run of the final workload over the
same events — plan switches are observationally invisible.
"""

import numpy as np
import pytest

from repro.aggregates.registry import MEDIAN, MIN, SUM
from repro.core.multiquery import Query, optimize_workload
from repro.engine.executor import execute_plan
from repro.engine.outoforder import scramble_batch
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.runtime import QuerySession
from repro.windows.window import Window, WindowSet

from session_streams import cold_reference, integer_stream


@pytest.fixture
def int_stream():
    return integer_stream(ticks=800, rate=2, num_keys=2, seed=11)


def assert_session_matches(session_results, cold, queries, horizon):
    """Emitted ranges bit-identical to cold run; frontiers complete."""
    for query in queries:
        for window in query.windows:
            emitted = session_results[query.name][window]
            reference = cold[(query.name, window)]
            assert emitted.frontier == reference.shape[1], (
                query.name,
                window,
            )
            segment = reference[:, emitted.start_instance:emitted.frontier]
            np.testing.assert_array_equal(emitted.values, segment)


QA = Query("a", WindowSet([Window(20, 10), Window(40, 20)]), MIN)
QB = Query("b", WindowSet([Window(30, 10)]), MIN)
QC = Query("c", WindowSet([Window(24, 12)]), SUM)
QD = Query("d", WindowSet([Window(30, 15)]), MEDIAN)


class TestBatchEquivalence:
    def test_register_before_data_equals_batch(self, int_stream):
        queries = [QA, QB, QC, QD]
        cold = cold_reference(queries, int_stream)
        session = QuerySession(num_keys=2, hysteresis=None)
        for query in queries:
            session.register(query)
        session.push_many(int_stream.rows())
        results = session.finish(horizon=int_stream.horizon)
        for query in queries:
            for window in query.windows:
                emitted = results[query.name][window]
                assert emitted.start_instance == 0
        assert_session_matches(results, cold, queries, int_stream.horizon)

    @pytest.mark.parametrize("order_seed", [0, 1, 2])
    def test_one_at_a_time_interleaved_equals_batch(
        self, int_stream, order_seed
    ):
        """Satellite: N queries registered one at a time, in random
        order, interleaved with data — per-window results identical to
        the batch multiquery optimization on the same stream."""
        rng = np.random.default_rng(order_seed)
        queries = [QA, QB, QC, QD]
        order = rng.permutation(len(queries))
        rows = list(int_stream.rows())
        # Registration points spread through the first half of the
        # stream, in random order.
        points = sorted(
            rng.integers(0, len(rows) // 2, len(queries)).tolist()
        )
        schedule = dict(zip(points, order))
        cold = cold_reference(queries, int_stream)
        session = QuerySession(num_keys=2, hysteresis=None)
        registered = []
        for i, (ts, key, value) in enumerate(rows):
            if i in schedule:
                query = queries[schedule[i]]
                session.register(query)
                registered.append(query.name)
            session.push(ts, key, value)
        for query in queries:
            if query.name not in registered:
                session.register(query)
        results = session.finish(horizon=int_stream.horizon)
        assert_session_matches(results, cold, queries, int_stream.horizon)

    def test_out_of_order_input_same_results(self, int_stream):
        queries = [QA, QC]
        cold = cold_reference(queries, int_stream)
        scrambled = scramble_batch(int_stream, max_lateness=9, seed=3)
        session = QuerySession(num_keys=2, max_lateness=9, hysteresis=None)
        for query in queries:
            session.register(query)
        session.push_many(scrambled)
        results = session.finish(horizon=int_stream.horizon)
        assert session.reorder_stats.late_dropped == 0
        assert_session_matches(results, cold, queries, int_stream.horizon)

    def test_logical_pairs_match_cold_run(self, int_stream):
        queries = [QA, QB]
        workload = optimize_workload(queries)
        plan = workload.groups[0].plan
        cold = execute_plan(plan, int_stream, engine="streaming-chunked")
        session = QuerySession(num_keys=2, hysteresis=None)
        for query in queries:
            session.register(query)
        session.push_many(int_stream.rows())
        session.finish(horizon=int_stream.horizon)
        assert (
            session.stats().pairs_per_window == cold.stats.pairs_per_window
        )


class TestPlanSwitching:
    def test_registration_reroutes_providers_seamlessly(self):
        """Adding W(10,10) turns existing raw readers into
        sub-aggregate readers; the displaced operators drain exactly
        their straddling instances."""
        stream = integer_stream(ticks=1500, rate=3, num_keys=2, seed=5)
        qa = Query("a", WindowSet([Window(20, 20), Window(40, 40)]), MIN)
        qb = Query("b", WindowSet([Window(10, 10)]), MIN)
        cold = cold_reference([qa, qb], stream)
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(qa)
        rows = list(stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                session.register(qb)
            session.push(ts, key, value)
        results = session.finish(horizon=stream.horizon)
        assert_session_matches(results, cold, [qa, qb], stream.horizon)
        switch = session.switches[-1]
        assert switch.reason == "register"
        assert switch.draining >= 1  # the displaced raw reader

    def test_deregistering_provider_owner(self):
        """Removing the query that owns a provider window reroutes the
        survivors back to raw; the dropped provider drains only while
        its last consumer still needs it."""
        stream = integer_stream(ticks=1500, rate=3, num_keys=2, seed=6)
        qa = Query("a", WindowSet([Window(20, 20), Window(40, 40)]), MIN)
        qb = Query("b", WindowSet([Window(10, 10)]), MIN)
        cold = cold_reference([qa], stream)
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(qa)
        session.register(qb)
        rows = list(stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                session.deregister("b")
            session.push(ts, key, value)
        results = session.finish(horizon=stream.horizon)
        assert_session_matches(results, cold, [qa], stream.horizon)
        # Every draining operator eventually retired.
        for runtime in session._groups.values():
            assert runtime.draining == []

    def test_deregistered_results_stay_readable(self, int_stream):
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(QA)
        session.register(QB)
        rows = list(int_stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                session.deregister("b")
            session.push(ts, key, value)
        results = session.finish(horizon=int_stream.horizon)
        emitted = results["b"][Window(30, 10)]
        # Window results are plan-independent (invariant 5), so the
        # partial emission must match a cold run of just that window.
        reference = execute_plan(
            original_plan(WindowSet([Window(30, 10)]), MIN),
            int_stream,
            engine="streaming-chunked",
        ).results[Window(30, 10)]
        segment = reference[:, emitted.start_instance:emitted.frontier]
        np.testing.assert_array_equal(emitted.values, segment)
        assert emitted.frontier < reference.shape[1]  # stopped early

    def test_rate_drift_triggers_live_replan(self):
        """The W(6,3)/W(8,4) plan provably flips with the rate; a rate
        ramp must flip it live without disturbing results."""
        stream = integer_stream(
            ticks=1800,
            num_keys=1,
            seed=7,
            rate_segments=((1, 600), (30, 600), (1, 600)),
        )
        query = Query("f", WindowSet([Window(6, 3), Window(8, 4)]), MIN)
        cold = cold_reference([query], stream)
        session = QuerySession(
            num_keys=1, hysteresis=0.5, alpha=0.6, chunk_ticks=24
        )
        session.register(query)
        session.push_many(stream.rows())
        results = session.finish(horizon=stream.horizon)
        assert_session_matches(results, cold, [query], stream.horizon)
        rate_switches = [
            s for s in session.switches if s.reason == "rate"
        ]
        assert rate_switches, "rate drift should have re-planned live"
        assert any(s.rate > 10 for s in rate_switches)

    def test_factor_window_promoted_to_user_window(self):
        """Registering a query whose window already runs as a *factor*
        window must re-issue the operator with an emission sink (state
        adopted, nothing fresh) — the regression the plan 'shape'
        includes user-facing-ness for."""
        stream = integer_stream(ticks=1600, rate=2, num_keys=1, seed=13)
        qa = Query("a", WindowSet([Window(40, 20), Window(80, 40)]), MIN)
        # W(20,20) is exactly the factor window the optimizer inserts
        # for qa's windows.
        qb = Query("b", WindowSet([Window(20, 20)]), MIN)
        cold = cold_reference([qa, qb], stream)
        session = QuerySession(num_keys=1, hysteresis=None)
        session.register(qa)
        factor_windows = {
            w
            for rt in session._groups.values()
            for w, op in rt.ops.items()
            if op.sink is None
        }
        assert Window(20, 20) in factor_windows
        rows = list(stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                session.register(qb)
            session.push(ts, key, value)
        results = session.finish(horizon=stream.horizon)
        assert_session_matches(results, cold, [qa, qb], stream.horizon)
        emitted = results["b"][Window(20, 20)]
        assert emitted.frontier > emitted.start_instance > 0
        switch = session.switches[-1]
        assert switch.adopted >= 3 and switch.fresh == 0

    def test_hysteresis_suppresses_switches_on_stable_rate(self):
        stream = integer_stream(ticks=1200, rate=4, num_keys=1, seed=8)
        query = Query("f", WindowSet([Window(6, 3), Window(8, 4)]), MIN)
        session = QuerySession(
            num_keys=1, event_rate=4, hysteresis=0.5, chunk_ticks=24
        )
        session.register(query)
        session.push_many(stream.rows())
        session.finish(horizon=stream.horizon)
        assert [s.reason for s in session.switches] == ["register"]


class TestBoundedWork:
    def test_late_registration_never_recomputes_history(self):
        """Registering at 90% of the stream must cost ~10% of the
        query's full-stream physical work, not a history replay."""
        stream = integer_stream(ticks=4000, rate=2, num_keys=1, seed=9)
        qa = Query("a", WindowSet([Window(20, 10)]), MIN)
        qb = Query("b", WindowSet([Window(16, 8)]), SUM)
        rows = list(stream.rows())

        def run(register_b_at):
            session = QuerySession(num_keys=1, hysteresis=None)
            session.register(qa)
            for i, (ts, key, value) in enumerate(rows):
                if i == register_b_at:
                    session.register(qb)
                session.push(ts, key, value)
            session.finish(horizon=stream.horizon)
            return session.stats().total_physical

        without_b = run(register_b_at=None)
        late = run(register_b_at=int(len(rows) * 0.9))
        full = run(register_b_at=0)
        b_full_cost = full - without_b
        b_late_cost = late - without_b
        # 10% of the stream remains; allow 3x slack for alignment and
        # the switch's partial-chunk flush.
        assert b_late_cost <= 0.3 * b_full_cost

    def test_switch_itself_absorbs_at_most_one_chunk(self):
        """The physical work done *inside* a switch is bounded by the
        buffered partial chunk — never the stream history."""
        stream = integer_stream(ticks=3000, rate=2, num_keys=1, seed=10)
        qa = Query("a", WindowSet([Window(20, 10)]), MIN)
        qb = Query("b", WindowSet([Window(16, 8)]), SUM)
        session = QuerySession(num_keys=1, hysteresis=None, chunk_ticks=40)
        session.register(qa)
        rows = list(stream.rows())
        for ts, key, value in rows[: int(len(rows) * 0.8)]:
            session.push(ts, key, value)
        before = session.stats().total_physical
        session.register(qb)
        during_switch = session.stats().total_physical - before
        # One chunk of 40 ticks at rate 2 is 80 events; binning plus
        # closing work for open instances is a small multiple of that.
        assert during_switch < 80 * 20

    def test_retained_state_stays_bounded(self):
        stream = integer_stream(ticks=6000, rate=2, num_keys=1, seed=12)
        query = Query("a", WindowSet([Window(20, 10), Window(40, 20)]), MIN)
        session = QuerySession(num_keys=1, hysteresis=None)
        session.register(query)
        session.push_many(stream.rows())
        session.finish(horizon=stream.horizon)
        # Panes retained per operator: O(r/p + chunk/p), never O(stream).
        assert session.max_retained_state() < 200


class TestSessionApi:
    def test_sql_registration(self, int_stream):
        session = QuerySession(num_keys=2, hysteresis=None)
        name = session.register(
            "SELECT MIN(Reading) FROM Sensors "
            "GROUP BY WINDOWS(HOPPING(second, 20, 10))"
        )
        assert name == "q1"
        session.push_many(int_stream.rows())
        results = session.finish(horizon=int_stream.horizon)
        emitted = results["q1"][Window(20, 10)]
        reference = execute_plan(
            original_plan(WindowSet([Window(20, 10)]), MIN),
            int_stream,
            engine="streaming-chunked",
        ).results[Window(20, 10)]
        np.testing.assert_array_equal(emitted.values, reference)

    def test_duplicate_name_rejected(self):
        session = QuerySession(hysteresis=None)
        session.register(QA)
        with pytest.raises(Exception):
            session.register(QA)

    def test_unknown_deregister_rejected(self):
        session = QuerySession(hysteresis=None)
        with pytest.raises(ExecutionError):
            session.deregister("ghost")

    def test_key_range_validated(self):
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(QA)
        with pytest.raises(ExecutionError):
            session.push(0, 2, 1.0)

    def test_push_after_finish_rejected(self):
        session = QuerySession(hysteresis=None)
        session.register(QA)
        session.finish()
        with pytest.raises(ExecutionError):
            session.push(0, 0, 1.0)

    def test_new_query_on_shared_window_starts_at_frontier(
        self, int_stream
    ):
        """A query registering a window that already runs subscribes
        from the operator's close frontier — no recomputation, no gap."""
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(QA)
        rows = list(int_stream.rows())
        half = len(rows) // 2
        for ts, key, value in rows[:half]:
            session.push(ts, key, value)
        twin = Query("a2", QA.windows, MIN)
        session.register(twin)
        for ts, key, value in rows[half:]:
            session.push(ts, key, value)
        results = session.finish(horizon=int_stream.horizon)
        for window in QA.windows:
            original = results["a"][window]
            late = results["a2"][window]
            assert late.start_instance > 0
            assert late.frontier == original.frontier
            np.testing.assert_array_equal(
                late.values,
                original.values[:, late.start_instance:],
            )

    def test_reregistered_name_keeps_archived_results(self, int_stream):
        """Re-using a retired query's name must not shadow what it
        already emitted — the archive moves to a suffixed name."""
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(QA)
        session.register(QB)
        rows = list(int_stream.rows())
        third = len(rows) // 3
        for ts, key, value in rows[:third]:
            session.push(ts, key, value)
        session.deregister("b")
        for ts, key, value in rows[third : 2 * third]:
            session.push(ts, key, value)
        session.register(QB)  # same name again
        for ts, key, value in rows[2 * third :]:
            session.push(ts, key, value)
        results = session.finish(horizon=int_stream.horizon)
        archived = [name for name in results if name.startswith("b@g")]
        assert len(archived) == 1
        old = results[archived[0]][Window(30, 10)]
        new = results["b"][Window(30, 10)]
        assert old.start_instance == 0
        assert new.start_instance >= old.frontier
        reference = execute_plan(
            original_plan(WindowSet([Window(30, 10)]), MIN),
            int_stream,
            engine="streaming-chunked",
        ).results[Window(30, 10)]
        np.testing.assert_array_equal(
            old.values, reference[:, : old.frontier]
        )
        np.testing.assert_array_equal(
            new.values, reference[:, new.start_instance : new.frontier]
        )

    def test_drain_results_consumes_and_reassembles(self, int_stream):
        """Polling drain_results keeps subscriptions empty between
        polls; the drained pieces concatenate to the full answer."""
        queries = [QA, QC]
        cold = cold_reference(queries, int_stream)
        session = QuerySession(num_keys=2, hysteresis=None)
        for query in queries:
            session.register(query)
        rows = list(int_stream.rows())
        pieces = []
        for i, (ts, key, value) in enumerate(rows):
            session.push(ts, key, value)
            if i % 400 == 399:
                pieces.append(session.drain_results())
        session.finish(horizon=int_stream.horizon)
        pieces.append(session.drain_results())
        for query in queries:
            for window in query.windows:
                parts = [
                    p[query.name][window]
                    for p in pieces
                    if query.name in p and window in p[query.name]
                ]
                # Consumed: each piece starts where the previous ended.
                for left, right in zip(parts, parts[1:]):
                    assert right.start_instance == left.frontier
                stitched = np.concatenate(
                    [p.values for p in parts], axis=1
                )
                reference = cold[(query.name, window)]
                assert parts[-1].frontier == reference.shape[1]
                np.testing.assert_array_equal(stitched, reference)

    def test_rate_replan_not_swallowed_by_switch_flush(self):
        """A replan decision made during a register()'s sync flush must
        stay pending and apply at the next push — the observed rate
        reaches the workload either way."""
        stream = integer_stream(ticks=1200, rate=20, num_keys=1, seed=14)
        session = QuerySession(
            num_keys=1, hysteresis=0.1, alpha=1.0, chunk_ticks=10
        )
        session.register(Query("a", WindowSet([Window(20, 10)]), MIN))
        rows = list(stream.rows())
        for i, (ts, key, value) in enumerate(rows):
            if i == len(rows) // 2:
                # The register triggers a mid-chunk sync flush that can
                # cross an epoch boundary and observe the drift.
                session.register(
                    Query("b", WindowSet([Window(16, 8)]), SUM)
                )
            session.push(ts, key, value)
        session.finish(horizon=stream.horizon)
        assert session.workload.event_rate == 20

    def test_watermark_and_generation_progress(self, int_stream):
        session = QuerySession(num_keys=2, hysteresis=None)
        session.register(QA)
        assert session.generation == 1
        session.push_many(int_stream.rows())
        assert session.watermark > 0
        assert session.queries == ("a",)


class TestRetiredRetention:
    """The retired-result archive is capped with exact eviction
    counters (mirrors the ``late_events_elided`` pattern): a service
    whose dashboards churn forever must not grow without bound."""

    def _churn(self, session, rows, cycles):
        """Register/deregister ``q`` once per stream segment."""
        per = max(1, len(rows) // (2 * cycles))
        i = 0
        for cycle in range(cycles):
            session.register(Query("q", WindowSet([Window(10, 5)]), MIN))
            for ts, key, value in rows[i : i + per]:
                session.push(ts, key, value)
            i += per
            session.deregister("q")
            for ts, key, value in rows[i : i + per]:
                session.push(ts, key, value)
            i += per

    def test_cap_bounds_archive_with_exact_counters(self, int_stream):
        rows = list(int_stream.rows())
        cycles = 6
        session = QuerySession(
            num_keys=2, hysteresis=None, max_retired_results=2
        )
        self._churn(session, rows, cycles)
        results = session.finish(horizon=int_stream.horizon)
        retired = [name for name in results if name != "q"]
        assert len(retired) <= 2
        # One archived subscription per cycle (single window), minus
        # the two retained and the final life's live subscription.
        assert session.retired_results_evicted == cycles - 2
        assert session.retired_instances_evicted > 0

    def test_uncapped_archive_retains_everything(self, int_stream):
        rows = list(int_stream.rows())
        session = QuerySession(
            num_keys=2, hysteresis=None, max_retired_results=None
        )
        self._churn(session, rows, 6)
        results = session.finish(horizon=int_stream.horizon)
        assert len([n for n in results if n.startswith("q@g")]) == 5
        assert session.retired_results_evicted == 0

    def test_default_cap_keeps_existing_behaviour(self, int_stream):
        """Moderate churn stays under the default cap — nothing is
        evicted and every archive stays readable."""
        rows = list(int_stream.rows())
        session = QuerySession(num_keys=2, hysteresis=None)
        self._churn(session, rows, 4)
        results = session.finish(horizon=int_stream.horizon)
        assert session.retired_results_evicted == 0
        assert len([n for n in results if n.startswith("q@g")]) == 3

    def test_rename_keeps_archive_eviction_order(self, int_stream):
        """Re-registering a name renames its archive *in place*: the
        renamed entry must stay oldest in the eviction order, not be
        rejuvenated past archives retired after it."""
        rows = list(int_stream.rows())
        session = QuerySession(
            num_keys=2, hysteresis=None, max_retired_results=2
        )
        wq, wr, ws = Window(10, 5), Window(12, 6), Window(14, 7)
        session.register(Query("q", WindowSet([wq]), MIN))
        session.register(Query("r", WindowSet([wr]), MIN))
        session.register(Query("s", WindowSet([ws]), MIN))
        for ts, key, value in rows[:400]:
            session.push(ts, key, value)
        session.deregister("q")  # archive order: [q]
        session.deregister("r")  # archive order: [q, r] — at cap
        session.register(Query("q", WindowSet([wq]), MIN))  # rename q
        for ts, key, value in rows[400:800]:
            session.push(ts, key, value)
        session.deregister("s")  # exceeds cap: the *oldest* (q) goes
        results = session.finish(horizon=int_stream.horizon)
        assert not any(n.startswith("q@g") for n in results)
        assert "r" in results and "s" in results
        assert session.retired_results_evicted == 1

    def test_sharded_session_applies_cap_per_core(self, int_stream):
        from repro.runtime import ShardedSession

        rows = list(int_stream.rows())
        session = ShardedSession(
            num_keys=2,
            num_shards=2,
            hysteresis=None,
            max_retired_results=2,
        )
        self._churn(session, rows, 6)
        results = session.finish(horizon=int_stream.horizon)
        retired = [name for name in results if name != "q"]
        assert len(retired) <= 2
