"""Property tests for DESIGN.md invariant 9.

For randomized register/deregister/rate-shift schedules over a mixed
pool of mergeable (covered-by and partitioned-by) and holistic
aggregates, a live session's emitted result stream must be
bit-identical to a cold batch run of the final workload on the same
events — and the work it does must stay bounded (a plan switch replays
at most the reorder buffer plus one chunk, never history).

Streams carry integer values so every partial merge is exact float64
arithmetic: bit-identity is required, not just closeness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import AVG, MAX, MEDIAN, MIN, SUM
from repro.core.multiquery import Query, optimize_workload
from repro.engine.executor import execute_plan
from repro.engine.outoforder import scramble_batch
from repro.plans.builder import original_plan
from repro.runtime import QuerySession
from repro.windows.window import Window, WindowSet

from session_streams import cold_reference, integer_stream

POOL = [
    Query("q0", WindowSet([Window(8, 4), Window(16, 8)]), MIN),
    Query("q1", WindowSet([Window(6, 3), Window(8, 4)]), MIN),
    Query("q2", WindowSet([Window(12, 12)]), MAX),
    Query("q3", WindowSet([Window(10, 5)]), SUM),
    Query("q4", WindowSet([Window(20, 10)]), SUM),
    Query("q5", WindowSet([Window(12, 6)]), AVG),
    Query("q6", WindowSet([Window(9, 3)]), MEDIAN),
    Query("q7", WindowSet([Window(12, 4)]), MEDIAN),
]

TICKS = 700

schedule_strategy = st.fixed_dictionaries(
    {
        "picks": st.lists(
            st.integers(0, len(POOL) - 1),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        "register_at": st.lists(
            st.floats(0.0, 0.6), min_size=5, max_size=5
        ),
        "deregister": st.lists(
            st.booleans(), min_size=5, max_size=5
        ),
        "deregister_at": st.lists(
            st.floats(0.65, 0.95), min_size=5, max_size=5
        ),
        "lateness": st.integers(0, 9),
        "scramble_seed": st.integers(0, 100),
        "rates": st.lists(
            st.sampled_from([1, 2, 8, 25]), min_size=2, max_size=3
        ),
        "hysteresis": st.sampled_from([None, 0.4]),
    }
)


@given(schedule=schedule_strategy)
@settings(max_examples=15, deadline=None)
def test_randomized_schedules_are_observationally_invisible(schedule):
    picks = schedule["picks"]
    span = TICKS // len(schedule["rates"])
    segments = tuple((rate, span) for rate in schedule["rates"])
    batch = integer_stream(
        ticks=TICKS,
        num_keys=2,
        seed=schedule["scramble_seed"],
        rate_segments=segments,
    )
    events = scramble_batch(
        batch, schedule["lateness"], seed=schedule["scramble_seed"]
    )
    n = len(events)

    register_at = {}
    deregister_at = {}
    for slot, index in enumerate(picks):
        query = POOL[index]
        register_at.setdefault(
            int(schedule["register_at"][slot] * n), []
        ).append(query)
        if schedule["deregister"][slot] and slot > 0:
            # slot 0 always survives so the final workload is non-empty
            deregister_at.setdefault(
                int(schedule["deregister_at"][slot] * n), []
            ).append(query.name)

    session = QuerySession(
        num_keys=2,
        max_lateness=schedule["lateness"],
        hysteresis=schedule["hysteresis"],
        alpha=0.6,
    )
    dropped = set()
    for i, (ts, key, value) in enumerate(events):
        for query in register_at.get(i, ()):
            session.register(query)
        for name in deregister_at.get(i, ()):
            if name in session.queries:
                session.deregister(name)
                dropped.add(name)
        session.push(ts, key, value)
    for queries in register_at.values():
        for query in queries:
            if query.name not in session.queries and query.name not in dropped:
                session.register(query)
    results = session.finish(horizon=batch.horizon)

    final = [POOL[i] for i in picks if POOL[i].name not in dropped]
    cold = cold_reference(final, batch)
    for query in final:
        for window in query.windows:
            emitted = results[query.name][window]
            reference = cold[(query.name, window)]
            assert emitted.frontier == reference.shape[1], (
                query.name,
                window,
            )
            np.testing.assert_array_equal(
                emitted.values,
                reference[:, emitted.start_instance:emitted.frontier],
            )

    # Deregistered queries: what *was* emitted must still match a cold
    # run (window results are plan-independent, invariant 5).
    for name in dropped:
        query = next(q for q in POOL if q.name == name)
        for window in query.windows:
            emitted = results[name][window]
            reference = execute_plan(
                original_plan(WindowSet([window]), query.aggregate),
                batch,
                engine="streaming-chunked",
            ).results[window]
            np.testing.assert_array_equal(
                emitted.values,
                reference[:, emitted.start_instance:emitted.frontier],
            )

    # Every displaced operator drained and retired.
    for runtime in session._groups.values():
        assert runtime.draining == []

    # Bounded work: even with every switch in the schedule, total
    # physical touches stay within a small multiple of the full-pool
    # cold run — a history replay per switch would blow through this.
    envelope = 0
    all_picked = [POOL[i] for i in picks]
    workload = optimize_workload(all_picked)
    for group in workload.groups:
        plan = group.plan or original_plan(group.combined, group.aggregate)
        envelope += execute_plan(
            plan, batch, engine="streaming-chunked"
        ).stats.total_physical
    assert session.stats().total_physical <= 2 * envelope + 5000
