"""Backpressure properties of the async ingest front door and the
shared-memory ring data plane (DESIGN.md §8, invariant 11).

The contract under test: a slow consumer — a full ring, a full ingest
queue, or both — may only ever slow the producer down.  It must never
drop a chunk, reorder chunks, or change a single emitted value; and
polling ``drain_results()`` must keep buffered result state bounded
regardless of how long the session runs.
"""

import threading

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MEDIAN, SUM
from repro.core.multiquery import Query
from repro.errors import ExecutionError
from repro.runtime import (
    QuerySession,
    ShardedSession,
    SharedMemoryShardBackend,
)
from repro.runtime.ingest import IngestPump, IngestQueue
from repro.windows.window import Window, WindowSet

from session_streams import integer_stream

NUM_KEYS = 8
QUERIES = [
    (Query("sums", WindowSet([Window(30, 10)]), SUM), "per_key"),
    (Query("avgs", WindowSet([Window(20, 10)]), AVG), "global"),
    (Query("meds", WindowSet([Window(12, 6)]), MEDIAN), "global"),
]


def _reference_results(batch):
    session = ShardedSession(
        num_keys=NUM_KEYS, num_shards=2, backend="serial", hysteresis=None
    )
    try:
        for query, scope in QUERIES:
            session.register(query, scope=scope)
        session.push_batch(batch)
        return session.finish(horizon=batch.horizon)
    finally:
        session.close()


def _assert_identical(expected, actual, context):
    assert set(expected) == set(actual), context
    for name in expected:
        for window, reference in expected[name].items():
            emitted = actual[name][window]
            assert (
                emitted.start_instance == reference.start_instance
                and emitted.frontier == reference.frontier
            ), (context, name, window)
            np.testing.assert_array_equal(
                emitted.values, reference.values, err_msg=f"{context} {name}"
            )


# ----------------------------------------------------------------------
# IngestQueue unit behaviour
# ----------------------------------------------------------------------
class TestIngestQueue:
    def test_watermark_validation(self):
        with pytest.raises(ExecutionError):
            IngestQueue(high_watermark=0)
        with pytest.raises(ExecutionError):
            IngestQueue(high_watermark=10, low_watermark=10)
        queue = IngestQueue(high_watermark=10)
        assert queue.low_watermark == 5

    def test_gate_hysteresis_and_exact_wait_counters(self):
        queue = IngestQueue(high_watermark=4, low_watermark=1)
        for i in range(4):
            queue.put_data(("event", i), 1)
        assert queue.stats.max_depth_events == 4
        assert not queue._gate_open  # at the high watermark: shut
        # Drain above the low watermark: still shut (hysteresis).
        queue.get()
        queue.get()
        assert not queue._gate_open
        queue.get()  # depth 1 == low watermark: reopens
        assert queue._gate_open
        assert queue.stats.backpressure_waits == 0  # nobody had to block

    def test_control_items_bypass_the_gate(self):
        queue = IngestQueue(high_watermark=2, low_watermark=0)
        queue.put_data(("event", 0), 1)
        queue.put_data(("event", 1), 1)
        assert not queue._gate_open
        queue.put_control(("call", None))  # must not block
        assert queue.stats.enqueued_calls == 1


# ----------------------------------------------------------------------
# Front-door error parking
# ----------------------------------------------------------------------
def test_pump_error_is_parked_and_surfaces_on_next_call():
    session = QuerySession(num_keys=2, async_ingest=True)
    session.push(0, 99, 1.0)  # key outside the dense id space
    with pytest.raises(ExecutionError, match="async ingest failed"):
        # The failure was asynchronous; it must surface on the next
        # synchronization point rather than vanish.
        session.results()
    # ...and the front door stays poisoned for later submissions too.
    with pytest.raises(ExecutionError, match="async ingest failed"):
        while True:
            session.push(1, 0, 1.0)
    session.close()


# ----------------------------------------------------------------------
# Drain-or-raise close semantics
# ----------------------------------------------------------------------
class TestDrainOrRaiseClose:
    """``stop()``/``close()`` must either flush queued data through or
    raise the parked error with an exact count of what was discarded —
    never silently drop pending input (DESIGN.md §9)."""

    def test_clean_stop_flushes_queued_events(self):
        applied = []
        gate = threading.Event()

        def push(ts, key, value):
            gate.wait()
            applied.append((ts, key, value))

        pump = IngestPump(push=push, high_watermark=64)
        for i in range(5):
            pump.submit_event(i, 0, 1.0)
        gate.set()
        pump.stop()  # must not raise, must apply everything queued
        assert applied == [(i, 0, 1.0) for i in range(5)]

    def test_stop_raises_parked_error_with_exact_discard_count(self):
        applied = []
        gate = threading.Event()

        def push(ts, key, value):
            gate.wait()
            if key == 99:
                raise ValueError("boom")
            applied.append((ts, key, value))

        pump = IngestPump(push=push, high_watermark=64)
        pump.submit_event(0, 99, 1.0)  # poison, held at the gate
        for i in range(5):
            pump.submit_event(i + 1, 0, 1.0)  # queued FIFO behind it
        gate.set()
        with pytest.raises(
            ExecutionError,
            match=r"5 queued event\(s\) were discarded, not applied",
        ):
            pump.stop()
        assert applied == []  # nothing behind the poison was applied...
        pump.stop()  # ...and a second stop does not raise it twice

    def test_stop_counts_batch_discards_by_event(self):
        batch = integer_stream(ticks=10, num_keys=NUM_KEYS, seed=7, rate=3)
        gate = threading.Event()

        def push(ts, key, value):
            gate.wait()
            raise ValueError("boom")

        def push_batch(b):  # pragma: no cover - parked error skips it
            raise AssertionError("batch must be discarded, not applied")

        pump = IngestPump(push=push, push_batch=push_batch, high_watermark=256)
        pump.submit_event(0, 99, 1.0)
        pump.submit_batch(batch)
        gate.set()
        with pytest.raises(
            ExecutionError,
            match=rf"{batch.num_events} queued event\(s\) were discarded",
        ):
            pump.stop()

    def test_session_close_raises_unobserved_parked_error_once(self):
        session = QuerySession(num_keys=2, async_ingest=True)
        session.push(0, 99, 1.0)  # key outside the dense id space
        with pytest.raises(ExecutionError, match="async ingest failed"):
            session.close()
        session.close()  # idempotent: the error does not surface twice

    def test_session_close_stays_silent_after_error_surfaced(self):
        session = QuerySession(num_keys=2, async_ingest=True)
        session.push(0, 99, 1.0)
        with pytest.raises(ExecutionError, match="async ingest failed"):
            session.results()  # the error surfaces here...
        session.close()  # ...so close() has nothing left to report

    def test_sharded_close_raises_but_still_tears_down_workers(self):
        session = ShardedSession(
            num_keys=NUM_KEYS,
            num_shards=2,
            backend="process",
            hysteresis=None,
            async_ingest=True,
        )
        session.push(0, 99, 1.0)
        with pytest.raises(ExecutionError, match="async ingest failed"):
            session.close()
        # The raise must not leak the data plane: workers are reaped
        # and a second close() is a no-op.
        assert session.backend._procs == []
        session.close()


# ----------------------------------------------------------------------
# Backpressure never drops or reorders
# ----------------------------------------------------------------------
def test_full_ring_slow_consumer_never_drops_or_reorders(repro_seed):
    """A deliberately tiny ring (2 slots × 64 events) forces the
    coordinator to block on every chunk while workers catch up; the
    merged results must still be bit-identical to the serial oracle."""
    rng = np.random.default_rng((repro_seed, 41))
    batch = integer_stream(
        ticks=400, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000)), rate=6
    )
    reference = _reference_results(batch)
    backend = SharedMemoryShardBackend(slot_events=64, num_slots=2)
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend=backend,
        hysteresis=None,
        chunk_ticks=40,
    )
    try:
        for query, scope in QUERIES:
            session.register(query, scope=scope)
        session.push_batch(batch)
        results = session.finish(horizon=batch.horizon)
    finally:
        session.close()
    _assert_identical(
        reference, results, f"seed={repro_seed} tiny-ring"
    )


def test_full_queue_backpressure_never_drops_or_reorders(repro_seed):
    """A tiny ingest queue (high watermark far below the stream size)
    must engage backpressure — counted exactly — while the emitted
    results stay bit-identical to the sync serial run."""
    rng = np.random.default_rng((repro_seed, 43))
    batch = integer_stream(
        ticks=400, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000)), rate=6
    )
    reference = _reference_results(batch)
    backend = SharedMemoryShardBackend(slot_events=64, num_slots=2)
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend=backend,
        hysteresis=None,
        chunk_ticks=40,
        async_ingest=True,
        ingest_high_watermark=128,
        ingest_low_watermark=32,
    )
    try:
        for query, scope in QUERIES:
            session.register(query, scope=scope)
        session.push_batch(batch)
        results = session.finish(horizon=batch.horizon)
        stats = session.ingest_stats
    finally:
        session.close()
    context = f"seed={repro_seed} tiny-queue"
    _assert_identical(reference, results, context)
    assert stats.enqueued_events == batch.num_events, context
    # The queue was two orders of magnitude smaller than the stream:
    # the gate must actually have engaged, and the backlog must have
    # respected the documented bound (< 2x the high watermark, since a
    # split batch slice may land on a just-reopened gate).
    assert stats.backpressure_waits > 0, context
    assert stats.max_depth_events <= 2 * 128, context


def test_mid_stream_introspection_is_safe_in_async_mode(repro_seed):
    """stats()/switches/shard_watermarks talk to the worker pipes, so
    in async mode they must serialize through the pump — calling them
    from the producer thread while the pump is mid-flush must never
    interleave bytes on a worker connection (which would corrupt the
    pickle stream and crash or hang the session)."""
    rng = np.random.default_rng((repro_seed, 53))
    batch = integer_stream(
        ticks=400, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000)), rate=6
    )
    reference = _reference_results(batch)
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend="shm",
        hysteresis=None,
        chunk_ticks=40,
        async_ingest=True,
        ingest_high_watermark=256,
    )
    try:
        for query, scope in QUERIES:
            session.register(query, scope=scope)
        for i, (ts, key, value) in enumerate(batch.rows()):
            session.push(ts, key, value)
            if i % 401 == 0:
                marks = session.shard_watermarks()
                assert min(marks) == max(marks)
                assert session.stats().total_physical >= 0
                assert isinstance(session.switches, list)
        results = session.finish(horizon=batch.horizon)
    finally:
        session.close()
    _assert_identical(
        reference, results, f"seed={repro_seed} mid-stream-introspection"
    )


def test_drain_results_stays_bounded_under_async_ingest(repro_seed):
    """Polling ``drain_results()`` between pushes releases every
    subscription's buffered blocks (frontier == start after each poll)
    and the reassembled drains equal the one-shot sync results: the
    bounded-memory read path loses nothing."""
    rng = np.random.default_rng((repro_seed, 47))
    batch = integer_stream(
        ticks=600, num_keys=NUM_KEYS, seed=int(rng.integers(0, 1000)), rate=4
    )
    reference = _reference_results(batch)
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend="serial",
        hysteresis=None,
        chunk_ticks=40,
        async_ingest=True,
        ingest_high_watermark=256,
    )
    drained: dict = {}
    try:
        for query, scope in QUERIES:
            session.register(query, scope=scope)
        for i, (ts, key, value) in enumerate(batch.rows()):
            session.push(ts, key, value)
            if i % 997 == 0 and i:
                _merge_drain(drained, session.drain_results())
                _assert_subscriptions_released(session)
        _merge_drain(drained, session.finish(horizon=batch.horizon))
    finally:
        session.close()
    final = {
        name: {
            window: _concat_block(blocks)
            for window, blocks in by_window.items()
        }
        for name, by_window in drained.items()
    }
    _assert_identical(reference, final, f"seed={repro_seed} drain-bounded")


def _assert_subscriptions_released(session):
    """After a drain, every live per-key/partial subscription on every
    (serial-backend) shard core holds zero buffered instances."""
    for core in session.backend.cores:
        for sub in list(core._subs.values()) + list(core._psubs.values()):
            assert sub.emitted_instances == 0


def _merge_drain(accum, results):
    """Append drained blocks, asserting contiguity (no gap, overlap,
    or reordering between consecutive drains)."""
    for name, by_window in results.items():
        for window, block in by_window.items():
            blocks = accum.setdefault(name, {}).setdefault(window, [])
            if blocks:
                assert block.start_instance == blocks[-1].frontier, (
                    name,
                    window,
                    "drain blocks must abut",
                )
            blocks.append(block)


def _concat_block(blocks):
    from repro.runtime import WindowResults

    values = np.concatenate([b.values for b in blocks], axis=1)
    return WindowResults(
        query=blocks[0].query,
        window=blocks[0].window,
        start_instance=blocks[0].start_instance,
        frontier=blocks[-1].frontier,
        values=values,
    )


# ----------------------------------------------------------------------
# MPSC: many producers, one session, one serial truth
# ----------------------------------------------------------------------
def _mpsc_run(session, batch, producers):
    """Feed ``batch`` through ``producers`` threads, each pushing its
    own strided (and therefore sorted) subsequence concurrently."""
    ts, keys, values = batch.timestamps, batch.keys, batch.values
    errors = []

    def producer(lane: int) -> None:
        try:
            for i in range(lane, ts.size, producers):
                session.push(int(ts[i]), int(keys[i]), float(values[i]))
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, args=(lane,))
        for lane in range(producers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


@pytest.mark.parametrize("producers", [2, 4])
def test_mpsc_producers_equal_serial_oracle(repro_seed, producers):
    """The MPSC contract of the async front door (DESIGN.md §8): any
    thread may call ``push`` concurrently, and the merged timeline is
    indistinguishable from the serial sorted oracle.

    Each producer owns a strided lane of one sorted stream, so each
    lane is itself sorted but the interleaving at the queue is
    arbitrary scheduling; ``max_lateness`` spanning the stream makes
    the reorder buffer the serializer, so *no* interleaving may drop
    an event or change a value."""
    ticks = 60
    batch = integer_stream(ticks, rate=3, num_keys=NUM_KEYS, seed=repro_seed)
    span = int(batch.horizon) + 1
    # Mergeable queries only: a single-core session has no raw
    # forwarding, so holistic-global (median) stays with the sharded
    # variant below.
    queries = [(q, scope) for q, scope in QUERIES if q.aggregate.mergeable]

    def build(cls, **kw):
        session = cls(
            num_keys=NUM_KEYS, max_lateness=span, hysteresis=None, **kw
        )
        for query, scope in queries:
            session.register(query, scope=scope)
        return session

    oracle = build(QuerySession)
    try:
        for i in range(batch.num_events):
            oracle.push(
                int(batch.timestamps[i]),
                int(batch.keys[i]),
                float(batch.values[i]),
            )
        expected = oracle.finish(horizon=batch.horizon)
    finally:
        oracle.close()

    session = build(QuerySession, async_ingest=True)
    try:
        _mpsc_run(session, batch, producers)
        actual = session.finish(horizon=batch.horizon)
        stats = session.reorder_stats  # pump fully drained by finish()
        assert stats.accepted == batch.num_events
        assert stats.late_dropped == 0
    finally:
        session.close()
    _assert_identical(
        expected, actual, f"seed={repro_seed} producers={producers}"
    )


def test_mpsc_producers_on_a_sharded_session(repro_seed):
    """Same property through the sharded front door: concurrent
    producers, two shard cores (median rides raw forwarding), against
    a sync-ingest twin of the same topology — concurrency is the only
    variable."""
    batch = integer_stream(60, rate=3, num_keys=NUM_KEYS, seed=repro_seed)
    span = int(batch.horizon) + 1

    oracle = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend="serial",
        max_lateness=span,
        hysteresis=None,
    )
    try:
        for query, scope in QUERIES:
            oracle.register(query, scope=scope)
        for i in range(batch.num_events):
            oracle.push(
                int(batch.timestamps[i]),
                int(batch.keys[i]),
                float(batch.values[i]),
            )
        expected = oracle.finish(horizon=batch.horizon)
    finally:
        oracle.close()

    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend="serial",
        max_lateness=span,
        hysteresis=None,
        async_ingest=True,
    )
    try:
        for query, scope in QUERIES:
            session.register(query, scope=scope)
        _mpsc_run(session, batch, 3)
        actual = session.finish(horizon=batch.horizon)
    finally:
        session.close()
    _assert_identical(expected, actual, f"seed={repro_seed} sharded-mpsc")
