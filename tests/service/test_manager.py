"""SessionManager contract: admission control with exact counters,
supervision (restore + tail replay), and the request/reply protocol
(DESIGN.md §10).

Clocks and sleepers are injected everywhere, so every shed decision,
breaker transition, and retry quote in here is exact arithmetic — a
failing assertion names a wrong counter, not a missed sleep.
"""

import threading

import pytest

from repro.errors import ExecutionError
from repro.runtime.faults import Fault, FaultPlan
from repro.service import (
    BadRequest,
    Overloaded,
    SessionManager,
    deserialize_results,
    serialize_results,
)
from service_helpers import (
    SQL_AVG,
    SQL_SUM,
    FakeClock,
    RecordingSleeper,
    integer_events,
    oracle_results,
)

NUM_KEYS = 4


def make_manager(tmp_path, *, clock=None, sleeper=None, config=None, **kw):
    clock = clock if clock is not None else FakeClock()
    return SessionManager(
        config or {"defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9}},
        directory=tmp_path / "ckpt",
        clock=clock,
        sleeper=sleeper if sleeper is not None else RecordingSleeper(clock),
        **kw,
    )


# ----------------------------------------------------------------------
# The happy path is the oracle path
# ----------------------------------------------------------------------
class TestBasicOps:
    def test_ingest_results_match_oracle_bit_for_bit(self, tmp_path, repro_seed):
        events = integer_events(40, NUM_KEYS, seed=repro_seed)
        with make_manager(tmp_path) as mgr:
            assert mgr.register("alice", SQL_SUM) == "q1"
            out = mgr.ingest("alice", events)
            assert out["admitted"] == len(events)
            got = mgr.results("alice")
        expected = oracle_results(
            events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert got == expected, f"seed={repro_seed}"

    def test_results_round_trip_through_the_wire_codec(self, tmp_path, repro_seed):
        events = integer_events(30, NUM_KEYS, seed=repro_seed)
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM, name="sums")
            mgr.ingest("alice", events)
            payload = mgr.results("alice")
        rebuilt = deserialize_results(payload)
        assert serialize_results(rebuilt) == payload

    def test_tenants_are_isolated_namespaces(self, tmp_path, repro_seed):
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM, name="q")
            mgr.register("bob", SQL_AVG, name="q")  # same name, fine
            mgr.ingest("alice", [(1, 0, 1.0)])
            assert mgr.stats("alice")["watermark"] is not None
            assert mgr.stats("bob")["queries"] == ["q"]

    def test_deregister_then_reuse_name(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM, name="q")
            mgr.deregister("alice", "q")
            assert "q" not in mgr.stats("alice")["queries"]
            with pytest.raises(BadRequest):
                mgr.deregister("alice", "q")

    def test_duplicate_name_is_bad_request(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM, name="q")
            with pytest.raises(BadRequest, match="already registered"):
                mgr.register("alice", SQL_AVG, name="q")

    def test_auto_open_on_first_touch(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            mgr.ingest("zelda", [(1, 0, 1.0)])
            assert "zelda" in mgr.tenants

    def test_reopen_with_conflicting_config_raises(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            mgr.open_tenant("alice", {"rate": 100.0})
            mgr.open_tenant("alice", {"rate": 100.0})  # idempotent
            with pytest.raises(BadRequest, match="different config"):
                mgr.open_tenant("alice", {"rate": 7.0})


# ----------------------------------------------------------------------
# Admission control: shed explicitly, count exactly
# ----------------------------------------------------------------------
class TestAdmission:
    def test_rate_quota_shed_with_honest_retry_after(self, tmp_path):
        clock = FakeClock()
        config = {"defaults": {"num_keys": NUM_KEYS, "rate": 10, "burst": 10}}
        with make_manager(tmp_path, clock=clock, config=config) as mgr:
            mgr.register("alice", SQL_SUM)
            batch = [(1, 0, 1.0)] * 10
            assert mgr.ingest("alice", batch)["admitted"] == 10
            with pytest.raises(Overloaded) as exc_info:
                mgr.ingest("alice", [(2, 0, 1.0)] * 5)
            assert exc_info.value.reason == "rate_quota"
            clock.advance(exc_info.value.retry_after)
            assert mgr.ingest("alice", [(2, 0, 1.0)] * 5)["admitted"] == 5
            stats = mgr.stats("alice")["stats"]
            assert stats["shed_rate_quota"] == 1
            assert stats["admitted_events"] == 15
            assert stats["requests"] == 3 + 1  # 3 ingests + stats itself

    def test_shed_request_applies_nothing(self, tmp_path):
        clock = FakeClock()
        config = {"defaults": {"num_keys": NUM_KEYS, "rate": 5, "burst": 5}}
        with make_manager(tmp_path, clock=clock, config=config) as mgr:
            mgr.register("alice", SQL_SUM)
            mgr.ingest("alice", [(1, 0, 1.0)] * 5)
            wm = mgr.stats("alice")["watermark"]
            with pytest.raises(Overloaded):
                mgr.ingest("alice", [(9, 0, 1.0)] * 5)
            assert mgr.stats("alice")["watermark"] == wm

    def test_oversized_batch_sheds_on_queue_budget(self, tmp_path):
        from repro.engine.events import EVENT_BYTES

        config = {
            "defaults": {
                "num_keys": NUM_KEYS,
                "rate": 1e9,
                "burst": 1e9,
                "queue_budget_bytes": 50 * EVENT_BYTES,
            }
        }
        with make_manager(tmp_path, config=config) as mgr:
            mgr.register("alice", SQL_SUM)
            assert mgr.ingest("alice", [(1, 0, 1.0)] * 50)["admitted"] == 50
            with pytest.raises(Overloaded) as exc_info:
                mgr.ingest("alice", [(2, 0, 1.0)] * 51)
            assert exc_info.value.reason == "queue_budget"
            assert exc_info.value.retry_after > 0
            assert mgr.stats("alice")["stats"]["shed_queue_budget"] == 1

    def test_concurrent_backlog_sheds_on_queue_budget(self, tmp_path):
        """While one request holds the session lock (a planned stall),
        co-requests beyond the byte budget shed instead of queueing."""
        from repro.engine.events import EVENT_BYTES

        plan = FaultPlan(
            Fault(kind="stall_client", tenant="alice", op="ingest",
                  delay_seconds=0.4)
        )
        config = {
            "defaults": {
                "num_keys": NUM_KEYS,
                "rate": 1e9,
                "burst": 1e9,
                "queue_budget_bytes": 120 * EVENT_BYTES,
            }
        }
        import time as _time

        with SessionManager(
            config, directory=tmp_path / "ckpt", fault_plan=plan
        ) as mgr:
            mgr.register("alice", SQL_SUM)
            started = threading.Event()

            def stalled():
                started.set()
                mgr.ingest("alice", [(1, 0, 1.0)] * 100)

            worker = threading.Thread(target=stalled)
            worker.start()
            started.wait()
            deadline = _time.monotonic() + 2.0
            shed = None
            while _time.monotonic() < deadline:
                try:
                    mgr.ingest("alice", [(2, 0, 1.0)] * 100)
                except Overloaded as exc:
                    shed = exc
                    break
                _time.sleep(0.01)
            worker.join()
            assert shed is not None and shed.reason == "queue_budget"
            assert mgr.stats("alice")["stats"]["shed_queue_budget"] >= 1

    def test_flood_fault_drains_the_bucket(self, tmp_path):
        plan = FaultPlan(
            Fault(kind="flood_tenant", tenant="alice", op="ingest")
        )
        config = {"defaults": {"num_keys": NUM_KEYS, "rate": 10, "burst": 100}}
        with make_manager(tmp_path, config=config, fault_plan=plan) as mgr:
            mgr.register("alice", SQL_SUM)
            with pytest.raises(Overloaded) as exc_info:
                mgr.ingest("alice", [(1, 0, 1.0)])
            assert exc_info.value.reason == "rate_quota"
            assert mgr.stats("alice")["stats"]["faults_injected"] == 1

    def test_malformed_events_are_bad_request_not_shed(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM)
            with pytest.raises(BadRequest, match="events"):
                mgr.ingest("alice", "nope")
            with pytest.raises(BadRequest, match="outside dense id space"):
                mgr.ingest("alice", [(1, 99, 1.0)])
            stats = mgr.stats("alice")["stats"]
            assert stats["admitted_events"] == 0
            assert stats["shed_rate_quota"] == 0


# ----------------------------------------------------------------------
# Supervision: restore + tail replay, breaker on repeated death
# ----------------------------------------------------------------------
class TestSupervision:
    def test_kill_fault_recovers_to_oracle_results(self, tmp_path, repro_seed):
        events = integer_events(60, NUM_KEYS, seed=repro_seed)
        plan = FaultPlan(
            Fault(kind="kill_session", tenant="alice", op="ingest",
                  at_watermark=25)
        )
        with make_manager(tmp_path, fault_plan=plan, checkpoint_every=16) as mgr:
            mgr.register("alice", SQL_SUM)
            for ts, key, value in events:
                mgr.ingest("alice", [(ts, key, value)])
            stats = mgr.stats("alice")["stats"]
            assert stats["restores"] == 1
            assert stats["faults_injected"] == 1
            got = mgr.results("alice")
        expected = oracle_results(
            events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert got == expected, f"seed={repro_seed}"

    def test_kill_before_any_checkpoint_replays_full_tail(self, tmp_path, repro_seed):
        events = integer_events(20, NUM_KEYS, seed=repro_seed)
        plan = FaultPlan(
            Fault(kind="kill_session", tenant="alice", op="ingest",
                  at_watermark=8)
        )
        # Cadence far beyond the stream: recovery must rebuild from
        # scratch and replay every op from the tail alone.
        with make_manager(tmp_path, fault_plan=plan, checkpoint_every=10_000) as mgr:
            mgr.register("alice", SQL_SUM)
            for ts, key, value in events:
                mgr.ingest("alice", [(ts, key, value)])
            assert mgr.stats("alice")["stats"]["restores"] == 1
            got = mgr.results("alice")
        assert got == oracle_results(
            events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        ), f"seed={repro_seed}"

    def test_drain_consumption_survives_recovery(self, tmp_path, repro_seed):
        """Results drained before a crash are not re-served after it —
        replay reproduces the consumption."""
        events = integer_events(60, NUM_KEYS, seed=repro_seed)
        half = len(events) // 2
        # The watermark trails the newest tick by the chunk size, so
        # the gate must sit at a watermark the second batch's admission
        # actually observes (first half covers ticks 1-30, wm ~21).
        plan = FaultPlan(
            Fault(kind="kill_session", tenant="alice", op="ingest",
                  at_watermark=15)
        )
        with make_manager(tmp_path, fault_plan=plan, checkpoint_every=10_000) as mgr:
            mgr.register("alice", SQL_SUM)
            mgr.ingest("alice", events[:half])
            first = mgr.results("alice")  # drains, tail-logged
            mgr.ingest("alice", events[half:])  # killed + recovered here
            second = mgr.results("alice")
            assert mgr.stats("alice")["stats"]["restores"] == 1

        # The undisturbed twin: same timeline, same drain points.
        from repro.runtime import QuerySession

        ref = QuerySession(num_keys=NUM_KEYS)
        try:
            ref.register(SQL_SUM)
            for ts, key, value in events[:half]:
                ref.push(ts, key, value)
            ref_first = serialize_results(ref.drain_results())
            for ts, key, value in events[half:]:
                ref.push(ts, key, value)
            ref_second = serialize_results(ref.drain_results())
        finally:
            ref.close()
        assert first == ref_first, f"seed={repro_seed}"
        assert second == ref_second, f"seed={repro_seed}"

    def test_auto_checkpoint_truncates_tail(self, tmp_path):
        with make_manager(tmp_path, checkpoint_every=10) as mgr:
            mgr.register("alice", SQL_SUM)
            mgr.ingest("alice", [(t, 0, 1.0) for t in range(1, 9)])
            before = mgr.stats("alice")["stats"]["tail_length"]
            mgr.ingest("alice", [(t, 0, 1.0) for t in range(9, 30)])
            after = mgr.stats("alice")["stats"]["tail_length"]
            assert before == 9  # register + 8 pushes
            assert after < before + 21  # cadence cleared mid-way
            assert list((tmp_path / "ckpt" / "alice").glob("*.rckpt"))

    def test_manual_snapshot_clears_tail(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM)
            mgr.ingest("alice", [(1, 0, 1.0), (2, 1, 2.0)])
            out = mgr.snapshot("alice")
            assert out["watermark"] >= 1
            assert mgr.stats("alice")["stats"]["tail_length"] == 0

    def test_repeated_recovery_failure_opens_breaker(self, tmp_path, monkeypatch):
        clock = FakeClock()
        plan = FaultPlan(
            Fault(kind="kill_session", tenant="alice", op="ingest")
        )
        with make_manager(
            tmp_path, clock=clock, fault_plan=plan,
            failure_threshold=3, reset_after=5.0,
        ) as mgr:
            mgr.register("alice", SQL_SUM)
            # Break recovery itself: every restore attempt now dies.
            # The one kill fault fells the session on the first
            # ingest; each retry then finds the dead stub, records a
            # failure, and fails to rebuild — consecutive failures
            # that must open the breaker instead of thrashing restore
            # forever.
            monkeypatch.setattr(
                mgr, "_build_session",
                lambda state, source: (_ for _ in ()).throw(
                    ExecutionError("restore broken")
                ),
            )
            for ts in (3, 4, 5):
                with pytest.raises(ExecutionError):
                    mgr.ingest("alice", [(ts, 0, 1.0)])
            with pytest.raises(Overloaded) as exc_info:
                mgr.ingest("alice", [(6, 0, 1.0)])
            assert exc_info.value.reason == "circuit_open"
            assert exc_info.value.retry_after == pytest.approx(5.0)
            # Mutating control ops shed too...
            with pytest.raises(Overloaded):
                mgr.register("alice", SQL_AVG, name="later")
            # ...but reads still answer while the breaker is open.
            stats = mgr.stats("alice")["stats"]
            assert stats["shed_circuit_open"] == 2
            assert stats["breaker"] == "open"
            # After reset_after, one probe goes through; recovery is
            # still broken, so it fails and the breaker re-opens.
            clock.advance(5.0)
            with pytest.raises(ExecutionError):
                mgr.ingest("alice", [(7, 0, 1.0)])
            assert mgr.stats("alice")["stats"]["breaker"] == "open"

    def test_poison_op_is_skipped_and_surfaced(self, tmp_path, monkeypatch):
        with make_manager(tmp_path) as mgr:
            mgr.register("alice", SQL_SUM)
            mgr.ingest("alice", [(1, 0, 1.0)])
            real_apply = SessionManager._apply_entry

            def poisoned(session, entry):
                if entry[0] == "push" and entry[1] == 99:
                    raise ExecutionError("poison event")
                real_apply(session, entry)

            monkeypatch.setattr(SessionManager, "_apply_entry",
                                staticmethod(poisoned))
            with pytest.raises(BadRequest, match="freshly restored"):
                mgr.ingest("alice", [(99, 0, 1.0)])
            stats = mgr.stats("alice")["stats"]
            assert stats["replay_skipped"] == 1
            assert stats["restores"] == 1
            # The tenant is healthy again; the poison op is not looped.
            monkeypatch.setattr(SessionManager, "_apply_entry",
                                staticmethod(real_apply))
            mgr.ingest("alice", [(100, 0, 1.0)])
            assert mgr.stats("alice")["stats"]["restores"] == 1

    def test_stall_fault_uses_injected_sleeper(self, tmp_path):
        clock = FakeClock()
        sleeper = RecordingSleeper(clock)
        plan = FaultPlan(
            Fault(kind="stall_client", tenant="alice", op="ingest",
                  delay_seconds=1.5)
        )
        with make_manager(
            tmp_path, clock=clock, sleeper=sleeper, fault_plan=plan
        ) as mgr:
            mgr.register("alice", SQL_SUM)
            mgr.ingest("alice", [(1, 0, 1.0)])
            assert sleeper.calls == [1.5]


# ----------------------------------------------------------------------
# The request/reply protocol
# ----------------------------------------------------------------------
class TestHandle:
    def test_dispatch_and_error_shapes(self, tmp_path):
        clock = FakeClock()
        config = {"defaults": {"num_keys": NUM_KEYS, "rate": 5, "burst": 5}}
        with make_manager(tmp_path, clock=clock, config=config) as mgr:
            assert mgr.handle({"op": "nope"})["error"] == "bad_request"
            assert mgr.handle({"op": "ingest"})["error"] == "bad_request"
            reply = mgr.handle(
                {"op": "register", "tenant": "a", "query": SQL_SUM}
            )
            assert reply == {"ok": True, "name": "q1"}
            reply = mgr.handle(
                {"op": "ingest", "tenant": "a",
                 "events": [[1, 0, 1.0]] * 5}
            )
            assert reply["ok"] and reply["admitted"] == 5
            shed = mgr.handle(
                {"op": "ingest", "tenant": "a",
                 "events": [[2, 0, 1.0]] * 5}
            )
            assert shed["ok"] is False
            assert shed["error"] == "overloaded"
            assert shed["reason"] == "rate_quota"
            assert shed["retry_after"] > 0
            results = mgr.handle({"op": "results", "tenant": "a"})
            assert results["ok"] and "q1" in results["results"]
            stats = mgr.handle({"op": "stats", "tenant": "a"})
            assert stats["ok"] and stats["stats"]["shed_rate_quota"] == 1

    def test_open_carries_effective_config(self, tmp_path):
        with make_manager(tmp_path) as mgr:
            reply = mgr.handle(
                {"op": "open", "tenant": "a", "config": {"rate": 77.0}}
            )
            assert reply["ok"] and reply["config"]["rate"] == 77.0
            bad = mgr.handle(
                {"op": "open", "tenant": "a", "config": {"rtae": 1}}
            )
            assert bad["error"] == "bad_request"

    def test_handle_never_raises(self, tmp_path, monkeypatch):
        with make_manager(tmp_path) as mgr:
            monkeypatch.setattr(
                mgr, "stats",
                lambda tenant: (_ for _ in ()).throw(ValueError("boom")),
            )
            reply = mgr.handle({"op": "stats", "tenant": "a"})
            assert reply["ok"] is False
            assert reply["error"] == "failed"
            assert "ValueError" in reply["detail"]

    def test_closed_manager_refuses(self, tmp_path):
        mgr = make_manager(tmp_path)
        mgr.close()
        assert mgr.handle({"op": "stats", "tenant": "a"})["error"] == "failed"
        mgr.close()  # idempotent
