"""Invariant 13 under chaos: one tenant's crash or overload never
perturbs another tenant.

The property, stated exactly (DESIGN.md §10):

* the *bystander* tenant's entire reply trace — every admitted count,
  watermark, and drained result payload, in request order — is
  bit-identical between a disturbed run and an undisturbed twin run
  fed the same interleaved schedule; and
* the *victim* tenant's final results are bit-identical to the serial
  sync-ingest oracle over its own timeline, i.e. the fault cost it
  nothing but latency.

Faults are injected by the deterministic :class:`FaultPlan` service
kinds (``kill_session`` / ``flood_tenant`` / ``stall_client``), and
the kill point is *seeded* — run the suite under different
``REPRO_TEST_SEED`` values and the crash lands at different
watermarks; the property must hold at all of them.

These drive :meth:`SessionManager.handle` in-process — the exact code
path the TCP server runs per request — so interleavings are
deterministic and every equality is ``==`` on JSON-ready payloads.
The one genuinely concurrent case (a stalled client must not slow a
co-tenant) runs over the real TCP server at the end.
"""

import threading
import time

import pytest

from repro.runtime.faults import Fault, FaultPlan
from repro.service import SessionManager, ServiceClient, serve_in_thread
from service_helpers import (
    SQL_AVG,
    SQL_SUM,
    FakeClock,
    RecordingSleeper,
    integer_events,
    oracle_results,
)

pytestmark = pytest.mark.chaos

NUM_KEYS = 4
TICKS = 80
BATCH_TICKS = 10

VICTIM = "alice"
BYSTANDER = "bob"


def batches_of(events, batch_ticks=BATCH_TICKS):
    """Split a sorted event list into contiguous tick-range batches."""
    out, current, limit = [], [], batch_ticks
    for ev in events:
        if ev[0] > limit:
            out.append(current)
            current, limit = [], limit + batch_ticks
        current.append(ev)
    if current:
        out.append(current)
    return out


def interleaved_schedule(victim_events, bystander_events):
    """The deterministic request schedule both runs replay: register
    both tenants, then alternate ingest batches, with the bystander
    draining results mid-stream (drains are tail-logged state — they
    must survive the victim's crash untouched too)."""
    schedule = [
        (VICTIM, {"op": "register", "query": SQL_SUM}),
        (BYSTANDER, {"op": "register", "query": SQL_AVG}),
    ]
    va, vb = batches_of(victim_events), batches_of(bystander_events)
    for i in range(max(len(va), len(vb))):
        if i < len(va):
            schedule.append((VICTIM, {"op": "ingest", "events": va[i]}))
        if i < len(vb):
            schedule.append((BYSTANDER, {"op": "ingest", "events": vb[i]}))
        if i == len(vb) // 2:
            schedule.append((BYSTANDER, {"op": "results", "drain": True}))
    schedule.append((BYSTANDER, {"op": "results", "drain": True}))
    schedule.append((VICTIM, {"op": "results", "drain": True}))
    return schedule


def run_schedule(tmp_path, tag, schedule, fault_plan=None, config=None,
                 checkpoint_every=16):
    """Replay one schedule through a fresh manager; returns
    ``(trace_by_tenant, stats_by_tenant)`` where a trace entry is the
    full reply dict (JSON-ready, so ``==`` is bit-identity)."""
    clock = FakeClock()
    traces = {VICTIM: [], BYSTANDER: []}
    with SessionManager(
        config
        or {"defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9}},
        directory=tmp_path / f"ckpt-{tag}",
        checkpoint_every=checkpoint_every,
        fault_plan=fault_plan,
        clock=clock,
        sleeper=RecordingSleeper(clock),
    ) as mgr:
        for tenant, request in schedule:
            reply = mgr.handle({"tenant": tenant, **request})
            # A well-behaved producer: honor the quote (plus a float
            # epsilon over the refill arithmetic) and try again, a
            # bounded number of times.
            for _ in range(6):
                if reply.get("error") != "overloaded":
                    break
                clock.advance(float(reply["retry_after"]) + 1e-6)
                reply = mgr.handle({"tenant": tenant, **request})
            traces[tenant].append(reply)
        stats = {t: mgr.stats(t)["stats"] for t in traces}
    return traces, stats


class TestInvariant13:
    def test_seeded_kill_never_perturbs_the_bystander(
        self, tmp_path, repro_seed, repro_rng
    ):
        victim_events = integer_events(TICKS, NUM_KEYS, seed=repro_seed)
        bystander_events = integer_events(
            TICKS, NUM_KEYS, seed=repro_seed + 1
        )
        schedule = interleaved_schedule(victim_events, bystander_events)
        # Seeded crash point: any watermark the stream actually crosses.
        kill_at = int(repro_rng.integers(2, 60))
        plan = FaultPlan(
            Fault(kind="kill_session", tenant=VICTIM, op="ingest",
                  at_watermark=kill_at)
        )

        disturbed, d_stats = run_schedule(
            tmp_path, "disturbed", schedule, fault_plan=plan
        )
        undisturbed, u_stats = run_schedule(tmp_path, "twin", schedule)

        assert d_stats[VICTIM]["faults_injected"] == 1, f"kill_at={kill_at}"
        assert d_stats[VICTIM]["restores"] == 1

        # The bystander's world is indistinguishable, reply for reply.
        assert disturbed[BYSTANDER] == undisturbed[BYSTANDER], (
            f"seed={repro_seed} kill_at={kill_at}"
        )
        assert d_stats[BYSTANDER]["restores"] == 0
        assert d_stats[BYSTANDER]["faults_injected"] == 0

        # The victim's final results match the serial sync oracle —
        # the crash cost latency, not data.  (Mid-stream the bystander
        # drained; the victim never did, so one final drain sees all.)
        final = disturbed[VICTIM][-1]
        assert final["ok"], final
        expected = oracle_results(
            victim_events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert final["results"] == expected, (
            f"seed={repro_seed} kill_at={kill_at}"
        )

    def test_kill_on_a_sharded_victim(self, tmp_path, repro_seed):
        """Same property with the victim running a ShardedSession —
        restore + tail replay goes through the sharded runtime, and
        shard invariance keeps the oracle a plain serial session."""
        victim_events = integer_events(TICKS, NUM_KEYS, seed=repro_seed)
        bystander_events = integer_events(
            TICKS, NUM_KEYS, seed=repro_seed + 1
        )
        schedule = interleaved_schedule(victim_events, bystander_events)
        plan = FaultPlan(
            Fault(kind="kill_session", tenant=VICTIM, op="ingest",
                  at_watermark=30)
        )
        config = {
            "defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9},
            "tenants": {VICTIM: {"num_shards": 2}},
        }
        disturbed, d_stats = run_schedule(
            tmp_path, "disturbed", schedule, fault_plan=plan, config=config
        )
        undisturbed, _ = run_schedule(
            tmp_path, "twin", schedule, config=config
        )
        assert d_stats[VICTIM]["restores"] == 1
        assert disturbed[BYSTANDER] == undisturbed[BYSTANDER]
        expected = oracle_results(
            victim_events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert disturbed[VICTIM][-1]["results"] == expected, (
            f"seed={repro_seed}"
        )

    def test_flood_sheds_the_victim_only(self, tmp_path, repro_seed):
        """A compressed traffic flood drains the victim's bucket: the
        next victim batch sheds with an honest quote (and succeeds
        after honoring it); the bystander never sees a ripple."""
        victim_events = integer_events(TICKS, NUM_KEYS, seed=repro_seed)
        bystander_events = integer_events(
            TICKS, NUM_KEYS, seed=repro_seed + 1
        )
        schedule = interleaved_schedule(victim_events, bystander_events)
        plan = FaultPlan(
            Fault(kind="flood_tenant", tenant=VICTIM, op="ingest",
                  at_watermark=20)
        )
        # Finite per-tenant quota so the drained bucket actually sheds.
        config = {
            "defaults": {
                "num_keys": NUM_KEYS, "rate": 1000.0, "burst": 4096,
            }
        }
        disturbed, d_stats = run_schedule(
            tmp_path, "disturbed", schedule, fault_plan=plan, config=config
        )
        undisturbed, u_stats = run_schedule(
            tmp_path, "twin", schedule, config=config
        )
        assert d_stats[VICTIM]["faults_injected"] == 1
        assert d_stats[VICTIM]["shed_rate_quota"] >= 1  # explicit, counted
        assert d_stats[VICTIM]["restores"] == 0  # overload is not death
        # Every shed was made up for by a retry: nothing silently lost.
        assert d_stats[VICTIM]["admitted_events"] == len(victim_events)
        assert disturbed[BYSTANDER] == undisturbed[BYSTANDER], (
            f"seed={repro_seed}"
        )
        assert u_stats[BYSTANDER]["shed_rate_quota"] == 0
        # The retried victim lost nothing.
        expected = oracle_results(
            victim_events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert disturbed[VICTIM][-1]["results"] == expected

    def test_kill_then_flood_combined(self, tmp_path, repro_seed):
        """Both fault kinds on the same victim in one run — the
        bystander's trace still cannot tell."""
        victim_events = integer_events(TICKS, NUM_KEYS, seed=repro_seed)
        bystander_events = integer_events(
            TICKS, NUM_KEYS, seed=repro_seed + 1
        )
        schedule = interleaved_schedule(victim_events, bystander_events)
        plan = FaultPlan(
            Fault(kind="flood_tenant", tenant=VICTIM, op="ingest",
                  at_watermark=10),
            Fault(kind="kill_session", tenant=VICTIM, op="ingest",
                  at_watermark=40),
        )
        config = {
            "defaults": {
                "num_keys": NUM_KEYS, "rate": 1000.0, "burst": 4096,
            }
        }
        disturbed, d_stats = run_schedule(
            tmp_path, "disturbed", schedule, fault_plan=plan, config=config
        )
        undisturbed, _ = run_schedule(
            tmp_path, "twin", schedule, config=config
        )
        assert d_stats[VICTIM]["faults_injected"] == 2
        assert d_stats[VICTIM]["restores"] == 1
        assert disturbed[BYSTANDER] == undisturbed[BYSTANDER]
        expected = oracle_results(
            victim_events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert disturbed[VICTIM][-1]["results"] == expected


class TestConcurrentStallIsolation:
    def test_stalled_client_does_not_slow_a_co_tenant(
        self, tmp_path, repro_seed
    ):
        """Over the real TCP server: the victim's connection wedges
        0.5s *while holding the victim's session lock*; the bystander
        keeps streaming on its own locks and finishes long before the
        stall would allow if isolation leaked."""
        plan = FaultPlan(
            Fault(kind="stall_client", tenant=VICTIM, op="ingest",
                  delay_seconds=0.5)
        )
        events = integer_events(40, NUM_KEYS, seed=repro_seed)
        with SessionManager(
            {"defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9}},
            directory=tmp_path / "ckpt",
            fault_plan=plan,  # real wall-clock sleeper on purpose
        ) as manager:
            server = serve_in_thread(manager)
            try:
                barrier = threading.Barrier(2)
                bystander_latencies: list = []
                errors: list = []

                def victim() -> None:
                    try:
                        with ServiceClient(port=server.port) as c:
                            c.register(VICTIM, SQL_SUM)
                            barrier.wait()
                            c.ingest(VICTIM, events)  # stalls 0.5s
                    except Exception as exc:  # noqa: BLE001
                        errors.append(("victim", exc))

                def bystander() -> None:
                    try:
                        with ServiceClient(port=server.port) as c:
                            c.register(BYSTANDER, SQL_SUM)
                            barrier.wait()
                            for batch in batches_of(events, 5):
                                t0 = time.monotonic()
                                c.ingest(BYSTANDER, batch)
                                bystander_latencies.append(
                                    time.monotonic() - t0
                                )
                    except Exception as exc:  # noqa: BLE001
                        errors.append(("bystander", exc))

                threads = [
                    threading.Thread(target=victim),
                    threading.Thread(target=bystander),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                assert not errors, errors
                assert manager.stats(VICTIM)["stats"]["faults_injected"] == 1
                # Every bystander request cleared well under the stall.
                worst = max(bystander_latencies)
                assert worst < 0.4, (
                    f"bystander saw {worst:.3f}s behind a 0.5s stall"
                )
            finally:
                server.stop()
