"""Shared helpers for the service suites: fake clocks, oracle runs.

The oracle for every service-level bit-identity assertion is the
plainest possible timeline: a fresh sync-ingest session fed the same
events in the same order with the same registrations, serialized
through the same wire codec.  Integer-valued events keep every
mergeable aggregate exact in float64, so "equal" means ``==`` on the
serialized payload — no tolerances anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import QuerySession
from repro.service.protocol import serialize_results

SQL_SUM = "SELECT SUM(v) FROM s GROUP BY WINDOWS(HOPPING(second, 10, 5))"
SQL_AVG = "SELECT AVG(v) FROM s GROUP BY WINDOWS(HOPPING(second, 20, 10))"


class FakeClock:
    """A hand-cranked monotonic clock for deterministic admission."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class RecordingSleeper:
    """Stands in for ``time.sleep``: records, never blocks."""

    def __init__(self, clock: "FakeClock | None" = None):
        self.calls: list = []
        self.clock = clock

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)
        if self.clock is not None:
            self.clock.advance(seconds)


def integer_events(
    ticks: int, num_keys: int, seed: int, rate: int = 2
) -> "list[tuple[int, int, float]]":
    """A sorted integer-valued event list (exact float64 arithmetic)."""
    rng = np.random.default_rng(seed)
    out = []
    for t in range(1, ticks + 1):
        for _ in range(rate):
            out.append((t, int(rng.integers(0, num_keys)), float(rng.integers(0, 1000))))
    return out


def oracle_results(
    events, registrations, num_keys: int
) -> dict:
    """Serialized drain of an undisturbed sync session over the same
    timeline: ``registrations`` is ``[(index, query, name, scope)]``
    in stream order (index = how many events precede the register)."""
    session = QuerySession(num_keys=num_keys)
    try:
        points = {i: (q, n, s) for i, q, n, s in registrations}
        for i, (ts, key, value) in enumerate(events):
            if i in points:
                query, name, scope = points[i]
                session.register(query, name=name, scope=scope)
            session.push(ts, key, value)
        return serialize_results(session.drain_results())
    finally:
        session.close()
