"""Admission-control primitives: token bucket, breaker, retry policy,
and the tenants.yaml config loader (DESIGN.md §10).

Everything here runs on injected fake clocks — the contract is exact
arithmetic (token balances, retry quotes, breaker transitions at
deadlines), not sleep-and-hope timing.
"""

import pytest

from repro.errors import ExecutionError
from repro.service import (
    CircuitBreaker,
    RetryPolicy,
    ServiceConfig,
    TenantConfig,
    TokenBucket,
    load_tenants_config,
    parse_simple_yaml,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_admits_up_to_burst_then_quotes(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5, clock=clock)
        assert bucket.acquire(5) is None
        retry = bucket.acquire(1)
        assert retry == pytest.approx(0.1)  # 1 token at 10/s

    def test_refills_at_rate_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5, clock=clock)
        assert bucket.acquire(5) is None
        clock.advance(0.25)
        assert bucket.tokens == pytest.approx(2.5)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(5.0)  # capped

    def test_rejection_leaves_bucket_untouched(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4, clock=clock)
        assert bucket.acquire(3) is None
        before = bucket.tokens
        assert bucket.acquire(2) is not None
        assert bucket.tokens == before

    def test_oversized_request_quotes_finite_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=4, clock=clock)
        bucket.drain()
        retry = bucket.acquire(1_000_000)
        # Can never be admitted whole; the quote is time-to-full-burst.
        assert retry == pytest.approx(0.4)

    def test_drain_empties_and_reports(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=8, clock=clock)
        assert bucket.drain() == pytest.approx(8.0)
        assert bucket.acquire(1) is not None

    def test_retry_quote_is_honest(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=4, clock=clock)
        bucket.drain()
        retry = bucket.acquire(2)
        clock.advance(retry)
        assert bucket.acquire(2) is None  # exactly enough after waiting

    def test_validation(self):
        with pytest.raises(ExecutionError):
            TokenBucket(rate=0.0, burst=4)
        with pytest.raises(ExecutionError):
            TokenBucket(rate=1.0, burst=0)
        with pytest.raises(ExecutionError):
            TokenBucket(rate=1.0, burst=4).acquire(-1)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, reset_after=2.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, reset_after=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, reset_after=2.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(2.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller sheds

    def test_probe_outcome_closes_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, reset_after=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()  # probe succeeded
        assert breaker.state == "closed"

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, reset_after=4.0, clock=clock)
        breaker.record_failure()
        assert breaker.retry_after == pytest.approx(4.0)
        clock.advance(3.0)
        assert breaker.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert breaker.retry_after == 0.0  # half-open: probe welcome


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_yields_attempts_minus_one_bounded_delays(self, repro_rng):
        import random

        policy = RetryPolicy(
            attempts=5, base=0.1, factor=2.0, cap=0.5,
            rng=random.Random(int(repro_rng.integers(1 << 30))),
        )
        delays = list(policy.delays())
        assert len(delays) == 4
        for k, delay in enumerate(delays):
            assert 0.0 <= delay <= min(0.5, 0.1 * 2.0**k)

    def test_deadline_truncates_and_stops(self):
        import random

        clock = FakeClock()
        policy = RetryPolicy(
            attempts=100, base=10.0, factor=1.0, cap=10.0,
            deadline=5.0, rng=random.Random(7), clock=clock,
        )
        total = 0.0
        for delay in policy.delays():
            total += delay
            clock.advance(delay)
        assert total <= 5.0 + 1e-9

    def test_seeded_jitter_is_reproducible(self):
        import random

        a = RetryPolicy(attempts=6, rng=random.Random(42))
        b = RetryPolicy(attempts=6, rng=random.Random(42))
        assert list(a.delays()) == list(b.delays())

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(attempts=0)
        with pytest.raises(ExecutionError):
            RetryPolicy(base=0.0)
        with pytest.raises(ExecutionError):
            RetryPolicy(base=1.0, cap=0.5)


# ----------------------------------------------------------------------
# tenants.yaml loader
# ----------------------------------------------------------------------
YAML = """
# service quotas
defaults:
  rate: 5000          # events/second
  burst: 8192
  queue_budget_bytes: 1048576
  num_keys: 64
tenants:
  alice:
    rate: 1000.5
    checkpoint_every: 256
  bob:
    num_shards: 2
    backend: "process"
  carol:              # all defaults
"""


class TestConfigLoader:
    def test_parse_simple_yaml_nesting_and_scalars(self):
        data = parse_simple_yaml(YAML)
        assert data["defaults"]["rate"] == 5000
        assert data["tenants"]["alice"]["rate"] == 1000.5
        assert data["tenants"]["bob"]["backend"] == "process"
        assert data["tenants"]["carol"] == {}

    def test_scalar_types(self):
        data = parse_simple_yaml(
            "a:\n  i: 3\n  f: 1.5\n  t: true\n  n: null\n  s: 'x y'\n"
        )["a"]
        assert data == {"i": 3, "f": 1.5, "t": True, "n": None, "s": "x y"}

    def test_json_fast_path(self):
        cfg = load_tenants_config('{"defaults": {"rate": 7}}')
        assert cfg.defaults.rate == 7

    def test_tabs_raise(self):
        with pytest.raises(ExecutionError, match="tabs"):
            parse_simple_yaml("a:\n\tb: 1\n")

    def test_load_merges_defaults_fieldwise(self):
        cfg = load_tenants_config(YAML)
        assert cfg.config_for("alice").rate == 1000.5
        assert cfg.config_for("alice").num_keys == 64  # inherited
        assert cfg.config_for("bob").num_shards == 2
        assert cfg.config_for("carol") == cfg.defaults
        assert cfg.config_for("undeclared") == cfg.defaults

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "tenants.yaml"
        path.write_text(YAML)
        cfg = load_tenants_config(path)
        assert cfg.config_for("bob").backend == "process"

    def test_unknown_keys_raise(self):
        with pytest.raises(ExecutionError, match="unknown tenant config"):
            load_tenants_config("tenants:\n  a:\n    rtae: 5\n")
        with pytest.raises(ExecutionError, match="section"):
            load_tenants_config("defautls:\n  rate: 5\n")

    def test_config_is_immutable_and_mergeable(self):
        base = TenantConfig()
        merged = base.merged({"rate": 1.0})
        assert base.rate != 1.0 and merged.rate == 1.0
        assert isinstance(
            ServiceConfig(base, {}).config_for("x"), TenantConfig
        )
