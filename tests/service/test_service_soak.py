"""Sustained multi-tenant load over the real TCP service.

The overload story under genuine concurrency, asserted exactly:

* **Never silent, never unbounded** — every batch a producer sends is
  either admitted or answered with an explicit ``overloaded`` reply
  carrying a positive ``retry_after``; at the end, per tenant,
  ``admitted_events + shed replies == batches sent``, counter for
  counter, across all producer threads.
* **Isolation** — a noisy tenant hammering its quota from several
  connections never slows a well-behaved co-tenant: the quiet
  tenant's p99 per-request ingest latency stays within budget and its
  results remain bit-identical to the serial sync oracle.

Kept deliberately lean (a few thousand events, a couple of seconds)
because the default pytest invocation runs it; the bench suite is
where sustained throughput gets measured.
"""

import threading
import time

import pytest

from repro.service import (
    Overloaded,
    ServiceClient,
    SessionManager,
    serve_in_thread,
)
from repro.service.protocol import OVERLOAD_REASONS
from service_helpers import SQL_SUM, integer_events, oracle_results

pytestmark = pytest.mark.soak

NUM_KEYS = 8

QUIET, NOISY = "quiet", "noisy"
NOISY_PRODUCERS = 3
NOISY_BATCHES = 40  # per producer
NOISY_BATCH_EVENTS = 25
QUIET_BATCH_TICKS = 2
P99_BUDGET_SECONDS = 0.5


class ProducerLog:
    """One producer thread's exact ledger (no shared mutable state —
    each thread owns its log; totals are summed after the join)."""

    def __init__(self):
        self.admitted_events = 0
        self.ok_batches = 0
        self.shed_batches = 0
        self.latencies: list = []
        self.error: "Exception | None" = None


def noisy_producer(port: int, producer_id: int, log: ProducerLog) -> None:
    """Hammer the noisy tenant's quota without retrying: every reply
    must be a clean admit or an explicit shed."""
    try:
        with ServiceClient(port=port) as client:
            ts = 1
            for _ in range(NOISY_BATCHES):
                batch = [
                    (ts + i, (producer_id + i) % NUM_KEYS, 1.0)
                    for i in range(NOISY_BATCH_EVENTS)
                ]
                ts += NOISY_BATCH_EVENTS
                try:
                    reply = client.ingest(NOISY, batch)
                except Overloaded as exc:
                    log.shed_batches += 1
                    assert exc.reason in OVERLOAD_REASONS
                    assert exc.retry_after > 0.0
                else:
                    log.ok_batches += 1
                    log.admitted_events += reply["admitted"]
    except Exception as exc:  # noqa: BLE001 - surfaced after the join
        log.error = exc


def quiet_producer(port: int, events, log: ProducerLog) -> None:
    """The well-behaved co-tenant: ordered batches, one connection,
    per-request latency recorded."""
    try:
        with ServiceClient(port=port) as client:
            client.register(QUIET, SQL_SUM)
            batch: list = []
            limit = QUIET_BATCH_TICKS
            for event in events:
                if event[0] > limit:
                    t0 = time.monotonic()
                    client.ingest(QUIET, batch)
                    log.latencies.append(time.monotonic() - t0)
                    log.admitted_events += len(batch)
                    batch, limit = [], limit + QUIET_BATCH_TICKS
                batch.append(event)
            if batch:
                t0 = time.monotonic()
                client.ingest(QUIET, batch)
                log.latencies.append(time.monotonic() - t0)
                log.admitted_events += len(batch)
    except Exception as exc:  # noqa: BLE001
        log.error = exc


def percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def test_soak_exact_accounting_and_co_tenant_latency(tmp_path, repro_seed):
    quiet_events = integer_events(120, NUM_KEYS, seed=repro_seed)
    config = {
        "defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9},
        "tenants": {
            # Tight enough that the noisy fleet sheds constantly, with
            # a small queue budget so both shed reasons are reachable.
            NOISY: {
                "rate": 200.0,
                "burst": 256,
                "queue_budget_bytes": 64 * 24,
            },
        },
    }
    with SessionManager(config, directory=tmp_path / "ckpt") as manager:
        server = serve_in_thread(manager, max_workers=NOISY_PRODUCERS + 2)
        try:
            quiet_log = ProducerLog()
            noisy_logs = [ProducerLog() for _ in range(NOISY_PRODUCERS)]
            threads = [
                threading.Thread(
                    target=quiet_producer,
                    args=(server.port, quiet_events, quiet_log),
                )
            ] + [
                threading.Thread(
                    target=noisy_producer, args=(server.port, i, log)
                )
                for i, log in enumerate(noisy_logs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)

            for log in [quiet_log, *noisy_logs]:
                assert log.error is None, log.error

            # --- exact admission accounting, noisy tenant ------------
            noisy_stats = manager.stats(NOISY)["stats"]
            sent_batches = NOISY_PRODUCERS * NOISY_BATCHES
            ok = sum(log.ok_batches for log in noisy_logs)
            shed = sum(log.shed_batches for log in noisy_logs)
            assert ok + shed == sent_batches  # nothing vanished
            assert shed > 0, "quota never bit — soak too gentle"
            assert (
                sum(log.admitted_events for log in noisy_logs)
                == noisy_stats["admitted_events"]
                == ok * NOISY_BATCH_EVENTS
            )
            assert (
                noisy_stats["shed_rate_quota"]
                + noisy_stats["shed_queue_budget"]
                + noisy_stats["shed_circuit_open"]
                == shed
            )
            assert noisy_stats["requests"] == sent_batches

            # --- the quiet tenant never noticed ----------------------
            quiet_stats = manager.stats(QUIET)["stats"]
            assert quiet_stats["admitted_events"] == len(quiet_events)
            assert quiet_stats["shed_rate_quota"] == 0
            assert quiet_stats["shed_queue_budget"] == 0
            p99 = percentile(quiet_log.latencies, 0.99)
            assert p99 < P99_BUDGET_SECONDS, (
                f"quiet tenant p99 {p99:.3f}s behind a noisy co-tenant"
            )

            # --- and its results are still oracle-exact --------------
            got = manager.results(QUIET)
            expected = oracle_results(
                quiet_events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
            )
            assert got == expected, f"seed={repro_seed}"
        finally:
            server.stop()
