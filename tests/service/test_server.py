"""The TCP front door: wire round-trips, failure shapes, lifecycle.

The server is a thin pipe onto ``SessionManager.handle`` — these tests
pin the transport's own obligations: one reply per request line in
order, parseable replies for unparseable requests, typed client-side
errors, bounded overload-aware retries, and a clean start/stop story.
"""

import json
import socket
import threading

import pytest

from repro.errors import ExecutionError
from repro.service import (
    BadRequest,
    Overloaded,
    RetryPolicy,
    ServiceClient,
    ServiceServer,
    SessionManager,
    serve_in_thread,
)
from service_helpers import SQL_SUM, integer_events, oracle_results

NUM_KEYS = 4


@pytest.fixture
def served(tmp_path):
    """A running server over a defaults-config manager."""
    with SessionManager(
        {"defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9}},
        directory=tmp_path / "ckpt",
    ) as manager:
        server = serve_in_thread(manager)
        try:
            yield manager, server
        finally:
            server.stop()


class TestRoundTrips:
    def test_ping(self, served):
        _, server = served
        with ServiceClient(port=server.port) as client:
            assert client.ping()

    def test_full_tenant_flow_matches_oracle(self, served, repro_seed):
        _, server = served
        events = integer_events(40, NUM_KEYS, seed=repro_seed)
        with ServiceClient(port=server.port) as client:
            client.open("alice")
            assert client.register("alice", SQL_SUM) == "q1"
            out = client.ingest("alice", events)
            assert out["admitted"] == len(events)
            got = client.results("alice")
            stats = client.stats("alice")
            assert stats["stats"]["admitted_events"] == len(events)
        from repro.service.protocol import serialize_results

        expected = oracle_results(
            events, [(0, SQL_SUM, "", "per_key")], NUM_KEYS
        )
        assert serialize_results(got) == expected, f"seed={repro_seed}"

    def test_snapshot_over_the_wire(self, served):
        _, server = served
        with ServiceClient(port=server.port) as client:
            client.register("alice", SQL_SUM)
            client.ingest("alice", [(t, 0, 1.0) for t in range(1, 30)])
            snap = client.snapshot("alice")
            assert snap["watermark"] > 0

    def test_replies_stay_in_request_order(self, served):
        _, server = served
        with ServiceClient(port=server.port) as client:
            client.register("alice", SQL_SUM)
            for ts in range(1, 50):
                out = client.ingest("alice", [(ts, ts % NUM_KEYS, 1.0)])
                assert out["admitted"] == 1

    def test_concurrent_clients_separate_tenants(self, served, repro_seed):
        _, server = served
        errors: list = []

        def run_tenant(tenant: str, seed: int) -> None:
            try:
                events = integer_events(30, NUM_KEYS, seed=seed)
                with ServiceClient(port=server.port) as client:
                    client.register(tenant, SQL_SUM)
                    client.ingest(tenant, events)
                    stats = client.stats(tenant)
                    assert stats["stats"]["admitted_events"] == len(events)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((tenant, exc))

        threads = [
            threading.Thread(target=run_tenant, args=(f"t{i}", repro_seed + i))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"seed={repro_seed}: {errors}"


class TestFailureShapes:
    def test_malformed_json_line_gets_a_reply(self, served):
        _, server = served
        with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            reply = json.loads(f.readline())
            assert reply["ok"] is False
            assert reply["error"] == "bad_request"
            # The connection survives a garbage line.
            f.write(b'{"op": "ping"}\n')
            f.flush()
            assert json.loads(f.readline())["ok"] is True

    def test_non_object_line_is_bad_request(self, served):
        _, server = served
        with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
            f = sock.makefile("rwb")
            f.write(b"[1, 2, 3]\n")
            f.flush()
            assert json.loads(f.readline())["error"] == "bad_request"

    def test_typed_client_errors(self, served):
        _, server = served
        with ServiceClient(port=server.port) as client:
            with pytest.raises(BadRequest):
                client.register("alice", "SELECT nonsense")
            client.open("limited", {"rate": 5.0, "burst": 5})
            client.register("limited", SQL_SUM)
            client.ingest("limited", [(1, 0, 1.0)] * 5)
            with pytest.raises(Overloaded) as exc_info:
                client.ingest("limited", [(2, 0, 1.0)] * 5)
            assert exc_info.value.reason == "rate_quota"
            assert exc_info.value.retry_after > 0

    def test_retry_honors_server_quote(self, served):
        _, server = served
        sleeps: list = []
        client = ServiceClient(
            port=server.port, sleeper=sleeps.append
        )
        try:
            # rate=1/s keeps refills negligible over the test's runtime,
            # so the retried batch sheds deterministically every attempt.
            client.open("q", {"rate": 1.0, "burst": 10})
            client.register("q", SQL_SUM)
            client.ingest("q", [(1, 0, 1.0)] * 10)
            with pytest.raises(Overloaded):
                # The fake sleeper never waits, so every retry sheds;
                # the policy must bound the attempts and re-raise.
                client.ingest_with_retry(
                    "q", [(2, 0, 1.0)] * 10,
                    policy=RetryPolicy(attempts=3),
                )
            assert len(sleeps) == 2  # attempts - 1 backoffs
            # Each sleep honors the server's ~10s refill quote as a
            # floor over the policy's sub-second jittered backoff.
            assert all(s > 5.0 for s in sleeps)
        finally:
            client.close()

    def test_client_rejects_unbound_port(self):
        with pytest.raises(ExecutionError):
            ServiceClient(port=0)


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self, tmp_path):
        with SessionManager(directory=tmp_path / "c") as manager:
            server = serve_in_thread(manager)
            with ServiceClient(port=server.port) as client:
                client.shutdown()
            server.stop()
            with pytest.raises(ExecutionError):
                ServiceClient(port=server.port, timeout=1.0).ping()

    def test_manager_outlives_the_transport(self, tmp_path):
        with SessionManager(
            {"defaults": {"num_keys": NUM_KEYS}}, directory=tmp_path / "c"
        ) as manager:
            server = serve_in_thread(manager)
            with ServiceClient(port=server.port) as client:
                client.register("alice", SQL_SUM)
                client.ingest("alice", [(1, 0, 1.0)])
            server.stop()
            # Tenant state survives a transport restart.
            server2 = serve_in_thread(manager)
            try:
                with ServiceClient(port=server2.port) as client:
                    stats = client.stats("alice")
                    assert stats["stats"]["admitted_events"] == 1
            finally:
                server2.stop()

    def test_context_manager_and_double_start(self, tmp_path):
        with SessionManager(directory=tmp_path / "c") as manager:
            with ServiceServer(manager) as server:
                assert server.port > 0
                with pytest.raises(ExecutionError):
                    server.start()
            # stop() is idempotent.
            server.stop()
