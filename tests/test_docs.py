"""Tier-1 wrapper around the docs lint (``tools/check_docs.py``).

The docs surface (README, DESIGN, docs/) advertises runnable snippets
and intra-repo links; this keeps both true on every test run, not just
in the CI ``docs-lint`` job.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_docs_links_resolve_and_snippets_execute():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"docs lint failed:\n{proc.stdout}\n{proc.stderr}"
    )
