"""Tests for plan node structures."""

import pytest

from repro.aggregates.registry import MIN
from repro.errors import PlanError
from repro.plans.builder import PlanBuilder, original_plan
from repro.plans.nodes import (
    MulticastNode,
    SourceNode,
    UnionNode,
    WindowAggregateNode,
)
from repro.windows.window import Window, WindowSet


@pytest.fixture
def builder():
    return PlanBuilder()


class TestNodeConstruction:
    def test_source_has_no_inputs(self, builder):
        assert builder.source.inputs == ()
        assert builder.source.name == "Input"

    def test_multicast_requires_one_input(self):
        with pytest.raises(PlanError):
            MulticastNode(node_id=1, inputs=())

    def test_window_aggregate_requires_window(self, builder):
        with pytest.raises(PlanError):
            WindowAggregateNode(node_id=2, inputs=(builder.source,))

    def test_window_aggregate_requires_one_input(self):
        with pytest.raises(PlanError):
            WindowAggregateNode(
                node_id=2, inputs=(), window=Window(10, 10), aggregate=MIN
            )

    def test_union_requires_inputs(self):
        with pytest.raises(PlanError):
            UnionNode(node_id=3, inputs=())

    def test_kind_labels(self, builder):
        agg = builder.window_aggregate(Window(10, 10), MIN, builder.source)
        assert builder.source.kind == "source"
        assert agg.kind == "windowaggregate"

    def test_reads_raw(self, builder):
        raw = builder.window_aggregate(Window(10, 10), MIN, builder.source)
        fed = builder.window_aggregate(
            Window(20, 20), MIN, raw, provider=Window(10, 10)
        )
        assert raw.reads_raw
        assert not fed.reads_raw


class TestLogicalPlanAccessors:
    def test_nodes_sorted_by_id(self):
        plan = original_plan(
            WindowSet([Window(20, 20), Window(30, 30)]), MIN
        )
        ids = [n.node_id for n in plan.nodes()]
        assert ids == sorted(ids)

    def test_window_accessors(self):
        windows = WindowSet([Window(20, 20), Window(30, 30)])
        plan = original_plan(windows, MIN)
        assert set(plan.windows) == set(windows)
        assert set(plan.user_windows) == set(windows)
        assert plan.factor_window_nodes() == ()

    def test_provider_map_original_plan(self):
        plan = original_plan(WindowSet([Window(20, 20)]), MIN)
        assert plan.provider_map() == {Window(20, 20): None}

    def test_node_for_missing_window(self):
        plan = original_plan(WindowSet([Window(20, 20)]), MIN)
        with pytest.raises(PlanError):
            plan.node_for(Window(99, 99))

    def test_depth_of_raw_is_zero(self):
        plan = original_plan(WindowSet([Window(20, 20)]), MIN)
        assert plan.depth_of(Window(20, 20)) == 0

    def test_iter_subtree_dedupes_shared_nodes(self):
        plan = original_plan(
            WindowSet([Window(20, 20), Window(30, 30)]), MIN
        )
        nodes = list(plan.root.iter_subtree())
        assert len(nodes) == len({n.node_id for n in nodes})

    def test_topological_window_order(self):
        builder = PlanBuilder()
        w10 = builder.window_aggregate(Window(10, 10), MIN, builder.source)
        w20 = builder.window_aggregate(
            Window(20, 20), MIN, w10, provider=Window(10, 10)
        )
        from repro.plans.nodes import LogicalPlan

        plan = LogicalPlan(
            root=builder.union([w10, w20]),
            source=builder.source,
            aggregate=MIN,
        )
        order = [n.window for n in plan.topological_window_order()]
        assert order == [Window(10, 10), Window(20, 20)]


class TestOriginalPlanBuilder:
    def test_empty_window_set_rejected(self):
        with pytest.raises(PlanError):
            original_plan(WindowSet(), MIN)

    def test_single_window_skips_multicast_and_union(self):
        plan = original_plan(WindowSet([Window(20, 20)]), MIN)
        kinds = {n.kind for n in plan.nodes()}
        assert "multicast" not in kinds
        assert "union" not in kinds

    def test_multi_window_has_multicast_and_union(self):
        plan = original_plan(
            WindowSet([Window(20, 20), Window(30, 30)]), MIN
        )
        kinds = [n.kind for n in plan.nodes()]
        assert kinds.count("multicast") == 1
        assert kinds.count("union") == 1

    def test_all_windows_read_raw(self, example6_windows):
        plan = original_plan(example6_windows, MIN)
        assert all(n.reads_raw for n in plan.window_nodes())

    def test_source_name(self):
        plan = original_plan(
            WindowSet([Window(20, 20)]), MIN, source_name="Sensors"
        )
        assert plan.source.name == "Sensors"
