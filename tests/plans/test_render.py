"""Tests for plan renderers (Trill / Flink / tree)."""

from repro.aggregates.registry import MIN, SUM
from repro.core.optimizer import min_cost_wcg_with_factors
from repro.core.rewrite import rewrite_plan
from repro.plans.builder import original_plan
from repro.plans.render import (
    physical_path,
    physical_paths,
    to_flink,
    to_tree,
    to_trill,
)
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet


def _factor_plan():
    windows = WindowSet([Window(20, 20), Window(30, 30), Window(40, 40)])
    gmin, _ = min_cost_wcg_with_factors(
        windows, CoverageSemantics.PARTITIONED_BY
    )
    return rewrite_plan(gmin, MIN, description="rewritten+factors")


class TestTrillRenderer:
    def test_original_plan_shape(self, example6_windows):
        text = to_trill(original_plan(example6_windows, MIN))
        assert text.count(".Tumbling(") == 4
        assert ".Union(" in text
        assert "Multicast" in text
        assert text.strip().endswith("return u6;") or "return" in text

    def test_factor_plan_marks_factors(self):
        text = to_trill(_factor_plan())
        assert ".Factor(" in text  # the factor window W(10,10)
        assert text.count("from sub-aggregates") == 3

    def test_hopping_rendered(self):
        plan = original_plan(WindowSet([Window(20, 10)]), MIN)
        assert ".Hopping(20, 10)" in to_trill(plan)

    def test_aggregate_name_capitalized(self):
        plan = original_plan(WindowSet([Window(20, 20)]), SUM)
        assert "w.Sum(" in to_trill(plan)


class TestFlinkRenderer:
    def test_window_calls(self):
        plan = original_plan(
            WindowSet([Window(20, 20), Window(40, 20)]), MIN
        )
        text = to_flink(plan)
        assert "TumblingEventTimeWindows.of(20)" in text
        assert "SlidingEventTimeWindows.of(40, 20)" in text
        assert ".union(" in text

    def test_aggregate_call(self):
        plan = original_plan(WindowSet([Window(20, 20)]), MIN)
        assert "new MinAggregate()" in to_flink(plan)


class TestTreeRenderer:
    def test_tree_mentions_every_operator(self):
        text = to_tree(_factor_plan())
        assert "Union" in text
        assert "MultiCast" in text
        assert "Source(Input)" in text
        assert "(factor)" in text
        assert "from 10 second" in text

    def test_tree_shows_description(self):
        text = to_tree(_factor_plan())
        assert text.startswith("[rewritten+factors]")

    def test_tree_shows_raw_origin(self, example6_windows):
        text = to_tree(original_plan(example6_windows, MIN))
        assert text.count("<- raw") == 4


class TestPhysicalPathAnnotation:
    def test_tree_annotates_paths_for_engine(self):
        text = to_tree(_factor_plan(), engine="columnar-panes")
        assert "engine=columnar-panes" in text
        assert "via panes[p=" in text
        assert "via subagg-gather[M=" in text

    def test_raw_paths_differ_by_engine(self, example6_windows):
        plan = original_plan(WindowSet([Window(40, 10)]), MIN)
        assert "panes[p=10, r/p=4]" in physical_path(
            plan.window_nodes()[0], "columnar-panes"
        )
        assert "raw-materialize[k=4]" in physical_path(
            plan.window_nodes()[0], "columnar"
        )
        assert "event-loop[k=4]" in physical_path(
            plan.window_nodes()[0], "streaming"
        )

    def test_paths_for_every_window(self):
        plan = _factor_plan()
        paths = physical_paths(plan, "streaming-chunked")
        assert set(paths) == set(plan.windows)

    def test_holistic_path(self):
        from repro.aggregates.registry import MEDIAN

        plan = original_plan(WindowSet([Window(20, 20)]), MEDIAN)
        assert physical_path(
            plan.window_nodes()[0], "columnar-panes"
        ) == "raw-segmented-scan[holistic]"

    def test_tree_unannotated_without_engine(self):
        assert "via " not in to_tree(_factor_plan())


class TestShardFanout:
    def test_tree_header_annotated(self):
        from repro.plans.render import shard_fanout

        plan = _factor_plan()
        text = to_tree(plan, shards=4)
        assert "shards=4" in text
        assert "x4 key-hash shards" in text
        assert "partials combine" in shard_fanout(plan, 4)

    def test_holistic_fanout_names_forwarding(self):
        from repro.aggregates.registry import MEDIAN
        from repro.plans.render import shard_fanout

        plan = original_plan(WindowSet([Window(20, 20)]), MEDIAN)
        assert "raw-forward" in shard_fanout(plan, 2)

    def test_tree_unannotated_without_shards(self):
        assert "shards=" not in to_tree(_factor_plan())

    def test_live_session_contributes_load_counters(self):
        from repro.aggregates.registry import MIN
        from repro.core.multiquery import Query
        from repro.runtime import ShardedSession

        session = ShardedSession(num_keys=4, num_shards=2, chunk_ticks=8)
        session.register(
            Query("q", WindowSet([Window(8, 4)]), MIN), scope="per_key"
        )
        for t in range(32):
            session.push(t, t % 4, float(t))
        text = to_tree(_factor_plan(), shards=session)
        session.close()
        assert "shards=2" in text
        assert "shard 0: load" in text
        assert "shard 1: load" in text
        assert "slots," in text and "keys" in text
