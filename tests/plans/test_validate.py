"""Tests for plan validation."""

import pytest

from repro.aggregates.registry import MEDIAN, MIN, SUM
from repro.errors import PlanError
from repro.plans.builder import PlanBuilder, original_plan
from repro.plans.nodes import LogicalPlan
from repro.plans.validate import validate_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet


def _plan_with_provider(aggregate, consumer, provider, semantics=None):
    builder = PlanBuilder()
    provider_node = builder.window_aggregate(
        provider, aggregate, builder.source
    )
    fanout = builder.multicast(provider_node)
    consumer_node = builder.window_aggregate(
        consumer, aggregate, fanout, provider=provider
    )
    root = builder.union([fanout, consumer_node])
    return LogicalPlan(
        root=root,
        source=builder.source,
        aggregate=aggregate,
        semantics=semantics,
    )


class TestValidPlans:
    def test_original_plan_valid(self, example6_windows):
        validate_plan(original_plan(example6_windows, MIN))

    def test_partitioned_subaggregate_edge_valid(self):
        plan = _plan_with_provider(SUM, Window(40, 40), Window(20, 20))
        validate_plan(plan)

    def test_covered_edge_valid_for_min(self):
        plan = _plan_with_provider(
            MIN,
            Window(10, 2),
            Window(8, 2),
            semantics=CoverageSemantics.COVERED_BY,
        )
        validate_plan(plan)

    def test_holistic_original_plan_valid(self, example6_windows):
        validate_plan(original_plan(example6_windows, MEDIAN))


class TestInvalidPlans:
    def test_covered_edge_invalid_for_sum(self):
        # SUM over an overlapping (merely covered) provider is unsound.
        plan = _plan_with_provider(
            SUM,
            Window(10, 2),
            Window(8, 2),
            semantics=CoverageSemantics.COVERED_BY,
        )
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_uncovered_provider_rejected(self):
        plan = _plan_with_provider(MIN, Window(30, 30), Window(20, 20))
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_holistic_subaggregate_edge_rejected(self):
        plan = _plan_with_provider(MEDIAN, Window(40, 40), Window(20, 20))
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_provider_without_node_rejected(self):
        builder = PlanBuilder()
        node = builder.window_aggregate(
            Window(40, 40), MIN, builder.source, provider=Window(20, 20)
        )
        plan = LogicalPlan(root=node, source=builder.source, aggregate=MIN)
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_duplicate_window_rejected(self):
        builder = PlanBuilder()
        fanout = builder.multicast(builder.source)
        a = builder.window_aggregate(Window(20, 20), MIN, fanout)
        b = builder.window_aggregate(Window(20, 20), MIN, fanout)
        plan = LogicalPlan(
            root=builder.union([a, b]), source=builder.source, aggregate=MIN
        )
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_factor_window_in_union_rejected(self):
        builder = PlanBuilder()
        factor = builder.window_aggregate(
            Window(10, 10), MIN, builder.source, is_factor=True
        )
        plan = LogicalPlan(root=factor, source=builder.source, aggregate=MIN)
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_user_window_missing_from_union_rejected(self):
        # W(20,20) is a (non-factor) user window reachable only as
        # W(40,40)'s provider; its results never surface at the root.
        builder = PlanBuilder()
        provider = builder.window_aggregate(Window(20, 20), MIN, builder.source)
        consumer = builder.window_aggregate(
            Window(40, 40), MIN, provider, provider=Window(20, 20)
        )
        plan = LogicalPlan(
            root=builder.union([consumer]),
            source=builder.source,
            aggregate=MIN,
        )
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_raw_claim_with_aggregate_input_rejected(self):
        builder = PlanBuilder()
        inner = builder.window_aggregate(Window(10, 10), MIN, builder.source)
        outer = builder.window_aggregate(Window(20, 20), MIN, inner)
        plan = LogicalPlan(
            root=builder.union([inner, outer]),
            source=builder.source,
            aggregate=MIN,
        )
        with pytest.raises(PlanError):
            validate_plan(plan)
