"""Shared fixtures and hypothesis strategies for the test suite.

Randomized-seed policy
----------------------
Every randomized (non-hypothesis) property test draws its randomness
from the ``repro_seed`` / ``repro_rng`` fixtures, whose seed comes from
the ``REPRO_TEST_SEED`` environment variable (fresh entropy when
unset).  The seed is printed in the pytest header and embedded in
assertion messages, so any counterexample — e.g. a shard-invariance
violation — reproduces exactly with::

    REPRO_TEST_SEED=<seed> python -m pytest ...

Hypothesis tests get the same treatment through a profile that prints
reproduction blobs on failure (and derandomizes when a seed is
pinned).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

from repro.engine.events import EventBatch, make_batch
from repro.windows.window import Window, WindowSet

_SEED_ENV = os.environ.get("REPRO_TEST_SEED")
REPRO_TEST_SEED = (
    int(_SEED_ENV)
    if _SEED_ENV is not None
    else int.from_bytes(os.urandom(4), "big")
)

hypothesis_settings.register_profile(
    "repro",
    print_blob=True,
    derandomize=_SEED_ENV is not None,
)
hypothesis_settings.load_profile("repro")


def pytest_report_header(config):  # pragma: no cover - cosmetic
    return (
        f"randomized property tests: REPRO_TEST_SEED={REPRO_TEST_SEED}"
        f" ({'pinned' if _SEED_ENV is not None else 'fresh'};"
        " re-run failures with REPRO_TEST_SEED=<seed>)"
    )


@pytest.fixture
def repro_seed() -> int:
    """The session-wide randomized-test seed (REPRO_TEST_SEED)."""
    return REPRO_TEST_SEED


@pytest.fixture
def repro_rng(repro_seed) -> np.random.Generator:
    """A fresh generator seeded from REPRO_TEST_SEED (per test)."""
    return np.random.default_rng(repro_seed)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def windows_strategy(
    max_slide: int = 12, max_multiplier: int = 6
) -> st.SearchStrategy[Window]:
    """Windows with ``r = k * s`` (the cost model's standing assumption)
    and small parameters so hyper-periods stay tractable."""
    return st.builds(
        lambda s, k: Window(k * s, s),
        st.integers(1, max_slide),
        st.integers(1, max_multiplier),
    )


def tumbling_strategy(max_range: int = 48) -> st.SearchStrategy[Window]:
    return st.builds(lambda r: Window(r, r), st.integers(1, max_range))


def window_sets_strategy(
    min_size: int = 2, max_size: int = 5, tumbling: bool = False
) -> st.SearchStrategy[WindowSet]:
    base = tumbling_strategy() if tumbling else windows_strategy()
    return st.lists(
        base, min_size=min_size, max_size=max_size, unique=True
    ).map(WindowSet)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def small_batch() -> EventBatch:
    """240 ticks (two hyper-periods of the Example-7 set), one event per
    tick, three keys, deterministic values."""
    rng = np.random.default_rng(42)
    n = 240
    return make_batch(
        timestamps=np.arange(n),
        values=rng.normal(20.0, 5.0, n),
        keys=rng.integers(0, 3, n),
        num_keys=3,
        horizon=n,
    )


@pytest.fixture
def single_key_batch() -> EventBatch:
    """240 ticks, one event per tick, one key — matches the cost model's
    η = 1 assumption exactly."""
    rng = np.random.default_rng(7)
    n = 240
    return make_batch(
        timestamps=np.arange(n),
        values=rng.normal(0.0, 1.0, n),
        horizon=n,
    )


@pytest.fixture
def example7_windows() -> WindowSet:
    """The paper's Example 7 window set: tumbling 20/30/40."""
    return WindowSet([Window(20, 20), Window(30, 30), Window(40, 40)])


@pytest.fixture
def example6_windows() -> WindowSet:
    """The paper's Example 6 window set: tumbling 10/20/30/40."""
    return WindowSet(
        [Window(10, 10), Window(20, 20), Window(30, 30), Window(40, 40)]
    )
