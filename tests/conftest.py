"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.engine.events import EventBatch, make_batch
from repro.windows.window import Window, WindowSet


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def windows_strategy(
    max_slide: int = 12, max_multiplier: int = 6
) -> st.SearchStrategy[Window]:
    """Windows with ``r = k * s`` (the cost model's standing assumption)
    and small parameters so hyper-periods stay tractable."""
    return st.builds(
        lambda s, k: Window(k * s, s),
        st.integers(1, max_slide),
        st.integers(1, max_multiplier),
    )


def tumbling_strategy(max_range: int = 48) -> st.SearchStrategy[Window]:
    return st.builds(lambda r: Window(r, r), st.integers(1, max_range))


def window_sets_strategy(
    min_size: int = 2, max_size: int = 5, tumbling: bool = False
) -> st.SearchStrategy[WindowSet]:
    base = tumbling_strategy() if tumbling else windows_strategy()
    return st.lists(
        base, min_size=min_size, max_size=max_size, unique=True
    ).map(WindowSet)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def small_batch() -> EventBatch:
    """240 ticks (two hyper-periods of the Example-7 set), one event per
    tick, three keys, deterministic values."""
    rng = np.random.default_rng(42)
    n = 240
    return make_batch(
        timestamps=np.arange(n),
        values=rng.normal(20.0, 5.0, n),
        keys=rng.integers(0, 3, n),
        num_keys=3,
        horizon=n,
    )


@pytest.fixture
def single_key_batch() -> EventBatch:
    """240 ticks, one event per tick, one key — matches the cost model's
    η = 1 assumption exactly."""
    rng = np.random.default_rng(7)
    n = 240
    return make_batch(
        timestamps=np.arange(n),
        values=rng.normal(0.0, 1.0, n),
        horizon=n,
    )


@pytest.fixture
def example7_windows() -> WindowSet:
    """The paper's Example 7 window set: tumbling 20/30/40."""
    return WindowSet([Window(20, 20), Window(30, 30), Window(40, 40)])


@pytest.fixture
def example6_windows() -> WindowSet:
    """The paper's Example 6 window set: tumbling 10/20/30/40."""
    return WindowSet(
        [Window(10, 10), Window(20, 20), Window(30, 30), Window(40, 40)]
    )
