"""Tests for the Scotty-style slicing executor."""

import numpy as np
import pytest

from repro.aggregates.registry import AVG, MAX, MEDIAN, MIN, SUM
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan
from repro.errors import ExecutionError
from repro.plans.builder import original_plan
from repro.slicing.slicer import build_slice_store, execute_sliced
from repro.windows.window import Window, WindowSet


@pytest.fixture
def batch():
    rng = np.random.default_rng(23)
    n = 120
    return make_batch(
        np.arange(n),
        rng.normal(0, 3, n),
        keys=rng.integers(0, 2, n),
        num_keys=2,
        horizon=n,
    )


class TestSlicedEquivalence:
    @pytest.mark.parametrize("aggregate", [MIN, MAX, SUM, AVG])
    def test_matches_original_plan(self, batch, aggregate):
        windows = WindowSet(
            [Window(10, 10), Window(20, 10), Window(30, 15), Window(40, 20)]
        )
        sliced = execute_sliced(windows, aggregate, batch)
        reference = execute_plan(original_plan(windows, aggregate), batch)
        for window in windows:
            np.testing.assert_allclose(
                sliced.results[window],
                reference.results[window],
                rtol=1e-9,
                equal_nan=True,
            )

    def test_mixed_unrelated_slides(self, batch):
        # Slides 4 and 6 interleave: variable slices per instance.
        windows = WindowSet([Window(8, 4), Window(12, 6)])
        sliced = execute_sliced(windows, MIN, batch)
        reference = execute_plan(original_plan(windows, MIN), batch)
        for window in windows:
            np.testing.assert_allclose(
                sliced.results[window],
                reference.results[window],
                equal_nan=True,
            )


class TestSlicedCost:
    def test_single_raw_pass(self, batch):
        windows = WindowSet([Window(10, 10), Window(20, 10)])
        sliced = execute_sliced(windows, MIN, batch)
        slice_pairs = sliced.stats.pairs_per_window[
            Window(1, 1, name="slices")
        ]
        assert slice_pairs == batch.num_events

    def test_assembly_cost_counts_slices(self, batch):
        windows = WindowSet([Window(20, 10)])
        sliced = execute_sliced(windows, MIN, batch)
        # 11 complete instances * 2 slices each * 2 keys.
        assert sliced.stats.pairs_per_window[Window(20, 10)] == 11 * 2 * 2

    def test_no_cross_window_sharing(self, batch):
        # Unlike factor-window plans, each window assembles from slices
        # independently: assembly cost grows with every window added.
        one = execute_sliced(WindowSet([Window(20, 10)]), MIN, batch)
        two = execute_sliced(
            WindowSet([Window(20, 10), Window(40, 10)]), MIN, batch
        )
        assert two.stats.total_pairs > one.stats.total_pairs


class TestSlicedErrors:
    def test_holistic_rejected(self, batch):
        with pytest.raises(ExecutionError):
            execute_sliced(WindowSet([Window(10, 10)]), MEDIAN, batch)

    def test_store_exposes_geometry(self, batch):
        store = build_slice_store(batch, [Window(10, 5)], MIN)
        assert store.num_slices == 24
        assert store.components[0].shape == (2, 24)
