"""Tests for slice-edge computation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.slicing.edges import (
    assign_slices,
    expected_edge_count,
    slice_edges,
    slices_per_instance,
    window_slice_spans,
)
from repro.windows.window import Window


class TestSliceEdges:
    def test_single_window_edges_are_slide_multiples(self):
        edges = slice_edges([Window(10, 5)], 20)
        assert list(edges) == [0, 5, 10, 15, 20]

    def test_union_of_two_slides(self):
        edges = slice_edges([Window(4, 2), Window(6, 3)], 12)
        assert list(edges) == [0, 2, 3, 4, 6, 8, 9, 10, 12]

    def test_redundant_coarse_slide_collapsed(self):
        fine = slice_edges([Window(4, 2)], 12)
        both = slice_edges([Window(4, 2), Window(8, 4)], 12)
        assert list(fine) == list(both)

    def test_horizon_always_included(self):
        edges = slice_edges([Window(7, 7)], 10)
        assert edges[-1] == 10

    def test_empty_window_set_rejected(self):
        with pytest.raises(ExecutionError):
            slice_edges([], 10)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ExecutionError):
            slice_edges([Window(4, 2)], 0)

    @pytest.mark.parametrize(
        "windows,horizon",
        [
            ([Window(4, 2), Window(6, 3)], 12),
            ([Window(4, 2), Window(6, 3)], 13),
            ([Window(10, 5)], 23),
            ([Window(10, 5), Window(14, 7)], 70),
        ],
    )
    def test_edge_count_inclusion_exclusion(self, windows, horizon):
        edges = slice_edges(windows, horizon)
        assert len(edges) == expected_edge_count(windows, horizon)


class TestAssignSlices:
    def test_assignment(self):
        edges = np.asarray([0, 5, 10, 15])
        ts = np.asarray([0, 4, 5, 9, 14])
        assert list(assign_slices(ts, edges)) == [0, 0, 1, 1, 2]


class TestWindowSliceSpans:
    def test_tumbling_aligned_spans(self):
        edges = slice_edges([Window(10, 5)], 30)
        lo, hi = window_slice_spans(Window(10, 5), edges, 5)
        assert list(hi - lo) == [2, 2, 2, 2, 2]

    def test_mixed_slides_variable_counts(self):
        windows = [Window(4, 2), Window(6, 3)]
        edges = slice_edges(windows, 24)
        lo, hi = window_slice_spans(Window(6, 3), edges, 7)
        assert np.all(hi > lo)

    def test_misaligned_window_rejected(self):
        edges = np.asarray([0, 5, 10])
        with pytest.raises(ExecutionError):
            window_slice_spans(Window(4, 2), edges, 2)

    def test_slices_per_instance(self):
        result = slices_per_instance([Window(10, 5), Window(20, 10)], 100)
        assert result[Window(10, 5)] == pytest.approx(2.0)
        assert result[Window(20, 10)] == pytest.approx(4.0)
