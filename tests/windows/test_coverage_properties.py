"""Property-based tests: theorems vs definitions, partial-order laws.

These are the DESIGN.md invariants 1-2: the closed-form tests of
Theorems 1, 3 and 4 must agree with brute-force enumeration straight
from Definitions 1/2/5 on arbitrary window pairs, and the coverage
relation must be a partial order (Theorem 2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.windows.coverage import (
    covered_by,
    covering_multiplier,
    partitioned_by,
)
from repro.windows.intervals import (
    brute_force_covered_by,
    brute_force_multiplier,
    brute_force_partitioned_by,
)
from repro.windows.window import Window

# Arbitrary small windows (no r % s == 0 restriction: the theorems hold
# for any valid window pair).
any_window = st.builds(
    lambda s, extra: Window(s + extra, s),
    st.integers(1, 10),
    st.integers(0, 20),
)


@given(consumer=any_window, provider=any_window)
@settings(max_examples=300)
def test_theorem_1_matches_definition_1(consumer, provider):
    assert covered_by(consumer, provider) == brute_force_covered_by(
        consumer, provider
    )


@given(consumer=any_window, provider=any_window)
@settings(max_examples=300)
def test_theorem_4_matches_definition_5(consumer, provider):
    assert partitioned_by(consumer, provider) == brute_force_partitioned_by(
        consumer, provider
    )


@given(consumer=any_window, provider=any_window)
@settings(max_examples=300)
def test_theorem_3_matches_enumeration(consumer, provider):
    if covered_by(consumer, provider):
        assert covering_multiplier(consumer, provider) == brute_force_multiplier(
            consumer, provider
        )


@given(window=any_window)
def test_coverage_is_reflexive(window):
    assert covered_by(window, window)
    assert partitioned_by(window, window)


@given(a=any_window, b=any_window)
@settings(max_examples=300)
def test_coverage_is_antisymmetric(a, b):
    if covered_by(a, b) and covered_by(b, a):
        assert a == b


@given(a=any_window, b=any_window, c=any_window)
@settings(max_examples=500)
def test_coverage_is_transitive(a, b, c):
    if covered_by(a, b) and covered_by(b, c):
        assert covered_by(a, c)


@given(a=any_window, b=any_window)
@settings(max_examples=300)
def test_partitioned_implies_covered(a, b):
    if partitioned_by(a, b):
        assert covered_by(a, b)


@given(consumer=any_window, provider=any_window)
@settings(max_examples=300)
def test_multiplier_positive_and_bounded(consumer, provider):
    if covered_by(consumer, provider) and consumer != provider:
        m = covering_multiplier(consumer, provider)
        assert m >= 2  # strictly larger window needs at least two pieces
        # Each covering interval contributes at least s2 fresh ticks.
        assert m <= consumer.range


@given(consumer=any_window)
@settings(max_examples=200)
def test_virtual_root_covers_everything(consumer):
    root = Window(1, 1)
    assert covered_by(consumer, root)
    assert partitioned_by(consumer, root)
