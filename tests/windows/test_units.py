"""Tests for time-unit handling."""

import pytest

from repro.errors import SqlSemanticError
from repro.windows.units import (
    canonical_unit,
    format_duration,
    parse_duration,
    to_ticks,
)


class TestCanonicalUnit:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("s", "second"),
            ("sec", "second"),
            ("Seconds", "second"),
            ("m", "minute"),
            ("MIN", "minute"),
            ("minutes", "minute"),
            ("h", "hour"),
            ("hours", "hour"),
            ("d", "day"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert canonical_unit(alias) == expected

    def test_unknown_unit_rejected(self):
        with pytest.raises(SqlSemanticError):
            canonical_unit("fortnight")

    def test_subsecond_rejected(self):
        with pytest.raises(SqlSemanticError):
            canonical_unit("microsecond")


class TestToTicks:
    def test_conversions(self):
        assert to_ticks(20, "minute") == 1200
        assert to_ticks(2, "hour") == 7200
        assert to_ticks(1, "day") == 86400
        assert to_ticks(30) == 30

    def test_non_positive_rejected(self):
        with pytest.raises(SqlSemanticError):
            to_ticks(0, "minute")
        with pytest.raises(SqlSemanticError):
            to_ticks(-5, "minute")

    def test_non_integer_rejected(self):
        with pytest.raises(SqlSemanticError):
            to_ticks(2.5, "minute")  # type: ignore[arg-type]
        with pytest.raises(SqlSemanticError):
            to_ticks(True, "minute")  # type: ignore[arg-type]


class TestParseDuration:
    def test_value_unit(self):
        assert parse_duration("20 min") == 1200
        assert parse_duration("1 hour") == 3600

    def test_bare_integer_is_seconds(self):
        assert parse_duration("45") == 45

    def test_garbage_rejected(self):
        for text in ("", "fast", "1 2 3", "x min"):
            with pytest.raises(SqlSemanticError):
                parse_duration(text)


class TestFormatDuration:
    def test_largest_even_unit(self):
        assert format_duration(1200) == "20 minute"
        assert format_duration(7200) == "2 hour"
        assert format_duration(86400) == "1 day"
        assert format_duration(90) == "90 second"

    def test_roundtrip(self):
        for ticks in (1, 60, 61, 3600, 5400, 86400):
            assert parse_duration(format_duration(ticks)) == ticks
