"""Tests for interval enumeration and the brute-force oracles."""

from itertools import islice

from repro.windows.intervals import (
    brute_force_covered_by,
    brute_force_multiplier,
    brute_force_partitioned_by,
    covering_set,
    intervals,
    iter_intervals,
)
from repro.windows.window import Window


class TestIntervalEnumeration:
    def test_intervals_prefix(self):
        assert intervals(Window(10, 2), 3) == [(0, 10), (2, 12), (4, 14)]

    def test_iter_intervals_is_infinite_prefix(self):
        w = Window(8, 4)
        assert list(islice(iter_intervals(w), 4)) == intervals(w, 4)


class TestCoveringSet:
    def test_example_2_first_interval(self):
        # [0, 10) of W1(10,2) covered by [0,8) and [2,10) of W2(8,2).
        cover = covering_set((0, 10), Window(8, 2))
        assert cover == [(0, 8), (2, 10)]

    def test_example_2_second_interval(self):
        cover = covering_set((2, 12), Window(8, 2))
        assert cover == [(2, 10), (4, 12)]

    def test_no_cover_when_interval_too_small(self):
        assert covering_set((0, 6), Window(8, 2)) is None

    def test_no_cover_when_misaligned(self):
        assert covering_set((1, 11), Window(8, 2)) is None

    def test_degenerate_interval(self):
        assert covering_set((5, 5), Window(2, 2)) is None

    def test_partition_case_is_disjoint(self):
        cover = covering_set((0, 40), Window(10, 10))
        assert cover == [(0, 10), (10, 20), (20, 30), (30, 40)]


class TestBruteForceOracles:
    def test_covered_matches_example(self):
        assert brute_force_covered_by(Window(10, 2), Window(8, 2))

    def test_not_covered(self):
        assert not brute_force_covered_by(Window(11, 2), Window(8, 2))
        assert not brute_force_covered_by(Window(30, 30), Window(20, 20))

    def test_partitioned_requires_tumbling_provider(self):
        assert brute_force_partitioned_by(Window(40, 40), Window(10, 10))
        assert not brute_force_partitioned_by(Window(10, 2), Window(8, 2))

    def test_multiplier_matches_theorem_3(self):
        assert brute_force_multiplier(Window(10, 2), Window(8, 2)) == 2
        assert brute_force_multiplier(Window(40, 40), Window(10, 10)) == 4

    def test_multiplier_none_when_uncovered(self):
        assert brute_force_multiplier(Window(30, 30), Window(20, 20)) is None

    def test_self_coverage(self):
        w = Window(6, 3)
        assert brute_force_covered_by(w, w)
        assert brute_force_multiplier(w, w) == 1
