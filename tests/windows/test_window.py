"""Tests for the window model (Section II-A)."""

import pytest

from repro.errors import CostModelError, InvalidWindowError
from repro.windows.window import (
    VIRTUAL_ROOT,
    Window,
    WindowSet,
    hopping,
    tumbling,
)


class TestWindowConstruction:
    def test_tumbling_window(self):
        w = Window(10, 10)
        assert w.is_tumbling
        assert not w.is_hopping

    def test_hopping_window(self):
        w = Window(10, 2)
        assert w.is_hopping
        assert not w.is_tumbling

    def test_slide_must_be_positive(self):
        with pytest.raises(InvalidWindowError):
            Window(10, 0)
        with pytest.raises(InvalidWindowError):
            Window(10, -1)

    def test_range_must_be_at_least_slide(self):
        with pytest.raises(InvalidWindowError):
            Window(5, 10)

    def test_range_must_be_integer(self):
        with pytest.raises(InvalidWindowError):
            Window(10.5, 2)  # type: ignore[arg-type]
        with pytest.raises(InvalidWindowError):
            Window(10, 2.5)  # type: ignore[arg-type]

    def test_bool_is_not_a_valid_duration(self):
        with pytest.raises(InvalidWindowError):
            Window(True, True)  # type: ignore[arg-type]

    def test_name_not_part_of_identity(self):
        assert Window(10, 2, name="a") == Window(10, 2, name="b")
        assert hash(Window(10, 2, name="a")) == hash(Window(10, 2, name="b"))

    def test_convenience_constructors(self):
        assert tumbling(20) == Window(20, 20)
        assert hopping(20, 10) == Window(20, 10)

    def test_ordering_by_range_then_slide(self):
        assert Window(10, 5) < Window(20, 5)
        assert Window(10, 2) < Window(10, 5)

    def test_virtual_root_is_unit_tumbling(self):
        assert VIRTUAL_ROOT.range == 1
        assert VIRTUAL_ROOT.slide == 1
        assert VIRTUAL_ROOT.is_tumbling


class TestIntervalRepresentation:
    def test_interval_formula(self):
        # Paper Section II-A-1: W(10, 2) has intervals [0,10), [2,12), ...
        w = Window(10, 2)
        assert w.interval(0) == (0, 10)
        assert w.interval(1) == (2, 12)
        assert w.interval(5) == (10, 20)

    def test_interval_index_must_be_non_negative(self):
        with pytest.raises(InvalidWindowError):
            Window(10, 2).interval(-1)

    def test_instance_range_counts_complete_instances(self):
        w = Window(10, 5)
        # Complete instances in [0, 30): [0,10), [5,15), ..., [20,30).
        assert list(w.instance_range(30)) == [0, 1, 2, 3, 4]

    def test_instance_range_short_horizon(self):
        assert len(Window(10, 5).instance_range(9)) == 0

    def test_instances_covering_tumbling(self):
        w = Window(10, 10)
        assert list(w.instances_covering(0)) == [0]
        assert list(w.instances_covering(9)) == [0]
        assert list(w.instances_covering(10)) == [1]

    def test_instances_covering_hopping(self):
        w = Window(10, 2)
        # ts=10 belongs to intervals [2,12), [4,14), ..., [10,20).
        assert list(w.instances_covering(10)) == [1, 2, 3, 4, 5]
        # ts=3 belongs to [0,10), [2,12).
        assert list(w.instances_covering(3)) == [0, 1]

    def test_instances_covering_matches_interval_membership(self):
        w = Window(12, 4)
        for ts in range(40):
            member = [
                m for m in range(20)
                if w.interval(m)[0] <= ts < w.interval(m)[1]
            ]
            assert list(w.instances_covering(ts)) == member

    def test_instances_covering_negative_time(self):
        assert len(Window(10, 2).instances_covering(-1)) == 0


class TestRecurrenceCount:
    def test_tumbling_equals_multiplicity(self):
        # Example 6 arithmetic: R = 120.
        assert Window(10, 10).recurrence_count(120) == 12
        assert Window(40, 40).recurrence_count(120) == 3

    def test_hopping_formula(self):
        # n = 1 + (R - r)/s.
        assert Window(10, 2).recurrence_count(20) == 6

    def test_matches_equation_1_when_range_divides_period(self):
        # n = 1 + (m - 1) * r / s with m = R / r.
        w = Window(12, 4)
        period = 48
        m = period // w.range
        assert w.recurrence_count(period) == 1 + (m - 1) * (w.range // w.slide)

    def test_period_shorter_than_range_rejected(self):
        with pytest.raises(CostModelError):
            Window(10, 2).recurrence_count(5)

    def test_non_integer_count_rejected(self):
        with pytest.raises(CostModelError):
            Window(10, 3).recurrence_count(12)  # (12-10) % 3 != 0

    def test_instances_per_event(self):
        assert Window(10, 2).instances_per_event == 5
        assert Window(10, 10).instances_per_event == 1

    def test_instances_per_event_requires_divisibility(self):
        with pytest.raises(CostModelError):
            Window(10, 3).instances_per_event


class TestWindowSet:
    def test_insertion_order_preserved(self):
        ws = WindowSet([Window(30, 30), Window(10, 10)])
        assert ws.windows == (Window(30, 30), Window(10, 10))

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidWindowError):
            WindowSet([Window(10, 10), Window(10, 10)])

    def test_duplicate_with_different_name_rejected(self):
        with pytest.raises(InvalidWindowError):
            WindowSet([Window(10, 10, name="a"), Window(10, 10, name="b")])

    def test_membership(self):
        ws = WindowSet([Window(10, 10)])
        assert Window(10, 10) in ws
        assert Window(20, 20) not in ws

    def test_equality_ignores_order(self):
        a = WindowSet([Window(10, 10), Window(20, 20)])
        b = WindowSet([Window(20, 20), Window(10, 10)])
        assert a == b
        assert hash(a) == hash(b)

    def test_hyper_period_is_lcm(self, example6_windows):
        assert example6_windows.hyper_period() == 120

    def test_hyper_period_empty_set_rejected(self):
        import pytest

        with pytest.raises(CostModelError):
            WindowSet().hyper_period()

    def test_sorted_copy(self):
        ws = WindowSet([Window(30, 30), Window(10, 10)])
        assert ws.sorted().windows == (Window(10, 10), Window(30, 30))

    def test_validate_for_cost_model(self):
        WindowSet([Window(10, 5)]).validate_for_cost_model()
        with pytest.raises(CostModelError):
            WindowSet([Window(10, 3)]).validate_for_cost_model()

    def test_ranges_and_slides(self):
        ws = WindowSet([Window(10, 5), Window(20, 4)])
        assert ws.ranges == (10, 20)
        assert ws.slides == (5, 4)

    def test_non_window_rejected(self):
        with pytest.raises(InvalidWindowError):
            WindowSet().add("not a window")  # type: ignore[arg-type]
