"""Tests for the coverage/partitioning theorems (Section II-B)."""

import pytest

from repro.errors import InvalidWindowError
from repro.windows.coverage import (
    CoverageSemantics,
    covered_by,
    covering_multiplier,
    partitioned_by,
    provider_instance_offsets,
    relates,
    strictly_relates,
)
from repro.windows.window import Window


class TestCoveredBy:
    def test_paper_example_2(self):
        # W1(r=10, s=2) is covered by W2(r=8, s=2).
        assert covered_by(Window(10, 2), Window(8, 2))

    def test_reflexive(self):
        w = Window(10, 2)
        assert covered_by(w, w)

    def test_requires_larger_range(self):
        assert not covered_by(Window(8, 2), Window(10, 2))

    def test_slide_must_be_multiple(self):
        assert not covered_by(Window(10, 3), Window(8, 2))
        assert covered_by(Window(10, 4), Window(8, 2))

    def test_range_difference_must_be_multiple_of_provider_slide(self):
        assert not covered_by(Window(11, 2), Window(8, 2))  # 11-8=3, s2=2

    def test_tumbling_divisibility(self):
        assert covered_by(Window(40, 40), Window(20, 20))
        assert covered_by(Window(30, 30), Window(10, 10))
        assert not covered_by(Window(30, 30), Window(20, 20))

    def test_mutually_prime_tumbling_not_covered(self):
        # The paper's limitation example: 15/17/19 share nothing.
        for a, b in [(17, 15), (19, 15), (19, 17)]:
            assert not covered_by(Window(a, a), Window(b, b))


class TestPartitionedBy:
    def test_paper_example_5(self):
        # W1(10,2), W2(8,2): covered but NOT partitioned (W2 not tumbling).
        assert covered_by(Window(10, 2), Window(8, 2))
        assert not partitioned_by(Window(10, 2), Window(8, 2))

    def test_provider_must_be_tumbling(self):
        assert partitioned_by(Window(20, 10), Window(5, 5))
        assert not partitioned_by(Window(20, 10), Window(10, 5))

    def test_range_must_be_multiple_of_provider_slide(self):
        assert not partitioned_by(Window(25, 25), Window(10, 10))
        assert partitioned_by(Window(30, 30), Window(10, 10))

    def test_consumer_slide_must_be_multiple(self):
        assert not partitioned_by(Window(20, 15), Window(10, 10))

    def test_partitioned_implies_covered(self):
        pairs = [
            (Window(40, 40), Window(10, 10)),
            (Window(20, 10), Window(5, 5)),
            (Window(30, 15), Window(3, 3)),
        ]
        for consumer, provider in pairs:
            assert partitioned_by(consumer, provider)
            assert covered_by(consumer, provider)

    def test_reflexive(self):
        w = Window(10, 5)
        assert partitioned_by(w, w)


class TestCoveringMultiplier:
    def test_theorem_3_formula(self):
        # M = 1 + (r1 - r2)/s2; Example 2 has M = 2.
        assert covering_multiplier(Window(10, 2), Window(8, 2)) == 2

    def test_tumbling_ratio(self):
        assert covering_multiplier(Window(40, 40), Window(10, 10)) == 4
        assert covering_multiplier(Window(40, 40), Window(20, 20)) == 2

    def test_self_multiplier_is_one(self):
        w = Window(10, 2)
        assert covering_multiplier(w, w) == 1

    def test_undefined_without_coverage(self):
        with pytest.raises(InvalidWindowError):
            covering_multiplier(Window(30, 30), Window(20, 20))

    def test_virtual_root_multiplier_equals_range(self):
        # M(W, S) = 1 + (r - 1)/1 = r.
        assert covering_multiplier(Window(40, 40), Window(1, 1)) == 40

    def test_provider_instance_offsets(self):
        offsets = provider_instance_offsets(Window(10, 2), Window(8, 2))
        assert offsets == [0, 2]
        offsets = provider_instance_offsets(Window(40, 40), Window(10, 10))
        assert offsets == [0, 10, 20, 30]


class TestSemanticsDispatch:
    def test_relation_lookup(self):
        assert CoverageSemantics.COVERED_BY.relation() is covered_by
        assert CoverageSemantics.PARTITIONED_BY.relation() is partitioned_by

    def test_relates(self):
        consumer, provider = Window(10, 2), Window(8, 2)
        assert relates(consumer, provider, CoverageSemantics.COVERED_BY)
        assert not relates(consumer, provider, CoverageSemantics.PARTITIONED_BY)

    def test_strictly_relates_excludes_self(self):
        w = Window(10, 2)
        assert not strictly_relates(w, w, CoverageSemantics.COVERED_BY)
        assert strictly_relates(
            Window(10, 2), Window(8, 2), CoverageSemantics.COVERED_BY
        )
