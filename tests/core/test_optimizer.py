"""Tests for the optimizer facade (Algorithms 1 + 3 end to end)."""

import pytest

from repro.aggregates.registry import MEDIAN, MIN, SUM
from repro.core.optimizer import (
    min_cost_wcg,
    min_cost_wcg_with_factors,
    optimize,
)
from repro.errors import CostModelError
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet

PART = CoverageSemantics.PARTITIONED_BY
COV = CoverageSemantics.COVERED_BY


class TestOptimizeFacade:
    def test_example_7_summary_numbers(self, example7_windows):
        result = optimize(example7_windows, MIN)
        assert result.baseline_cost == 360
        assert result.without_factors.total_cost == 246
        assert result.with_factors.total_cost == 150
        assert result.best is result.with_factors
        assert result.predicted_speedup == pytest.approx(360 / 150)

    def test_factor_windows_disabled(self, example7_windows):
        result = optimize(example7_windows, MIN, enable_factor_windows=False)
        assert result.with_factors is None
        assert result.best is result.without_factors
        assert result.best_cost == 246

    def test_holistic_aggregate_skips_rewriting(self, example7_windows):
        result = optimize(example7_windows, MEDIAN)
        assert result.semantics is None
        assert result.without_factors is None
        assert result.with_factors is None
        assert result.best is None
        assert result.best_cost == result.baseline_cost
        assert result.predicted_speedup == 1.0

    def test_min_uses_covered_by(self, example7_windows):
        assert optimize(example7_windows, MIN).semantics is COV

    def test_sum_uses_partitioned_by(self, example7_windows):
        assert optimize(example7_windows, SUM).semantics is PART

    def test_semantics_override_partitioned_for_min(self, example7_windows):
        result = optimize(
            example7_windows, MIN, semantics_override=PART
        )
        assert result.semantics is PART
        # Tumbling set: both semantics coincide, costs identical.
        assert result.best_cost == 150

    def test_semantics_override_covered_for_sum_rejected(
        self, example7_windows
    ):
        with pytest.raises(CostModelError):
            optimize(example7_windows, SUM, semantics_override=COV)

    def test_semantics_override_for_holistic_rejected(self, example7_windows):
        with pytest.raises(CostModelError):
            optimize(example7_windows, MEDIAN, semantics_override=PART)

    def test_empty_window_set_rejected(self):
        with pytest.raises(CostModelError):
            optimize(WindowSet(), MIN)

    def test_single_window_no_change(self):
        result = optimize(WindowSet([Window(20, 20)]), MIN)
        assert result.best_cost == result.baseline_cost

    def test_optimize_seconds_recorded(self, example7_windows):
        result = optimize(example7_windows, MIN)
        assert result.optimize_seconds > 0

    def test_summary_text(self, example7_windows):
        text = optimize(example7_windows, MIN).summary()
        assert "360" in text and "246" in text and "150" in text
        assert "2.40x" in text

    def test_event_rate_propagates(self, example7_windows):
        result = optimize(example7_windows, MIN, event_rate=5)
        assert result.baseline_cost == 5 * 360


class TestMinCostEntryPoints:
    def test_min_cost_accepts_plain_iterables(self):
        windows = [Window(20, 20), Window(40, 40)]
        result = min_cost_wcg(windows, PART)
        assert result.total_cost < 2 * 40  # some sharing happened

    def test_with_factors_accepts_plain_iterables(self):
        windows = [Window(20, 20), Window(30, 30), Window(40, 40)]
        result, _ = min_cost_wcg_with_factors(windows, PART)
        assert result.total_cost == 150

    def test_validates_cost_model_assumption(self):
        with pytest.raises(CostModelError):
            min_cost_wcg([Window(10, 3)], COV)

    def test_hopping_covered_by_sharing(self):
        # W(40,10) is covered by W(20,10): M = 1 + 20/10 = 3 < 40.
        windows = WindowSet([Window(20, 10), Window(40, 10)])
        result = min_cost_wcg(windows, COV)
        assert result.provider[Window(40, 10)] == Window(20, 10)

    def test_hopping_not_shared_under_partitioned(self):
        windows = WindowSet([Window(20, 10), Window(40, 10)])
        result = min_cost_wcg(windows, PART)
        assert result.provider[Window(40, 10)] is None
