"""Tests for the incremental workload diff (live sessions' optimizer).

The contract: every mutation re-optimizes only the touched (aggregate,
semantics) group; untouched groups keep their exact objects; and the
incremental path lands on the same plans and costs as the batch
optimizer given the same final queries.
"""

import pytest

from repro.aggregates.registry import MAX, MEDIAN, MIN, SUM
from repro.core.multiquery import (
    IncrementalWorkload,
    Query,
    optimize_workload,
)
from repro.errors import CostModelError
from repro.windows.window import Window, WindowSet


def _q(name, ranges, aggregate=MIN):
    return Query(
        name=name,
        windows=WindowSet([Window(r, r) for r in ranges]),
        aggregate=aggregate,
    )


class TestIncrementalVsBatch:
    def test_register_one_at_a_time_matches_batch(self):
        queries = [
            _q("a", [20, 40]),
            _q("b", [30, 60]),
            _q("c", [20, 40], SUM),
            _q("d", [30], MEDIAN),
        ]
        incremental = IncrementalWorkload()
        for query in queries:
            incremental.register(query)
        batch = optimize_workload(queries)
        assert len(incremental.groups) == len(batch.groups)
        for group in batch.groups:
            key = (group.aggregate.name, group.semantics)
            live = incremental.groups[key]
            assert set(live.combined) == set(group.combined)
            if group.gmin is not None:
                assert live.gmin.provider == group.gmin.provider
                assert live.gmin.total_cost == group.gmin.total_cost
                assert (
                    live.plan.provider_map() == group.plan.provider_map()
                )

    def test_deregister_matches_batch_of_remaining(self):
        incremental = IncrementalWorkload()
        for query in [_q("a", [20, 40]), _q("b", [10]), _q("c", [30])]:
            incremental.register(query)
        incremental.deregister("b")
        batch = optimize_workload([_q("a", [20, 40]), _q("c", [30])])
        live = incremental.groups[("min", batch.groups[0].semantics)]
        assert live.gmin.provider == batch.groups[0].gmin.provider

    def test_last_query_retires_group(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20]))
        delta = incremental.deregister("a")
        assert delta.retired
        assert delta.plan is None
        assert incremental.groups == {}


class TestGroupIsolation:
    def test_mutation_leaves_other_groups_untouched(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20, 40], MIN))
        incremental.register(_q("b", [30], SUM))
        min_group = incremental.groups[
            incremental.group_of("a")
        ]
        delta = incremental.register(_q("c", [60], SUM))
        assert delta.key[0] == "sum"
        # The MIN group object is identical — not rebuilt, not copied.
        assert incremental.groups[incremental.group_of("a")] is min_group

    def test_min_and_max_are_separate_groups(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20], MIN))
        incremental.register(_q("b", [20], MAX))
        assert len(incremental.groups) == 2


class TestDeltas:
    def test_noop_shape_change_is_flagged(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20, 40]))
        # Same windows again: combined set unchanged -> same providers.
        delta = incremental.register(_q("b", [20, 40]))
        assert not delta.provider_change

    def test_provider_change_flagged_on_new_window(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20, 40]))
        delta = incremental.register(_q("b", [10]))
        assert delta.provider_change

    def test_rate_change_returns_deltas_only_when_shape_flips(self):
        incremental = IncrementalWorkload()
        incremental.register(
            Query(
                "f",
                WindowSet([Window(6, 3), Window(8, 4)]),
                MIN,
            )
        )
        assert incremental.set_event_rate(1) == []  # unchanged rate
        deltas = incremental.set_event_rate(5)
        assert len(deltas) == 1
        # The W(2,1) factor window becomes profitable at rate 5.
        assert deltas[0].provider_change
        assert Window(2, 1) in deltas[0].plan.windows

    def test_generation_increments_per_mutation(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20]))
        incremental.register(_q("b", [30]))
        incremental.deregister("a")
        assert incremental.generation == 3


class TestRoutingStability:
    def test_routing_keys_stable_across_generations(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20, 40]))
        before = incremental.routing()
        incremental.register(_q("b", [10]))  # reroutes providers
        after = incremental.routing()
        for key, target in before.items():
            assert after[key] == target  # same operator window

    def test_routing_covers_all_queries(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20, 40]))
        incremental.register(_q("b", [30], SUM))
        routing = incremental.routing()
        assert routing[("a", Window(20, 20))] == Window(20, 20)
        assert routing[("b", Window(30, 30))] == Window(30, 30)


class TestValidation:
    def test_duplicate_name_rejected(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20]))
        with pytest.raises(CostModelError):
            incremental.register(_q("a", [30]))

    def test_unknown_deregister_rejected(self):
        with pytest.raises(CostModelError):
            IncrementalWorkload().deregister("ghost")

    def test_bad_rate_rejected(self):
        with pytest.raises(CostModelError):
            IncrementalWorkload(event_rate=0)
        with pytest.raises(CostModelError):
            IncrementalWorkload().set_event_rate(0)

    def test_as_batch_round_trip(self):
        incremental = IncrementalWorkload()
        incremental.register(_q("a", [20, 40]))
        incremental.register(_q("b", [30]))
        batch = incremental.as_batch()
        assert sum(len(g.queries) for g in batch.groups) == 2
