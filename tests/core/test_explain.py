"""Tests for the EXPLAIN optimizer trace."""

from repro.aggregates.registry import MEDIAN, MIN
from repro.core.explain import explain
from repro.core.optimizer import optimize
from repro.windows.window import Window, WindowSet


class TestExplain:
    def test_example_7_trace_numbers(self, example7_windows):
        text = explain(optimize(example7_windows, MIN))
        assert "baseline (independent) cost = 360" in text
        assert "[Algorithm 1] min-cost WCG — total 246" in text
        assert "[Algorithm 3] with factor windows — total 150" in text
        assert "predicted speedup 2.40x" in text

    def test_coverage_edges_listed(self, example7_windows):
        text = explain(optimize(example7_windows, MIN))
        assert "20 second -> 40 second" in text

    def test_factor_insertion_reported(self, example7_windows):
        text = explain(optimize(example7_windows, MIN))
        assert "inserted 10 second" in text
        assert "kept" in text

    def test_provider_options_enumerated(self, example7_windows):
        text = explain(optimize(example7_windows, MIN))
        # W40 considers raw and W20; the trace shows both costs.
        assert "raw events @" in text
        assert "from 20 second @ M = 2" in text

    def test_no_factor_case(self):
        windows = WindowSet([Window(15, 15), Window(17, 17)])
        text = explain(optimize(windows, MIN))
        assert "no beneficial factor window found" in text
        assert "coverage edges (0)" in text

    def test_holistic_fallback(self, example7_windows):
        text = explain(optimize(example7_windows, MEDIAN))
        assert "holistic" in text
        assert "original plan cost = 360" in text

    def test_hysteresis_free_decision_line(self, example7_windows):
        text = explain(optimize(example7_windows, MIN))
        assert "decision: plan with factor windows" in text

    def test_decision_without_factors(self):
        windows = WindowSet([Window(15, 15), Window(17, 17)])
        result = optimize(windows, MIN, enable_factor_windows=False)
        text = explain(result)
        assert "decision: plan without factor windows" in text

    def test_event_rate_shown(self, example7_windows):
        text = explain(optimize(example7_windows, MIN, event_rate=7))
        assert "η = 7" in text


class TestPhysicalPathSection:
    def test_engine_section_appended(self, example7_windows):
        result = optimize(example7_windows, MIN)
        text = explain(result, engine="columnar-panes")
        assert "physical paths (columnar-panes):" in text
        assert "panes[p=" in text

    def test_no_section_by_default(self, example7_windows):
        result = optimize(example7_windows, MIN)
        assert "physical paths" not in explain(result)

    def test_holistic_engine_section(self):
        result = optimize(WindowSet([Window(20, 20), Window(40, 40)]), MEDIAN)
        text = explain(result, engine="columnar")
        assert "physical paths" in text


class TestShardSection:
    def test_shard_section_appended(self, example7_windows):
        result = optimize(example7_windows, MIN)
        text = explain(result, shards=4)
        assert "shard fan-out (x4 key-hash shards):" in text
        assert "global partials combine" in text

    def test_holistic_shard_section(self):
        result = optimize(WindowSet([Window(20, 20), Window(40, 40)]), MEDIAN)
        text = explain(result, shards=2)
        assert "raw-forward" in text

    def test_no_section_by_default(self, example7_windows):
        assert "shard fan-out" not in explain(optimize(example7_windows, MIN))

    def test_live_session_contributes_load_counters(self, example7_windows):
        from repro.core.multiquery import Query
        from repro.runtime import ShardedSession

        session = ShardedSession(num_keys=4, num_shards=2, chunk_ticks=8)
        session.register(
            Query("q", WindowSet([Window(8, 4)]), MIN), scope="per_key"
        )
        for t in range(32):
            session.push(t, t % 4, float(t))
        result = optimize(example7_windows, MIN)
        text = explain(result, shards=session)
        session.close()
        assert "shard fan-out (x2 key-hash shards):" in text
        assert "load (decayed, per shard):" in text
        assert "shard 0: load" in text
        assert "shard 1: load" in text
