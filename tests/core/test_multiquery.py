"""Tests for multi-query workload optimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import MAX, MEDIAN, MIN, SUM
from repro.core.multiquery import Query, optimize_workload
from repro.errors import CostModelError
from repro.windows.window import Window, WindowSet


def _q(name, ranges, aggregate=MIN):
    return Query(
        name=name,
        windows=WindowSet([Window(r, r) for r in ranges]),
        aggregate=aggregate,
    )


class TestGrouping:
    def test_same_aggregate_shares_one_group(self):
        plan = optimize_workload([_q("a", [20, 40]), _q("b", [30, 60])])
        assert len(plan.groups) == 1
        assert len(plan.groups[0].queries) == 2

    def test_different_aggregates_split_groups(self):
        plan = optimize_workload(
            [_q("a", [20, 40], MIN), _q("b", [20, 40], SUM)]
        )
        assert len(plan.groups) == 2

    def test_min_and_max_do_not_share(self):
        # Same semantics but different functions: partials differ.
        plan = optimize_workload(
            [_q("a", [20, 40], MIN), _q("b", [20, 40], MAX)]
        )
        assert len(plan.groups) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(CostModelError):
            optimize_workload([_q("a", [20]), _q("a", [30])])

    def test_empty_workload_rejected(self):
        with pytest.raises(CostModelError):
            optimize_workload([])

    def test_empty_query_rejected(self):
        with pytest.raises(CostModelError):
            Query(name="a", windows=WindowSet(), aggregate=MIN)


class TestSharingGains:
    def test_duplicate_windows_collapse(self):
        # Two identical dashboards: the shared plan pays once.
        plan = optimize_workload([_q("a", [20, 40]), _q("b", [20, 40])])
        assert plan.sharing_gain >= 2.0 * 0.99

    def test_cross_query_coverage_exploited(self):
        # Query a has W(10); query b's W(20)/W(40) can read from it only
        # in the merged WCG.
        plan = optimize_workload([_q("a", [10]), _q("b", [20, 40])])
        assert plan.shared_cost < plan.independent_cost

    def test_never_worse_than_independent(self):
        plan = optimize_workload(
            [_q("a", [20, 30]), _q("b", [40, 60]), _q("c", [30, 90])]
        )
        assert plan.shared_cost <= plan.independent_cost
        assert plan.independent_cost <= plan.baseline_cost

    def test_holistic_group_keeps_baseline(self):
        plan = optimize_workload([_q("a", [20, 40], MEDIAN)])
        group = plan.groups[0]
        assert group.semantics is None
        assert group.plan is None
        assert plan.shared_cost == plan.baseline_cost

    def test_shared_plan_validates(self):
        from repro.plans.validate import validate_plan

        plan = optimize_workload([_q("a", [20, 40]), _q("b", [30, 60])])
        validate_plan(plan.groups[0].plan)

    def test_factor_windows_shared_across_queries(self):
        # Example 7 split across two queries: the factor window W(10,10)
        # serves both.
        plan = optimize_workload([_q("a", [20, 40]), _q("b", [30])])
        gmin = plan.groups[0].gmin
        assert Window(10, 10) in gmin.factor_windows
        assert plan.groups[0].shared_cost == 150

    def test_routing_covers_every_query_window(self):
        queries = [_q("a", [20, 40]), _q("b", [30, 40])]
        plan = optimize_workload(queries)
        routing = plan.groups[0].routing()
        for query in queries:
            for window in query.windows:
                assert routing[(query.name, window)] == window

    def test_summary_text(self):
        plan = optimize_workload([_q("a", [20, 40]), _q("b", [30, 60])])
        text = plan.summary()
        assert "gain from sharing" in text
        assert "2 in 1 shared group" in text


class TestSubsetFactorCandidates:
    def test_factor_serving_a_descendant_subset_is_found(self):
        # Regression (hypothesis-found): in {4} ∪ {20, 30}, W(20,20)
        # hangs under W(4,4) in the union WCG, so no target's direct
        # consumer set ever contains the pair {20, 30} — and Algorithm
        # 2's gcd-of-all-downstream candidate space misses W(10,10),
        # making the shared plan (135) worse than the per-query
        # independent plans (132).  Pairwise descendant generation must
        # recover it.
        plan = optimize_workload([_q("q0", [4]), _q("q1", [30, 20])])
        assert plan.shared_cost <= plan.independent_cost
        assert plan.shared_cost == 132


class TestWorkloadProperties:
    @given(
        splits=st.lists(
            st.lists(
                st.sampled_from([4, 6, 8, 10, 12, 20, 24, 30, 40, 60]),
                min_size=1,
                max_size=3,
                unique=True,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sharing_invariants(self, splits):
        queries = [
            _q(f"q{i}", ranges) for i, ranges in enumerate(splits)
        ]
        plan = optimize_workload(queries)
        assert plan.shared_cost <= plan.independent_cost
        assert plan.independent_cost <= plan.baseline_cost
        assert plan.sharing_gain >= 1.0

    @given(rate=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_rate_scales_baseline(self, rate):
        queries = [_q("a", [20, 40]), _q("b", [30])]
        plan = optimize_workload(queries, event_rate=rate)
        reference = optimize_workload(queries, event_rate=1)
        assert plan.baseline_cost == rate * reference.baseline_cost
