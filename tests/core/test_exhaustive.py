"""Tests for the exhaustive (Steiner-style) factor search."""

import pytest

from repro.core.exhaustive import (
    candidate_pool,
    exhaustive_min_cost,
    optimality_gap,
)
from repro.core.optimizer import min_cost_wcg, min_cost_wcg_with_factors
from repro.errors import CostModelError
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet

PART = CoverageSemantics.PARTITIONED_BY
COV = CoverageSemantics.COVERED_BY


class TestCandidatePool:
    def test_partitioned_pool_contains_divisor_windows(self, example7_windows):
        pool = candidate_pool(example7_windows, PART)
        assert Window(10, 10) in pool
        assert Window(5, 5) in pool
        assert Window(15, 15) in pool  # divides 30
        assert Window(20, 20) not in pool  # already a user window

    def test_pool_cap_enforced(self):
        windows = WindowSet([Window(2**10, 2**10)])
        with pytest.raises(CostModelError):
            candidate_pool(windows, PART, max_candidates=3)

    def test_covered_pool_for_hopping(self):
        windows = WindowSet([Window(40, 20), Window(80, 20)])
        pool = candidate_pool(windows, COV, max_candidates=256)
        assert all(w not in windows for w in pool)
        assert any(w.slide == 20 for w in pool)


class TestExhaustiveSearch:
    def test_example_7_finds_the_known_optimum(self, example7_windows):
        best = exhaustive_min_cost(example7_windows, PART, max_factors=2)
        # Algorithm 3 already reaches 150 here; the optimum can be lower
        # (e.g. chaining W(5,5) under W(10,10)) but never higher.
        assert best.total_cost <= 150

    def test_never_worse_than_heuristic(self, example7_windows):
        heuristic, _ = min_cost_wcg_with_factors(example7_windows, PART)
        optimal = exhaustive_min_cost(example7_windows, PART, max_factors=2)
        assert optimal.total_cost <= heuristic.total_cost

    def test_never_worse_than_no_factors(self):
        windows = WindowSet([Window(20, 20), Window(50, 50)])
        plain = min_cost_wcg(windows, PART)
        optimal = exhaustive_min_cost(windows, PART, max_factors=2)
        assert optimal.total_cost <= plain.total_cost

    def test_mutually_prime_stays_at_baseline(self):
        windows = WindowSet([Window(15, 15), Window(17, 17)])
        # Factors exist (divisors of 15), but for two nearly-unrelated
        # windows they may or may not help; the optimum is well-defined
        # and at most the baseline.
        optimal = exhaustive_min_cost(windows, PART, max_factors=1)
        assert optimal.total_cost <= optimal.baseline

    def test_result_is_forest(self, example7_windows):
        best = exhaustive_min_cost(example7_windows, PART, max_factors=2)
        assert best.graph.is_forest()


class TestOptimalityGap:
    def test_gap_zero_when_equal(self):
        assert optimality_gap(150, 150) == 0.0

    def test_gap_positive_when_heuristic_worse(self):
        assert optimality_gap(180, 150) == pytest.approx(0.2)

    def test_gap_guards_zero_optimal(self):
        assert optimality_gap(100, 0) == 0.0
