"""Tests for query rewriting (Appendix B): Gmin → logical plan."""

import pytest

from repro.aggregates.registry import MIN
from repro.core.optimizer import min_cost_wcg, min_cost_wcg_with_factors
from repro.core.rewrite import rewrite_plan
from repro.errors import PlanError
from repro.plans.nodes import MulticastNode, SourceNode, UnionNode
from repro.plans.validate import validate_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet

PART = CoverageSemantics.PARTITIONED_BY


@pytest.fixture
def example1_gmin():
    """Example 1's window set (tumbling 20/30/40) without factors."""
    return min_cost_wcg(
        WindowSet([Window(20, 20), Window(30, 30), Window(40, 40)]), PART
    )


@pytest.fixture
def example1_gmin_factors():
    result, _ = min_cost_wcg_with_factors(
        WindowSet([Window(20, 20), Window(30, 30), Window(40, 40)]), PART
    )
    return result


class TestRewriteStructure:
    def test_plan_validates(self, example1_gmin):
        plan = rewrite_plan(example1_gmin, MIN)
        validate_plan(plan)

    def test_figure_2b_shape(self, example1_gmin):
        # Rewritten plan without factors: W20 and W30 read raw, W40
        # reads W20's sub-aggregates (Figure 2(a) middle).
        plan = rewrite_plan(example1_gmin, MIN)
        providers = plan.provider_map()
        assert providers[Window(20, 20)] is None
        assert providers[Window(30, 30)] is None
        assert providers[Window(40, 40)] == Window(20, 20)

    def test_figure_2c_shape_with_factors(self, example1_gmin_factors):
        # With the factor window W(10,10): everything reads from it
        # (directly or through W20), and only W10 reads raw.
        plan = rewrite_plan(example1_gmin_factors, MIN)
        providers = plan.provider_map()
        assert providers[Window(10, 10)] is None
        assert providers[Window(20, 20)] == Window(10, 10)
        assert providers[Window(30, 30)] == Window(10, 10)
        assert providers[Window(40, 40)] == Window(20, 20)
        raw_readers = [w for w, p in providers.items() if p is None]
        assert raw_readers == [Window(10, 10)]

    def test_factor_not_in_union(self, example1_gmin_factors):
        plan = rewrite_plan(example1_gmin_factors, MIN)
        assert Window(10, 10) not in plan.user_windows
        assert set(plan.user_windows) == {
            Window(20, 20),
            Window(30, 30),
            Window(40, 40),
        }
        validate_plan(plan)

    def test_union_collects_all_user_windows(self, example1_gmin):
        plan = rewrite_plan(example1_gmin, MIN)
        assert isinstance(plan.root, UnionNode)
        assert len(plan.root.inputs) == 3

    def test_multicast_after_shared_providers(self, example1_gmin_factors):
        plan = rewrite_plan(example1_gmin_factors, MIN)
        multicasts = [
            n for n in plan.nodes() if isinstance(n, MulticastNode)
        ]
        # W10 feeds W20+W30 (fanout); W20 feeds W40 + union (fanout).
        assert len(multicasts) == 2

    def test_single_source(self, example1_gmin):
        plan = rewrite_plan(example1_gmin, MIN)
        sources = [n for n in plan.nodes() if isinstance(n, SourceNode)]
        assert len(sources) == 1

    def test_depths(self, example1_gmin_factors):
        plan = rewrite_plan(example1_gmin_factors, MIN)
        assert plan.depth_of(Window(10, 10)) == 0
        assert plan.depth_of(Window(20, 20)) == 1
        assert plan.depth_of(Window(30, 30)) == 1
        assert plan.depth_of(Window(40, 40)) == 2

    def test_description_propagates(self, example1_gmin):
        plan = rewrite_plan(example1_gmin, MIN, description="custom")
        assert plan.description == "custom"

    def test_source_name_propagates(self, example1_gmin):
        plan = rewrite_plan(example1_gmin, MIN, source_name="Sensors")
        assert plan.source.name == "Sensors"


class TestRewriteErrors:
    def test_non_forest_rejected(self, example1_gmin):
        # Sabotage: add a second provider edge to W40.
        example1_gmin.graph.add_edge(Window(30, 30), Window(40, 40))
        with pytest.raises(PlanError):
            rewrite_plan(example1_gmin, MIN)

    def test_single_window_plan(self):
        gmin = min_cost_wcg(WindowSet([Window(20, 20)]), PART)
        plan = rewrite_plan(gmin, MIN)
        validate_plan(plan)
        assert plan.user_windows == (Window(20, 20),)
