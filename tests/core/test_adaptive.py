"""Tests for rate-aware adaptive re-optimization."""

import pytest

from repro.aggregates.registry import MIN
from repro.core.adaptive import (
    AdaptiveOptimizer,
    RateEstimator,
    plan_cost_at_rate,
    simulate_adaptive,
)
from repro.core.optimizer import optimize
from repro.errors import CostModelError
from repro.windows.window import Window, WindowSet


@pytest.fixture
def windows(example7_windows):
    return example7_windows


class TestRateEstimator:
    def test_first_observation_initializes(self):
        estimator = RateEstimator(alpha=0.5)
        assert estimator.observe(100, 10) == pytest.approx(10.0)

    def test_ewma_smoothing(self):
        estimator = RateEstimator(alpha=0.5)
        estimator.observe(100, 10)  # 10
        estimator.observe(200, 10)  # 0.5*20 + 0.5*10 = 15
        assert estimator.rate == pytest.approx(15.0)

    def test_integer_rate_floor(self):
        estimator = RateEstimator(alpha=1.0)
        estimator.observe(1, 10)
        assert estimator.integer_rate == 1

    def test_validation(self):
        with pytest.raises(CostModelError):
            RateEstimator(alpha=0.0)
        estimator = RateEstimator()
        with pytest.raises(CostModelError):
            estimator.observe(10, 0)
        with pytest.raises(CostModelError):
            estimator.observe(-1, 10)
        with pytest.raises(CostModelError):
            estimator.rate  # no observations yet


class TestPlanCostAtRate:
    def test_raw_costs_scale_subaggregates_dont(self, windows):
        result = optimize(windows, MIN, event_rate=1)
        at_one = plan_cost_at_rate(result, 1)
        at_five = plan_cost_at_rate(result, 5)
        assert at_one == result.best_cost
        # Raw reads scale by 5; sub-aggregate reads stay: total less
        # than 5x but more than 1x.
        assert at_one < at_five < 5 * at_one

    def test_holistic_plan_scales_linearly(self, windows):
        from repro.aggregates.registry import MEDIAN

        result = optimize(windows, MEDIAN)
        assert plan_cost_at_rate(result, 3) == 3 * plan_cost_at_rate(result, 1)


class TestAdaptiveOptimizer:
    def test_first_observation_plans(self, windows):
        adaptive = AdaptiveOptimizer(windows, MIN)
        changed = adaptive.observe(120, 120, epoch=0)
        assert changed
        assert adaptive.current.best_cost > 0

    def test_hysteresis_suppresses_replanning(self, windows):
        adaptive = AdaptiveOptimizer(windows, MIN, hysteresis=0.5, alpha=1.0)
        adaptive.observe(1200, 120, epoch=0)  # rate 10
        assert not adaptive.observe(1320, 120, epoch=1)  # rate 11: +10%
        assert len(adaptive.switches) == 1

    def test_large_drift_replans(self, windows):
        adaptive = AdaptiveOptimizer(windows, MIN, hysteresis=0.25, alpha=1.0)
        adaptive.observe(120, 120, epoch=0)  # rate 1
        adaptive.observe(12_000, 120, epoch=1)  # rate 100
        assert adaptive.estimator.integer_rate == 100

    def test_plan_cache_reused(self, windows):
        adaptive = AdaptiveOptimizer(windows, MIN, hysteresis=0.0, alpha=1.0)
        adaptive.observe(120, 120, epoch=0)
        first = adaptive.current
        adaptive.observe(2400, 120, epoch=1)
        adaptive.observe(120, 120, epoch=2)
        # back to rate ~1; direct estimate since alpha=1
        assert adaptive.current is first

    def test_current_before_observe_raises(self, windows):
        with pytest.raises(CostModelError):
            AdaptiveOptimizer(windows, MIN).current


class TestSimulateAdaptive:
    def test_adaptive_between_oracle_and_static(self):
        # A window set whose best plan flips with the rate: the W(2,1)
        # factor window's benefit is 36η − 70, negative at η = 1 and
        # positive from η = 2 on.
        windows = WindowSet([Window(6, 3), Window(8, 4)])
        trace = [1] * 4 + [50] * 8 + [1] * 4
        outcome = simulate_adaptive(
            windows, MIN, trace, hysteresis=0.2, alpha=1.0
        )
        assert outcome.oracle_cost <= outcome.adaptive_cost
        # The static η=1 plan misses the factor window at high rate.
        assert outcome.adaptive_cost < outcome.static_cost

    def test_plan_flips_with_rate(self):
        windows = WindowSet([Window(6, 3), Window(8, 4)])
        low = optimize(windows, MIN, event_rate=1)
        high = optimize(windows, MIN, event_rate=5)
        assert not low.with_factors.factor_windows
        assert high.with_factors.factor_windows == (Window(2, 1),)
        assert high.best is high.with_factors

    def test_constant_trace_never_switches_twice(self, windows):
        outcome = simulate_adaptive(windows, MIN, [5] * 10, alpha=1.0)
        assert len(outcome.switches) == 1
        assert outcome.regret == pytest.approx(1.0)

    def test_savings_metric(self, windows):
        outcome = simulate_adaptive(
            windows, MIN, [1] * 3 + [80] * 10, hysteresis=0.2, alpha=1.0
        )
        assert 0.0 <= outcome.savings_vs_static <= 1.0

    def test_empty_trace_rejected(self, windows):
        with pytest.raises(CostModelError):
            simulate_adaptive(windows, MIN, [])

    def test_epoch_rates_recorded(self, windows):
        outcome = simulate_adaptive(windows, MIN, [2, 3, 4], alpha=1.0)
        assert outcome.epoch_rates == [2, 3, 4]
