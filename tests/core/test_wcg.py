"""Tests for window coverage graph construction (Sections II-C, IV-A)."""

import pytest

from repro.errors import InvalidWindowError
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import VIRTUAL_ROOT, Window, WindowSet
from repro.core.wcg import WindowCoverageGraph

PART = CoverageSemantics.PARTITIONED_BY
COV = CoverageSemantics.COVERED_BY


class TestConstruction:
    def test_example_6_initial_wcg(self, example6_windows):
        # Figure 6(a): edges 10->20, 10->30, 10->40, 20->40.
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        expected = {
            (Window(10, 10), Window(20, 20)),
            (Window(10, 10), Window(30, 30)),
            (Window(10, 10), Window(40, 40)),
            (Window(20, 20), Window(40, 40)),
        }
        assert set(graph.edges) == expected

    def test_no_self_edges(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        for provider, consumer in graph.edges:
            assert provider != consumer

    def test_mutually_prime_graph_has_no_edges(self):
        windows = WindowSet(
            [Window(15, 15), Window(17, 17), Window(19, 19)]
        )
        graph = WindowCoverageGraph.build(windows, PART, augment=False)
        assert not graph.edges

    def test_semantics_changes_edges(self):
        # W(8,2) covers W(10,2) under covered-by but not partitioned-by.
        windows = WindowSet([Window(8, 2), Window(10, 2)])
        covered = WindowCoverageGraph.build(windows, COV, augment=False)
        partitioned = WindowCoverageGraph.build(windows, PART, augment=False)
        assert covered.has_edge(Window(8, 2), Window(10, 2))
        assert not partitioned.has_edge(Window(8, 2), Window(10, 2))

    def test_duplicate_node_rejected(self):
        graph = WindowCoverageGraph(semantics=PART)
        graph.add_node(Window(10, 10))
        with pytest.raises(InvalidWindowError):
            graph.add_node(Window(10, 10))

    def test_edge_endpoints_must_exist(self):
        graph = WindowCoverageGraph(semantics=PART)
        graph.add_node(Window(10, 10))
        with pytest.raises(InvalidWindowError):
            graph.add_edge(Window(10, 10), Window(20, 20))


class TestAugmentation:
    def test_root_added_with_edges_to_orphans(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        assert graph.has_node(VIRTUAL_ROOT)
        # Figure 7(a): S feeds W2 and W3 (orphans); W4 is covered by W2.
        assert graph.has_edge(VIRTUAL_ROOT, Window(20, 20))
        assert graph.has_edge(VIRTUAL_ROOT, Window(30, 30))
        assert not graph.has_edge(VIRTUAL_ROOT, Window(40, 40))

    def test_augment_idempotent(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        before = set(graph.edges)
        graph.augment()
        assert set(graph.edges) == before

    def test_root_not_a_user_window(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        assert VIRTUAL_ROOT not in graph.user_windows
        assert VIRTUAL_ROOT in graph.nodes


class TestFactorInsertion:
    def test_insert_factor_connects_both_directions(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        factor = Window(10, 10)
        graph.insert_factor(factor)
        assert graph.is_factor(factor)
        # Factor is fed by the root and feeds all three user windows.
        assert graph.has_edge(VIRTUAL_ROOT, factor)
        for window in example7_windows:
            assert graph.has_edge(factor, window)

    def test_factor_windows_listed(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        graph.insert_factor(Window(10, 10))
        assert graph.factor_windows == (Window(10, 10),)
        assert set(graph.user_windows) == set(example7_windows)


class TestQueries:
    def test_degrees(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        assert graph.out_degree(Window(10, 10)) == 3
        assert graph.in_degree(Window(40, 40)) == 2

    def test_consumers_and_providers_sorted(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        assert graph.consumers_of(Window(10, 10)) == (
            Window(20, 20),
            Window(30, 30),
            Window(40, 40),
        )
        assert graph.providers_of(Window(40, 40)) == (
            Window(10, 10),
            Window(20, 20),
        )

    def test_copy_is_independent(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        clone = graph.copy()
        clone.remove_edge(Window(10, 10), Window(20, 20))
        assert graph.has_edge(Window(10, 10), Window(20, 20))
        assert not clone.has_edge(Window(10, 10), Window(20, 20))

    def test_remove_node(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        graph.remove_node(Window(10, 10))
        assert not graph.has_node(Window(10, 10))
        assert Window(10, 10) not in [p for p, _ in graph.edges]

    def test_is_forest(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART, augment=False)
        assert not graph.is_forest()  # W40 has two providers
        graph.remove_edge(Window(10, 10), Window(40, 40))
        assert graph.is_forest()

    def test_build_complexity_shape(self):
        # O(n^2) construction on a 30-window chain terminates quickly
        # and yields the expected n*(n-1)/2-ish divisibility edges.
        windows = WindowSet([Window(2**0 * 3, 2**0 * 3)])
        for i in range(1, 8):
            windows.add(Window(3 * 2**i, 3 * 2**i))
        graph = WindowCoverageGraph.build(windows, PART, augment=False)
        assert len(graph.edges) == 8 * 7 // 2
