"""Tests for factor windows (Section IV): Algorithms 2, 4, 5."""

import pytest

from repro.core.cost import CostModel
from repro.core.factor import (
    factor_benefit,
    find_best_factor_covered,
    find_best_factor_partitioned,
    generate_candidates_covered,
    generate_candidates_partitioned,
    is_beneficial_partitioned,
    prefer_candidate,
    prune_dependent_candidates,
)
from repro.core.optimizer import min_cost_wcg_with_factors
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import VIRTUAL_ROOT, Window, WindowSet

MODEL = CostModel()
PART = CoverageSemantics.PARTITIONED_BY


class TestBenefit:
    def test_example_7_benefit_of_w10(self, example7_windows):
        # Inserting W(10,10) under the root turns 246 into 150: δ = 96.
        downstream = [Window(20, 20), Window(30, 30)]
        benefit = factor_benefit(
            VIRTUAL_ROOT, downstream, Window(10, 10), 120, MODEL
        )
        # Without: 120 + 120 = 240.  With: c_f=120, 12 + 12 = 144... δ = 96.
        assert benefit == 96

    def test_negative_benefit_for_single_tumbling_downstream(self):
        # Algorithm 4 case K=1, k1=1: relaying helps nobody.
        downstream = [Window(40, 40)]
        benefit = factor_benefit(
            Window(10, 10), downstream, Window(20, 20), 120, MODEL
        )
        assert benefit <= 0

    def test_benefit_counts_factor_cost(self):
        # The factor's own computation cost must be charged.
        downstream = [Window(60, 60), Window(90, 90)]
        factor = Window(30, 30)
        period = 180
        without = sum(
            w.recurrence_count(period) * MODEL.raw_instance_cost(w)
            for w in downstream
        )
        with_f = (
            factor.recurrence_count(period) * MODEL.raw_instance_cost(factor)
            + Window(60, 60).recurrence_count(period) * 2
            + Window(90, 90).recurrence_count(period) * 3
        )
        assert factor_benefit(
            VIRTUAL_ROOT, downstream, factor, period, MODEL
        ) == without - with_f


class TestAlgorithm2CoveredBy:
    def test_candidate_constraints(self):
        target = VIRTUAL_ROOT
        downstream = [Window(20, 10), Window(40, 10)]
        candidates = generate_candidates_covered(target, downstream)
        for factor in candidates:
            assert 10 % factor.slide == 0  # sf divides gcd of slides
            assert factor.range % factor.slide == 0
            assert factor.range <= 20  # rf <= rmin
        assert Window(10, 10) in candidates

    def test_excludes_existing_windows(self):
        downstream = [Window(20, 10), Window(40, 10)]
        candidates = generate_candidates_covered(
            VIRTUAL_ROOT, downstream, exclude=[Window(10, 10)]
        )
        assert Window(10, 10) not in candidates

    def test_empty_downstream(self):
        assert generate_candidates_covered(VIRTUAL_ROOT, []) == []

    def test_best_factor_has_positive_benefit(self):
        downstream = [Window(40, 20), Window(60, 20), Window(80, 20)]
        best = find_best_factor_covered(
            VIRTUAL_ROOT, downstream, 240, MODEL
        )
        assert best is not None
        assert best.benefit > 0
        recomputed = factor_benefit(
            VIRTUAL_ROOT, downstream, best.window, 240, MODEL
        )
        assert recomputed == best.benefit

    def test_best_factor_is_argmax(self):
        downstream = [Window(40, 20), Window(60, 20), Window(80, 20)]
        best = find_best_factor_covered(VIRTUAL_ROOT, downstream, 240, MODEL)
        for factor in generate_candidates_covered(VIRTUAL_ROOT, downstream):
            assert (
                factor_benefit(VIRTUAL_ROOT, downstream, factor, 240, MODEL)
                <= best.benefit
            )

    def test_no_factor_when_nothing_beneficial(self):
        # A single tumbling downstream window: no factor can help.
        best = find_best_factor_covered(
            Window(10, 10), [Window(20, 20)], 120, MODEL
        )
        assert best is None


class TestAlgorithm4Beneficial:
    def test_k_geq_2_always_beneficial(self):
        assert is_beneficial_partitioned(
            Window(10, 10),
            VIRTUAL_ROOT,
            [Window(20, 20), Window(30, 30)],
            120,
        )

    def test_k_1_tumbling_never_beneficial(self):
        assert not is_beneficial_partitioned(
            Window(20, 20), Window(10, 10), [Window(40, 40)], 120
        )

    def test_k_1_hopping_with_large_k1_m1(self):
        # k1 = r/s = 4 >= 3 and m1 = R/r >= 3: beneficial.
        downstream = [Window(40, 10)]
        assert is_beneficial_partitioned(
            Window(20, 20), Window(10, 10), downstream, 120
        )

    def test_k_1_hopping_small_case_uses_ratio(self):
        # k1 = 2, m1 = 2: λ/(λ-1) = 1 + m1/((m1-1)(k1-1)) = 3.
        downstream = [Window(20, 10)]  # k1 = 2
        period = 40  # m1 = 2
        # rf/rW = 10 / 5 = 2 < 3: not beneficial.
        assert not is_beneficial_partitioned(
            Window(10, 10), Window(5, 5), downstream, period
        )
        # rf/rW = 10 / 2 = 5 >= 3: beneficial.
        assert is_beneficial_partitioned(
            Window(10, 10), Window(2, 2), downstream, period
        )

    def test_empty_downstream_not_beneficial(self):
        assert not is_beneficial_partitioned(
            Window(10, 10), VIRTUAL_ROOT, [], 120
        )


class TestAlgorithm5PartitionedBy:
    def test_example_8_candidates(self, example7_windows):
        # Candidates for the root: divisors of gcd(20,30,40)=10 → 2, 5, 10.
        candidates = generate_candidates_partitioned(
            VIRTUAL_ROOT, list(example7_windows)
        )
        assert set(candidates) == {
            Window(2, 2),
            Window(5, 5),
            Window(10, 10),
        }

    def test_example_8_pruning_keeps_w10(self):
        candidates = [Window(2, 2), Window(5, 5), Window(10, 10)]
        kept = prune_dependent_candidates(candidates)
        assert kept == [Window(10, 10)]

    def test_example_8_best_factor(self, example7_windows):
        best = find_best_factor_partitioned(
            VIRTUAL_ROOT, list(example7_windows), 120, MODEL
        )
        assert best is not None
        assert best.window == Window(10, 10)

    def test_gcd_equal_to_target_range_yields_nothing(self):
        # rd == rW → Algorithm 5 line 5 (no factor possible).
        assert (
            generate_candidates_partitioned(
                Window(10, 10), [Window(20, 10), Window(30, 30)]
            )
            == []
        )

    def test_candidates_are_tumbling(self, example7_windows):
        for factor in generate_candidates_partitioned(
            VIRTUAL_ROOT, list(example7_windows)
        ):
            assert factor.is_tumbling

    def test_hopping_downstream_requires_slide_divisibility(self):
        # W(20,10): a factor W(4,4) divides the range gcd but not the
        # slide → our strict superset check rejects it.
        downstream = [Window(20, 10), Window(40, 10)]
        candidates = generate_candidates_partitioned(VIRTUAL_ROOT, downstream)
        assert Window(4, 4) not in candidates
        assert Window(10, 10) in candidates


class TestTheorem9Comparator:
    def test_prefers_larger_range_for_many_downstreams(self, example7_windows):
        downstream = list(example7_windows)
        assert prefer_candidate(
            Window(10, 10), Window(5, 5), VIRTUAL_ROOT, downstream, 120
        )

    def test_comparator_agrees_with_explicit_costs(self):
        downstream = [Window(60, 60), Window(90, 90), Window(120, 120)]
        period = 360
        left, right = Window(30, 30), Window(15, 15)
        explicit_left = -factor_benefit(
            VIRTUAL_ROOT, downstream, left, period, MODEL
        )
        explicit_right = -factor_benefit(
            VIRTUAL_ROOT, downstream, right, period, MODEL
        )
        assert prefer_candidate(
            left, right, VIRTUAL_ROOT, downstream, period
        ) == (explicit_left <= explicit_right)


class TestAlgorithm3EndToEnd:
    def test_example_7_with_factors(self, example7_windows):
        result, inserted = min_cost_wcg_with_factors(example7_windows, PART)
        assert result.total_cost == 150
        assert result.factor_windows == (Window(10, 10),)
        assert any(c.window == Window(10, 10) for c in inserted)

    def test_factor_plan_never_worse_than_algorithm_1(self, example7_windows):
        from repro.core.optimizer import min_cost_wcg

        with_factors, _ = min_cost_wcg_with_factors(example7_windows, PART)
        without = min_cost_wcg(example7_windows, PART)
        assert with_factors.total_cost <= without.total_cost

    def test_no_factors_when_already_optimal(self, example6_windows):
        # Example 6 already contains W(10,10); nothing useful to add.
        result, _ = min_cost_wcg_with_factors(example6_windows, PART)
        assert result.total_cost == 150

    def test_covered_by_factor_for_hopping_set(self):
        windows = WindowSet([Window(40, 20), Window(60, 20), Window(80, 20)])
        result, inserted = min_cost_wcg_with_factors(
            windows, CoverageSemantics.COVERED_BY
        )
        assert inserted  # a factor window was found
        assert result.total_cost < 3 * 240  # beats baseline
