"""Tests for the cost model and Algorithm 1 (Section III-B).

The paper's Examples 6 and 7 are reproduced exactly: these are the
ground-truth numbers for the whole optimizer.
"""

import pytest

from repro.core.cost import CostModel, minimize_cost, prune_useless_factors
from repro.core.wcg import WindowCoverageGraph
from repro.errors import CostModelError
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import VIRTUAL_ROOT, Window, WindowSet

PART = CoverageSemantics.PARTITIONED_BY
COV = CoverageSemantics.COVERED_BY


class TestCostModelPrimitives:
    def test_hyper_period(self, example6_windows):
        assert CostModel().hyper_period(example6_windows) == 120

    def test_hyper_period_excludes_virtual_root(self, example7_windows):
        windows = list(example7_windows) + [VIRTUAL_ROOT]
        assert CostModel().hyper_period(windows) == 120

    def test_event_rate_validation(self):
        with pytest.raises(CostModelError):
            CostModel(event_rate=0)

    def test_raw_instance_cost_scales_with_rate(self):
        assert CostModel(event_rate=1).raw_instance_cost(Window(40, 40)) == 40
        assert CostModel(event_rate=3).raw_instance_cost(Window(40, 40)) == 120

    def test_instance_cost_with_provider_is_multiplier(self):
        model = CostModel()
        assert model.instance_cost(Window(40, 40), Window(10, 10)) == 4

    def test_instance_cost_from_root_is_raw(self):
        model = CostModel(event_rate=2)
        assert model.instance_cost(Window(40, 40), VIRTUAL_ROOT) == 80
        assert model.instance_cost(Window(40, 40), None) == 80

    def test_baseline_cost_example_6(self, example6_windows):
        # C = 4 * η * R = 480.
        assert CostModel().baseline_cost(example6_windows) == 480

    def test_baseline_cost_example_7(self, example7_windows):
        assert CostModel().baseline_cost(example7_windows) == 360

    def test_window_cost(self):
        model = CostModel()
        # Example 6: c4 = n4 * M(W4, W2) = 3 * 2 = 6 over R = 120.
        assert model.window_cost(Window(40, 40), Window(20, 20), 120) == 6


class TestAlgorithm1:
    def test_example_6_min_cost(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART)
        result = minimize_cost(graph, CostModel())
        # Figure 6(b): c1=120, c2=12, c3=12, c4=6 → total 150.
        assert result.costs[Window(10, 10)] == 120
        assert result.costs[Window(20, 20)] == 12
        assert result.costs[Window(30, 30)] == 12
        assert result.costs[Window(40, 40)] == 6
        assert result.total_cost == 150

    def test_example_6_providers(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART)
        result = minimize_cost(graph, CostModel())
        assert result.provider[Window(10, 10)] is None
        assert result.provider[Window(20, 20)] == Window(10, 10)
        assert result.provider[Window(30, 30)] == Window(10, 10)
        assert result.provider[Window(40, 40)] == Window(20, 20)

    def test_example_7_min_cost_without_factors(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        result = minimize_cost(graph, CostModel())
        # Figure 7(a): c2 = c3 = 120 (raw), c4 = 6 → total 246.
        assert result.costs[Window(20, 20)] == 120
        assert result.costs[Window(30, 30)] == 120
        assert result.costs[Window(40, 40)] == 6
        assert result.total_cost == 246

    def test_result_is_forest(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART)
        result = minimize_cost(graph, CostModel())
        assert result.graph.is_forest()

    def test_mutually_prime_keeps_baseline(self):
        windows = WindowSet([Window(15, 15), Window(17, 17), Window(19, 19)])
        graph = WindowCoverageGraph.build(windows, PART)
        result = minimize_cost(graph, CostModel())
        assert result.total_cost == result.baseline

    def test_predicted_speedup(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART)
        result = minimize_cost(graph, CostModel())
        assert result.predicted_speedup == pytest.approx(480 / 150)

    def test_reads_raw(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        result = minimize_cost(graph, CostModel())
        assert result.reads_raw(Window(20, 20))
        assert not result.reads_raw(Window(40, 40))

    def test_hopping_covered_by(self):
        # W(10,2) covered by W(8,2): instance cost drops from 10 to 2.
        windows = WindowSet([Window(8, 2), Window(10, 2)])
        graph = WindowCoverageGraph.build(windows, COV)
        result = minimize_cost(graph, CostModel())
        period = result.period  # lcm(8,10) = 40
        assert period == 40
        n_10 = Window(10, 2).recurrence_count(period)
        assert result.costs[Window(10, 2)] == n_10 * 2

    def test_event_rate_scales_raw_costs_only(self, example6_windows):
        graph = WindowCoverageGraph.build(example6_windows, PART)
        result = minimize_cost(graph, CostModel(event_rate=10))
        # W10 reads raw: 10x cost; consumers read sub-aggregates: same.
        assert result.costs[Window(10, 10)] == 1200
        assert result.costs[Window(20, 20)] == 12

    def test_empty_window_set_rejected(self):
        graph = WindowCoverageGraph(semantics=PART)
        with pytest.raises(CostModelError):
            minimize_cost(graph, CostModel())


class TestFactorPruning:
    def test_unused_factor_removed(self, example7_windows):
        graph = WindowCoverageGraph.build(example7_windows, PART)
        graph.insert_factor(Window(10, 10))
        # W(12,12) covers nothing in {20,30,40}: it never gains a consumer.
        graph.insert_factor(Window(12, 12))
        result = minimize_cost(graph, CostModel())
        result = prune_useless_factors(result)
        assert Window(12, 12) not in result.graph.nodes
        assert Window(10, 10) in result.graph.nodes

    def test_chained_unused_factors_removed(self):
        windows = WindowSet([Window(40, 40)])
        graph = WindowCoverageGraph.build(windows, PART)
        graph.insert_factor(Window(20, 20))
        # Force W40 to read raw so the factor chain is useless.
        result = minimize_cost(graph, CostModel())
        for factor in list(result.graph.factor_windows):
            for consumer in list(result.graph.consumers_of(factor)):
                result.graph.remove_edge(factor, consumer)
        result = prune_useless_factors(result)
        assert not result.graph.factor_windows
