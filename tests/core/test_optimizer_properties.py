"""Property-based tests on the optimizer (DESIGN.md invariants 3-4, 7-8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostModel
from repro.core.factor import factor_benefit
from repro.core.optimizer import (
    min_cost_wcg,
    min_cost_wcg_with_factors,
    optimize,
)
from repro.aggregates.registry import MIN, SUM
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import VIRTUAL_ROOT, Window, WindowSet

PART = CoverageSemantics.PARTITIONED_BY
COV = CoverageSemantics.COVERED_BY

# Window sets with modest lcm: ranges are multiples of a few seeds.
tumbling_sets = st.lists(
    st.sampled_from([2, 4, 5, 6, 8, 10, 12, 15, 16, 20, 24, 30, 40, 60]),
    min_size=2,
    max_size=5,
    unique=True,
).map(lambda ranges: WindowSet([Window(r, r) for r in ranges]))

hopping_sets = st.lists(
    st.tuples(st.sampled_from([2, 4, 5, 6, 10, 12]), st.integers(2, 4)),
    min_size=2,
    max_size=4,
    unique_by=lambda t: t,
).map(
    lambda pairs: WindowSet(
        _dedupe(Window(k * s, s) for s, k in pairs)
    )
)


def _dedupe(windows):
    seen, out = set(), []
    for w in windows:
        if w not in seen:
            seen.add(w)
            out.append(w)
    return out


@given(windows=tumbling_sets)
@settings(max_examples=60, deadline=None)
def test_algorithm_1_never_exceeds_baseline(windows):
    result = min_cost_wcg(windows, PART)
    assert result.total_cost <= result.baseline


@given(windows=tumbling_sets)
@settings(max_examples=60, deadline=None)
def test_algorithm_3_never_exceeds_algorithm_1(windows):
    plain = min_cost_wcg(windows, PART)
    factored, _ = min_cost_wcg_with_factors(windows, PART)
    assert factored.total_cost <= plain.total_cost


@given(windows=hopping_sets)
@settings(max_examples=60, deadline=None)
def test_covered_by_improvements_hold_for_hopping(windows):
    plain = min_cost_wcg(windows, COV)
    factored, _ = min_cost_wcg_with_factors(windows, COV)
    assert plain.total_cost <= plain.baseline
    assert factored.total_cost <= plain.total_cost


@given(windows=tumbling_sets)
@settings(max_examples=60, deadline=None)
def test_gmin_is_always_a_forest(windows):
    result = min_cost_wcg(windows, PART)
    assert result.graph.is_forest()
    factored, _ = min_cost_wcg_with_factors(windows, PART)
    assert factored.graph.is_forest()


@given(windows=tumbling_sets)
@settings(max_examples=40, deadline=None)
def test_inserted_factors_have_positive_benefit(windows):
    _, inserted = min_cost_wcg_with_factors(windows, PART)
    for candidate in inserted:
        assert candidate.benefit > 0


@given(windows=hopping_sets)
@settings(max_examples=40, deadline=None)
def test_inserted_factor_benefit_matches_recomputation(windows):
    model = CostModel()
    period = model.hyper_period(windows)
    from repro.core.wcg import WindowCoverageGraph

    graph = WindowCoverageGraph.build(windows, COV)
    _, inserted = min_cost_wcg_with_factors(windows, COV)
    for candidate in inserted:
        # Benefit was computed against *some* Figure-9 configuration;
        # it must at least be a real positive integer.
        assert candidate.benefit > 0
        assert isinstance(candidate.benefit, int)


@given(windows=tumbling_sets)
@settings(max_examples=40, deadline=None)
def test_kept_factor_windows_have_consumers(windows):
    result, _ = min_cost_wcg_with_factors(windows, PART)
    for factor in result.factor_windows:
        assert result.graph.out_degree(factor) > 0


@given(windows=tumbling_sets, rate=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_event_rate_scales_baseline_linearly(windows, rate):
    base = optimize(windows, SUM, event_rate=1).baseline_cost
    scaled = optimize(windows, SUM, event_rate=rate).baseline_cost
    assert scaled == rate * base


@given(windows=tumbling_sets)
@settings(max_examples=40, deadline=None)
def test_min_and_sum_agree_on_tumbling_sets(windows):
    """Covered-by and partitioned-by coincide on tumbling windows, so
    MIN (covered-by) and SUM (partitioned-by) must optimize alike."""
    via_min = optimize(windows, MIN)
    via_sum = optimize(windows, SUM)
    assert via_min.best_cost == via_sum.best_cost
