"""Record/replay round trips and capture integrity.

A recorded chaos run — seeded worker kills plus slot migration
mid-stream — must replay bit-identically from its ``.rstream``
capture: same digest, same logical counters, on any backend.  And a
damaged capture must refuse loudly; a partial replay would silently
bless wrong results.
"""

import pytest

from repro.errors import ExecutionError
from repro.scenarios import (
    RSTREAM_MAGIC,
    ScenarioRunner,
    load_scenario,
    read_rstream,
    replay_capture,
)

CHAOS_TEXT = """
name: rr_chaos
stream:
  events: 3000
  keys: 48
  seed: 9
  skew: 1.1
  rate: 4
  out_of_order:
    lateness: 24
    seed: 3
workload:
  queries:
    - name: s
      aggregate: sum
      windows: ["200/40"]
    - name: late
      aggregate: max
      windows: ["150"]
      register_at: 300
runtime:
  shards: 3
  backend: process
  slots: 24
  rebalance_every: 700
  worker_recovery: true
chaos:
  faults:
    - kind: kill
      slot: 1
      at_watermark: 200
    - kind: kill_mid_op
      slot: 5
      op: rebalance
"""


@pytest.fixture(scope="module")
def chaos_capture(tmp_path_factory):
    """Record the chaos scenario once; reuse the capture + report."""
    path = tmp_path_factory.mktemp("rstream") / "rr_chaos.rstream"
    runner = ScenarioRunner(load_scenario(CHAOS_TEXT))
    report = runner.run(record=path)
    return path, report


@pytest.mark.scenarios
@pytest.mark.chaos
class TestRecordReplay:
    def test_recording_run_really_faulted(self, chaos_capture):
        _, report = chaos_capture
        assert report.faults_fired >= 1
        assert report.worker_recoveries >= 1
        assert report.slots_moved >= 1

    @pytest.mark.parametrize(
        "backend,shards",
        [("serial", 1), ("serial", 3), ("process", 3), ("shm", 2)],
    )
    def test_replay_bit_identical(self, chaos_capture, backend, shards):
        path, recorded = chaos_capture
        replayed = replay_capture(path, backend=backend, shards=shards)
        # verify=True already asserted outcome identity inside; check
        # the full logical surface explicitly anyway.
        assert replayed.outcome() == recorded.outcome()

    def test_capture_carries_the_outcome(self, chaos_capture):
        path, recorded = chaos_capture
        capture = read_rstream(path)
        assert capture.outcome == recorded.outcome()
        assert capture.meta["chaos"] is True
        assert capture.num_events == recorded.events
        kinds = {kind for _, kind, _ in capture.ops}
        assert kinds == {"register", "rebalance"}

    def test_divergence_is_loud(self, chaos_capture, tmp_path):
        """A capture whose recorded outcome disagrees with what the
        stream actually produces must fail replay, not shrug."""
        from repro.scenarios.rstream import write_rstream

        path, _ = chaos_capture
        capture = read_rstream(path)
        capture.outcome["total_pairs"] += 1
        forged = tmp_path / "forged.rstream"
        write_rstream(capture, forged)
        with pytest.raises(ExecutionError, match="diverged"):
            replay_capture(forged)


@pytest.mark.scenarios
class TestCaptureIntegrity:
    def test_flipped_body_byte_is_rejected(self, chaos_capture, tmp_path):
        path, _ = chaos_capture
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        bad = tmp_path / "flipped.rstream"
        bad.write_bytes(bytes(blob))
        with pytest.raises(ExecutionError, match="checksum mismatch"):
            read_rstream(bad)

    def test_truncation_is_rejected(self, chaos_capture, tmp_path):
        path, _ = chaos_capture
        blob = path.read_bytes()
        bad = tmp_path / "truncated.rstream"
        bad.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ExecutionError):
            read_rstream(bad)

    def test_foreign_file_is_rejected(self, tmp_path):
        bad = tmp_path / "notes.rstream"
        bad.write_bytes(b"this is not a capture")
        with pytest.raises(ExecutionError, match="not a factor-windows"):
            read_rstream(bad)

    def test_wrong_version_is_rejected(self, chaos_capture, tmp_path):
        import hashlib
        import struct

        path, _ = chaos_capture
        blob = bytearray(path.read_bytes())
        struct.pack_into("<H", blob, len(RSTREAM_MAGIC), 99)
        bad = tmp_path / "future.rstream"
        bad.write_bytes(bytes(blob))
        with pytest.raises(ExecutionError, match="v99 is not supported"):
            read_rstream(bad)
        # and a re-checksummed v99 body still refuses on version
        body = bytes(blob[len(RSTREAM_MAGIC) + 2 + 32 :])
        blob[len(RSTREAM_MAGIC) + 2 : len(RSTREAM_MAGIC) + 2 + 32] = (
            hashlib.sha256(body).digest()
        )
        bad.write_bytes(bytes(blob))
        with pytest.raises(ExecutionError, match="v99 is not supported"):
            read_rstream(bad)

    def test_never_partial_replays(self, chaos_capture, tmp_path):
        """A corrupt capture must not produce a report at all."""
        path, _ = chaos_capture
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        bad = tmp_path / "torn.rstream"
        bad.write_bytes(bytes(blob))
        with pytest.raises(ExecutionError):
            replay_capture(bad)
