"""The committed scenario library is a conformance suite: every file
under ``scenarios/`` must reproduce its committed digest — on the
runtime shape it declares *and* on the serial-sync oracle shape.  A
digest drift here means either a scenario file was edited without
recomputing its outcome, or the engine's results moved (invariant 9).
"""

from pathlib import Path

import pytest

from repro.scenarios import ScenarioRunner, load_scenario

LIBRARY = Path(__file__).resolve().parents[2] / "scenarios"
SCENARIOS = sorted(LIBRARY.glob("*.yaml"))


def _runner(path):
    return ScenarioRunner(load_scenario(path))


@pytest.mark.scenarios
class TestCommittedLibrary:
    def test_library_present(self):
        names = {p.stem for p in SCENARIOS}
        assert {
            "rtgs_payments",
            "iot_burst",
            "flash_crowd",
            "chaos_recovery",
        } <= names

    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_every_scenario_commits_a_digest(self, path):
        scenario = load_scenario(path)
        assert scenario.expect.digest, (
            f"{path.name} has no committed expect.digest — run "
            f"'factor-windows session run {path}' and commit its outcome"
        )

    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_declared_runtime_matches_committed_outcome(self, path):
        _runner(path).run(verify=True)

    @pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
    def test_serial_oracle_matches_committed_outcome(self, path):
        _runner(path).run(backend="serial", shards=1, verify=True)
