"""Property: any scenario the schema admits runs bit-identically on
every session shape.

Hypothesis builds random scenarios (skew, rate schedule, disorder,
mid-stream registration/deregistration, rebalance cadence); each one
is compiled once, hand-driven through a bare serial-sync
:class:`QuerySession` **without the runner** (the oracle — a second,
independent implementation of the op schedule), and then executed by
the runner on {serial, process, shm} x {sync, async}.  Digest and
logical counters must match the oracle everywhere (invariants 9-11).

Examples are deliberately small (a few hundred events) — the point is
the combinatorics of shapes, not volume; ``REPRO_TEST_SEED`` pins the
whole run via the ``repro`` hypothesis profile.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import get_aggregate
from repro.core.multiquery import Query
from repro.runtime import QuerySession
from repro.scenarios import (
    QuerySpec,
    ScenarioRunner,
    compile_scenario,
    parse_scenario,
    results_digest,
)

#: The conformance matrix every scenario must agree across.
MATRIX = (
    ("serial", 4, False),
    ("process", 2, False),
    ("shm", 2, False),
    ("process", 2, True),
)

WINDOW_POOL = ("60/20", "80/40", "100", "120/30")
AGGREGATE_POOL = ("sum", "count", "max", "min")


@st.composite
def scenarios(draw):
    events = draw(st.integers(min_value=120, max_value=400))
    lateness = draw(st.sampled_from((0, 8, 24)))
    queries = [
        {
            "name": "q0",
            "aggregate": draw(st.sampled_from(AGGREGATE_POOL)),
            "windows": [draw(st.sampled_from(WINDOW_POOL))],
        }
    ]
    if draw(st.booleans()):
        queries.append(
            {
                "name": "q1",
                "aggregate": draw(st.sampled_from(AGGREGATE_POOL)),
                "windows": [draw(st.sampled_from(WINDOW_POOL))],
                "scope": draw(st.sampled_from(("per_key", "global"))),
                "register_at": draw(st.integers(0, events // 4)),
            }
        )
    if draw(st.booleans()):
        queries.append(
            {
                "name": "q2",
                "aggregate": "sum",
                "windows": ["90/30"],
                "register_at": 5,
                "deregister_at": draw(st.integers(20, events // 2)),
            }
        )
    data = {
        "name": "prop",
        "stream": {
            "events": events,
            "keys": draw(st.integers(2, 24)),
            "seed": draw(st.integers(0, 2**20)),
            "skew": draw(st.sampled_from((0.0, 0.7, 1.5))),
            "rate": draw(st.integers(1, 6)),
            "out_of_order": {
                "lateness": lateness,
                "seed": draw(st.integers(0, 2**20)),
            },
            "values": {
                "distribution": draw(
                    st.sampled_from(("gaussian", "uniform", "exponential"))
                ),
                "round": True,
            },
        },
        "workload": {"queries": queries},
        "runtime": {
            "shards": draw(st.integers(2, 4)),
            "slots": 16,
            "rebalance_every": draw(st.sampled_from((0, 50, 128))),
        },
    }
    return parse_scenario(data)


def oracle_run(compiled):
    """Drive the compiled stream through a bare serial-sync
    QuerySession by hand — no runner code on this path."""
    session = QuerySession(
        num_keys=compiled.num_keys,
        max_lateness=compiled.max_lateness,
        hysteresis=None,
    )
    try:
        schedule = list(compiled.ops) + [(compiled.num_events, None, None)]
        cursor = 0
        for index, kind, payload in schedule:
            index = min(index, compiled.num_events)
            for i in range(cursor, index):
                session.push(
                    int(compiled.timestamps[i]),
                    int(compiled.keys[i]),
                    float(compiled.values[i]),
                )
            cursor = max(cursor, index)
            if kind == "register":
                spec = QuerySpec(**dict(payload))
                session.register(
                    Query(
                        name=spec.name,
                        windows=spec.window_set(),
                        aggregate=get_aggregate(spec.aggregate),
                    ),
                    scope=spec.scope,
                )
            elif kind == "deregister":
                session.deregister(str(payload))
            # rebalance is a no-op on a single-core oracle
        results = session.finish(horizon=compiled.horizon)
        reorder = session.reorder_stats
        stats = session.stats()
    finally:
        session.close()
    return {
        "digest": results_digest(results),
        "accepted": reorder.accepted,
        "late_dropped": reorder.late_dropped,
        "total_pairs": stats.total_pairs,
    }


@pytest.mark.scenarios
@settings(max_examples=5, deadline=None)
@given(scenario=scenarios())
def test_random_scenarios_match_serial_sync_oracle(scenario):
    runner = ScenarioRunner(scenario)
    expected = oracle_run(compile_scenario(scenario))
    for backend, shards, async_ingest in MATRIX:
        report = runner.run(
            backend=backend, shards=shards, async_ingest=async_ingest
        )
        got = {
            "digest": report.digest,
            "accepted": report.accepted,
            "late_dropped": report.late_dropped,
            "total_pairs": report.total_pairs,
        }
        assert got == expected, (
            f"{backend} x{shards}{'/async' if async_ingest else ''} "
            f"diverged from the hand-driven serial-sync oracle"
        )
