"""Golden-file parser tests: one fixture per error class, exact
messages pinned — a schema error is an API surface, and a reworded or
vaguer message is a regression.  Plus the serialization contract:
``parse -> dump -> parse`` is the identity on every committed
scenario.
"""

from pathlib import Path

import pytest

from repro.errors import ExecutionError
from repro.scenarios import (
    Scenario,
    dump_scenario,
    load_scenario,
    parse_scenario,
    parse_window,
)

FIXTURES = Path(__file__).parent / "fixtures"
LIBRARY = Path(__file__).resolve().parents[2] / "scenarios"

#: fixture stem -> the exact message its load must die with.
GOLDEN_ERRORS = {
    "unknown_key": (
        "unknown stream key(s) ['event']; expected a subset of "
        "['events', 'keys', 'out_of_order', 'profile', 'rate', "
        "'rate_schedule', 'seed', 'skew', 'values']"
    ),
    "bad_rate_schedule": (
        "bad rate schedule: the last phase must end at until: 1.0, "
        "got 0.5"
    ),
    "negative_skew": (
        "stream skew must be >= 0, got -1 (a negative Zipf exponent "
        "is not a distribution)"
    ),
    "dangling_query": (
        "expect.queries references unknown query(s) ['missing']; the "
        "workload defines ['q'] (dangling query reference)"
    ),
    "bad_window": (
        "bad window literal '10/0': expected 'range/slide' or "
        "'range' with integer ticks"
    ),
    "chaos_on_serial": (
        "a chaos schedule needs a worker backend (runtime.backend: "
        "process or shm) — the serial backend has no workers to fault"
    ),
    "unknown_section": (
        "unknown scenario section(s) ['streams']; expected a subset "
        "of ['chaos', 'description', 'expect', 'name', 'runtime', "
        "'stream', 'workload']"
    ),
}


class TestGoldenErrors:
    @pytest.mark.parametrize("stem", sorted(GOLDEN_ERRORS))
    def test_exact_message(self, stem):
        path = FIXTURES / f"{stem}.yaml"
        with pytest.raises(ExecutionError) as excinfo:
            load_scenario(path)
        assert str(excinfo.value) == GOLDEN_ERRORS[stem]

    def test_every_fixture_has_a_golden_message(self):
        stems = {p.stem for p in FIXTURES.glob("*.yaml")}
        assert stems == set(GOLDEN_ERRORS)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "path", sorted(LIBRARY.glob("*.yaml")), ids=lambda p: p.stem
    )
    def test_parse_dump_parse_is_identity(self, path):
        first = load_scenario(path)
        second = load_scenario(dump_scenario(first))
        assert second == first

    def test_library_is_nonempty(self):
        assert len(list(LIBRARY.glob("*.yaml"))) >= 4


class TestSchemaBasics:
    def test_windows_accept_flow_and_block_sequences(self):
        flow = load_scenario(
            "name: a\nworkload:\n  queries:\n"
            "    - name: q\n      windows: ['300/50', '120']\n"
        )
        block = load_scenario(
            "name: a\nworkload:\n  queries:\n"
            "    - name: q\n      windows:\n"
            "        - 300/50\n        - '120'\n"
        )
        assert flow == block

    def test_parse_window(self):
        hopping = parse_window("300/50")
        assert (hopping.range, hopping.slide) == (300, 50)
        tumbling = parse_window("120")
        assert (tumbling.range, tumbling.slide) == (120, 120)

    def test_defaults_fill_in(self):
        scenario = load_scenario(
            "name: tiny\nworkload:\n  queries:\n    - name: q\n"
        )
        assert isinstance(scenario, Scenario)
        assert scenario.stream.profile == "synthetic"
        assert scenario.runtime.shards == 1
        assert scenario.chaos is None
        assert scenario.expect.digest is None

    def test_duplicate_query_names_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate"):
            load_scenario(
                "name: a\nworkload:\n  queries:\n"
                "    - name: q\n    - name: q\n"
            )

    def test_domain_profile_rejects_shape_knobs(self):
        with pytest.raises(ExecutionError, match="generates its own shape"):
            load_scenario(
                "name: a\nstream:\n  profile: flash_crowd\n  skew: 2.0\n"
                "workload:\n  queries:\n    - name: q\n"
            )

    def test_dict_source_and_json_fast_path(self):
        data = {
            "name": "j",
            "workload": {"queries": [{"name": "q"}]},
        }
        import json

        assert parse_scenario(data) == load_scenario(json.dumps(data))
