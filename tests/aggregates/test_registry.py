"""Tests for the aggregate registry."""

import pytest

from repro.aggregates.base import AggregateFunction, Taxonomy
from repro.aggregates.builtin import Min
from repro.aggregates.registry import (
    get_aggregate,
    known_aggregates,
    register_aggregate,
)
from repro.errors import UnsupportedAggregateError


class TestLookup:
    @pytest.mark.parametrize(
        "name", ["min", "MIN", " Min ", "max", "sum", "count", "avg", "median"]
    )
    def test_known_names(self, name):
        assert isinstance(get_aggregate(name), AggregateFunction)

    def test_aliases(self):
        assert get_aggregate("mean").name == "avg"
        assert get_aggregate("stddev").name == "stdev"

    def test_unknown_name_lists_known(self):
        with pytest.raises(UnsupportedAggregateError) as excinfo:
            get_aggregate("frobnicate")
        assert "min" in str(excinfo.value)

    def test_known_aggregates_sorted(self):
        names = known_aggregates()
        assert list(names) == sorted(names)
        assert "min" in names and "median" in names


class TestRegistration:
    def test_register_custom_aggregate(self):
        class First(Min):
            name = "first_test_only"
            taxonomy = Taxonomy.DISTRIBUTIVE

        register_aggregate(First(), "head_test_only")
        assert get_aggregate("first_test_only").name == "first_test_only"
        assert get_aggregate("head_test_only").name == "first_test_only"

    def test_singletons_shared(self):
        assert get_aggregate("min") is get_aggregate("MIN")
