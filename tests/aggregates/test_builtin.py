"""Tests for built-in aggregate functions."""

import math

import numpy as np
import pytest

from repro.aggregates.base import Taxonomy, empty_result_is_nan
from repro.aggregates.builtin import (
    Avg,
    Count,
    Max,
    Median,
    Min,
    Quantile,
    Stdev,
    Sum,
)
from repro.errors import UnsupportedAggregateError

SAMPLE = [3.0, -1.0, 4.0, 1.5, 9.0, -2.5]


class TestComputeAgainstNumpy:
    @pytest.mark.parametrize(
        "aggregate,reference",
        [
            (Min(), np.min),
            (Max(), np.max),
            (Sum(), np.sum),
            (Count(), len),
            (Avg(), np.mean),
            (Median(), np.median),
        ],
    )
    def test_matches_reference(self, aggregate, reference):
        assert aggregate.compute(SAMPLE) == pytest.approx(
            float(reference(SAMPLE))
        )

    def test_stdev_is_sample_stdev(self):
        assert Stdev().compute(SAMPLE) == pytest.approx(
            float(np.std(SAMPLE, ddof=1))
        )

    def test_quantile(self):
        assert Quantile(0.5).compute(SAMPLE) == pytest.approx(
            float(np.median(SAMPLE))
        )
        assert Quantile(0.0).compute(SAMPLE) == pytest.approx(min(SAMPLE))

    def test_quantile_validates_q(self):
        with pytest.raises(UnsupportedAggregateError):
            Quantile(1.5)


class TestEmptyConventions:
    @pytest.mark.parametrize("aggregate", [Min(), Max(), Avg(), Stdev(), Median()])
    def test_nan_for_empty(self, aggregate):
        assert empty_result_is_nan(aggregate.compute([]))

    def test_sum_empty_is_zero(self):
        assert Sum().compute([]) == 0.0

    def test_count_empty_is_zero(self):
        assert Count().compute([]) == 0.0

    def test_stdev_single_value_is_nan(self):
        assert math.isnan(Stdev().compute([5.0]))


class TestPartialProtocol:
    def test_min_merge(self):
        agg = Min()
        left = agg.lift(3.0)
        right = agg.lift(1.0)
        merged = agg.combine(left, right)
        assert float(agg.finalize(merged)) == 1.0

    def test_avg_merge_of_uneven_parts(self):
        agg = Avg()
        a = [1.0, 2.0, 3.0]
        b = [10.0]
        pa = agg.reduce_stack(tuple(np.asarray(c) for c in agg.lift(np.asarray(a))))
        pb = agg.reduce_stack(tuple(np.asarray(c) for c in agg.lift(np.asarray(b))))
        merged = agg.combine(pa, pb)
        assert float(agg.finalize(merged)) == pytest.approx(np.mean(a + b))

    def test_stdev_merge(self):
        agg = Stdev()
        a = np.asarray([1.0, 2.0, 3.0, 4.0])
        b = np.asarray([10.0, 20.0])
        pa = agg.reduce_stack(agg.lift(a))
        pb = agg.reduce_stack(agg.lift(b))
        merged = agg.combine(pa, pb)
        expected = float(np.std(np.concatenate([a, b]), ddof=1))
        assert float(agg.finalize(merged)) == pytest.approx(expected)

    def test_count_merge_sums_counts(self):
        agg = Count()
        pa = agg.reduce_stack(agg.lift(np.asarray([1.0, 2.0])))
        pb = agg.reduce_stack(agg.lift(np.asarray([3.0])))
        assert float(agg.finalize(agg.combine(pa, pb))) == 3.0

    def test_identity_is_neutral(self):
        for agg in (Min(), Max(), Sum(), Count(), Avg(), Stdev()):
            partial = agg.reduce_stack(agg.lift(np.asarray(SAMPLE)))
            merged = agg.combine(partial, agg.identity_components)
            assert float(agg.finalize(merged)) == pytest.approx(
                float(agg.finalize(partial)), nan_ok=True
            )

    def test_finalize_vectorized(self):
        agg = Avg()
        sums = np.asarray([6.0, 0.0, 10.0])
        counts = np.asarray([3.0, 0.0, 4.0])
        out = agg.finalize((sums, counts))
        assert out[0] == pytest.approx(2.0)
        assert math.isnan(out[1])
        assert out[2] == pytest.approx(2.5)

    def test_min_finalize_maps_identity_to_nan(self):
        agg = Min()
        out = agg.finalize((np.asarray([np.inf, 2.0]),))
        assert math.isnan(out[0]) and out[1] == 2.0


class TestHolisticRestrictions:
    def test_median_has_no_lift(self):
        with pytest.raises(UnsupportedAggregateError):
            Median().lift(np.asarray([1.0]))

    def test_median_cannot_combine(self):
        with pytest.raises(UnsupportedAggregateError):
            Median().combine((), ())

    def test_median_not_mergeable(self):
        assert not Median().mergeable
        assert Median().semantics is None


class TestTaxonomy:
    def test_classifications(self):
        assert Min().taxonomy is Taxonomy.DISTRIBUTIVE
        assert Max().taxonomy is Taxonomy.DISTRIBUTIVE
        assert Sum().taxonomy is Taxonomy.DISTRIBUTIVE
        assert Count().taxonomy is Taxonomy.DISTRIBUTIVE
        assert Avg().taxonomy is Taxonomy.ALGEBRAIC
        assert Stdev().taxonomy is Taxonomy.ALGEBRAIC
        assert Median().taxonomy is Taxonomy.HOLISTIC

    def test_overlapping_merge_only_min_max(self):
        assert Min().supports_overlapping_merge
        assert Max().supports_overlapping_merge
        for agg in (Sum(), Count(), Avg(), Stdev()):
            assert not agg.supports_overlapping_merge

    def test_semantics_assignment(self):
        # Paper footnote 2: covered-by for MIN/MAX, partitioned-by for
        # COUNT/SUM/AVG (and other algebraic functions).
        from repro.windows.coverage import CoverageSemantics

        assert Min().semantics is CoverageSemantics.COVERED_BY
        assert Max().semantics is CoverageSemantics.COVERED_BY
        for agg in (Sum(), Count(), Avg(), Stdev()):
            assert agg.semantics is CoverageSemantics.PARTITIONED_BY


class TestSegmentCompute:
    """Vectorized holistic kernels agree with per-group compute."""

    @pytest.mark.parametrize(
        "aggregate", [Median(), Quantile(0.25), Quantile(0.9)],
        ids=lambda a: a.name,
    )
    def test_matches_compute_on_random_segments(self, aggregate):
        rng = np.random.default_rng(9)
        lengths = rng.integers(1, 12, 40)
        segments = [rng.normal(0, 10, n) for n in lengths]
        sorted_values = np.concatenate([np.sort(s) for s in segments])
        ends = np.cumsum(lengths)
        starts = ends - lengths
        got = aggregate.segment_compute(sorted_values, starts, ends)
        expected = [aggregate.compute(s) for s in segments]
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_mergeable_aggregates_have_no_kernel(self):
        starts = np.array([0])
        ends = np.array([2])
        values = np.array([1.0, 2.0])
        assert Min().segment_compute(values, starts, ends) is None
        assert Sum().segment_compute(values, starts, ends) is None

    def test_nan_values_propagate_like_compute(self):
        # NaNs sort to the segment end; the kernel must propagate them
        # exactly like np.median/np.quantile, not skip them.
        aggregate = Median()
        sorted_values = np.array([1.0, 2.0, 3.0, 1.0, 2.0, np.nan])
        starts = np.array([0, 3])
        ends = np.array([3, 6])
        got = aggregate.segment_compute(sorted_values, starts, ends)
        assert got[0] == 2.0
        assert math.isnan(got[1])
