"""Tests for the extension aggregates (beyond the paper's list)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.extra import (
    CountDistinct,
    GeometricMean,
    Range,
    SumOfSquares,
)
from repro.aggregates.registry import get_aggregate
from repro.windows.coverage import CoverageSemantics

SAMPLE = [3.0, -1.0, 4.0, 1.5, 9.0, -2.5]


class TestRange:
    def test_compute(self):
        assert Range().compute(SAMPLE) == pytest.approx(9.0 - (-2.5))

    def test_empty_is_nan(self):
        assert math.isnan(Range().compute([]))

    def test_single_value_is_zero(self):
        assert Range().compute([5.0]) == 0.0

    def test_overlap_safe_semantics(self):
        # The headline property: RANGE joins MIN/MAX on the covered-by
        # list because both its components are overlap-idempotent.
        assert Range().supports_overlapping_merge
        assert Range().semantics is CoverageSemantics.COVERED_BY

    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=30
        ),
        lo=st.integers(0, 10),
    )
    @settings(max_examples=60)
    def test_overlapping_merge_correct(self, values, lo):
        agg = Range()
        lo = min(lo, len(values) - 1)
        left = values[: lo + 1]
        right = values[lo:]  # overlaps at index lo
        pl = agg.reduce_stack(agg.lift(np.asarray(left)))
        pr = agg.reduce_stack(agg.lift(np.asarray(right)))
        merged = agg.combine(pl, pr)
        assert float(agg.finalize(merged)) == pytest.approx(
            max(values) - min(values)
        )


class TestGeometricMean:
    def test_compute(self):
        values = [1.0, 2.0, 4.0]
        assert GeometricMean().compute(values) == pytest.approx(2.0)

    def test_merge(self):
        agg = GeometricMean()
        pa = agg.reduce_stack(agg.lift(np.asarray([1.0, 4.0])))
        pb = agg.reduce_stack(agg.lift(np.asarray([2.0])))
        merged = agg.combine(pa, pb)
        assert float(agg.finalize(merged)) == pytest.approx(2.0)

    def test_partitioned_only(self):
        assert GeometricMean().semantics is CoverageSemantics.PARTITIONED_BY

    def test_non_positive_poisons(self):
        assert math.isnan(GeometricMean().compute([1.0, -2.0]))

    def test_empty_is_nan(self):
        assert math.isnan(GeometricMean().compute([]))


class TestSumOfSquares:
    def test_compute(self):
        assert SumOfSquares().compute([1.0, 2.0, 3.0]) == pytest.approx(14.0)

    def test_merge_matches_whole(self):
        agg = SumOfSquares()
        pa = agg.reduce_stack(agg.lift(np.asarray(SAMPLE[:3])))
        pb = agg.reduce_stack(agg.lift(np.asarray(SAMPLE[3:])))
        merged = agg.combine(pa, pb)
        assert float(agg.finalize(merged)) == pytest.approx(
            agg.compute(SAMPLE)
        )


class TestCountDistinct:
    def test_compute(self):
        assert CountDistinct().compute([1.0, 2.0, 2.0, 3.0]) == 3.0

    def test_empty(self):
        assert CountDistinct().compute([]) == 0.0

    def test_holistic(self):
        assert not CountDistinct().mergeable
        assert CountDistinct().semantics is None


class TestRegistryIntegration:
    @pytest.mark.parametrize(
        "name", ["range", "geomean", "sumsq", "count_distinct"]
    )
    def test_registered(self, name):
        assert get_aggregate(name).name == name


class TestEndToEndWithEngine:
    def test_range_shares_over_covered_windows(self):
        """RANGE rides the full covered-by pipeline like MIN does."""
        from repro.core.optimizer import optimize
        from repro.core.rewrite import rewrite_plan
        from repro.engine.executor import execute_plan, results_equal
        from repro.plans.builder import original_plan
        from repro.windows.window import Window, WindowSet
        from repro.workloads.streams import constant_rate_stream

        agg = get_aggregate("range")
        windows = WindowSet([Window(20, 10), Window(40, 10), Window(60, 20)])
        result = optimize(windows, agg)
        assert result.best_cost < result.baseline_cost

        batch = constant_rate_stream(2_000)
        original = execute_plan(original_plan(windows, agg), batch)
        optimized = execute_plan(rewrite_plan(result.best, agg), batch)
        assert results_equal(original, optimized)


class TestCountDistinctSegmentKernel:
    def test_matches_compute_on_random_segments(self):
        aggregate = CountDistinct()
        rng = np.random.default_rng(17)
        lengths = rng.integers(1, 15, 30)
        segments = [rng.integers(0, 5, n).astype(float) for n in lengths]
        sorted_values = np.concatenate([np.sort(s) for s in segments])
        ends = np.cumsum(lengths)
        starts = ends - lengths
        got = aggregate.segment_compute(sorted_values, starts, ends)
        expected = [aggregate.compute(s) for s in segments]
        np.testing.assert_allclose(got, expected)

    def test_boundary_between_equal_values_not_merged(self):
        # Adjacent segments ending/starting with the same value must
        # not leak distinct counts across the boundary.
        sorted_values = np.array([1.0, 2.0, 2.0, 3.0])
        starts = np.array([0, 2])
        ends = np.array([2, 4])
        got = CountDistinct().segment_compute(sorted_values, starts, ends)
        np.testing.assert_allclose(got, [2.0, 2.0])

    def test_nans_collapse_to_one_distinct_like_unique(self):
        aggregate = CountDistinct()
        # Segments: [1, nan, nan], [nan], [2, 3]
        sorted_values = np.array([1.0, np.nan, np.nan, np.nan, 2.0, 3.0])
        starts = np.array([0, 3, 4])
        ends = np.array([3, 4, 6])
        got = aggregate.segment_compute(sorted_values, starts, ends)
        expected = [
            aggregate.compute([1.0, np.nan, np.nan]),
            aggregate.compute([np.nan]),
            aggregate.compute([2.0, 3.0]),
        ]
        np.testing.assert_allclose(got, expected)
