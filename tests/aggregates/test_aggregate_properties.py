"""Property-based tests on the partial-aggregate protocol.

The soundness of the whole rewriting scheme rests on two algebraic
facts (Theorems 5 and 6): merging partials over a *disjoint* split
equals aggregating everything at once for all mergeable aggregates, and
for MIN/MAX this still holds when the split *overlaps*.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.builtin import Avg, Count, Max, Min, Stdev, Sum

MERGEABLE = [Min(), Max(), Sum(), Count(), Avg(), Stdev()]
OVERLAP_SAFE = [Min(), Max()]

values_strategy = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


def _partial_of(agg, values):
    return agg.reduce_stack(agg.lift(np.asarray(values, dtype=np.float64)))


def _close(a: float, b: float, scale: float = 1.0) -> bool:
    """Tolerant comparison for finalized aggregates.

    The absolute tolerance scales with the input magnitude: STDEV's
    ``sumsq - sum²/n`` finalization cancels catastrophically when the
    true deviation is ~0, leaving noise of order ``ulp(n·v²)`` whose
    square root is proportional to ``v`` — a fixed absolute tolerance
    rejects mathematically-equal merges of large equal values.
    """
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(
        a, b, rel_tol=1e-9, abs_tol=1e-6 * max(1.0, scale)
    )


def _scale(values) -> float:
    return max((abs(v) for v in values), default=1.0)


@pytest.mark.parametrize("agg", MERGEABLE, ids=lambda a: a.name)
@given(values=values_strategy, split=st.integers(0, 40))
@settings(max_examples=60)
def test_theorem_5_disjoint_partition(agg, values, split):
    """f(T) == merge(f(T1), f(T2)) for any disjoint split of T."""
    split = min(split, len(values))
    left, right = values[:split], values[split:]
    whole = agg.compute(values)
    if not left:
        merged = _partial_of(agg, right)
    elif not right:
        merged = _partial_of(agg, left)
    else:
        merged = agg.combine(_partial_of(agg, left), _partial_of(agg, right))
    assert _close(float(agg.finalize(merged)), whole, _scale(values))


@pytest.mark.parametrize("agg", OVERLAP_SAFE, ids=lambda a: a.name)
@given(
    values=values_strategy,
    lo=st.integers(0, 39),
    hi=st.integers(1, 40),
)
@settings(max_examples=60)
def test_theorem_6_overlapping_partition(agg, values, lo, hi):
    """MIN/MAX survive merging over overlapping pieces."""
    lo, hi = min(lo, len(values) - 1), max(1, min(hi, len(values)))
    if lo >= hi:
        lo, hi = 0, len(values)
    left = values[:hi]          # overlap: values[lo:hi] shared
    right = values[lo:]
    merged = agg.combine(_partial_of(agg, left), _partial_of(agg, right))
    assert _close(
        float(agg.finalize(merged)), agg.compute(values), _scale(values)
    )


@pytest.mark.parametrize("agg", MERGEABLE, ids=lambda a: a.name)
@given(values=values_strategy)
@settings(max_examples=40)
def test_combine_is_commutative(agg, values):
    half = len(values) // 2
    if half == 0:
        return
    pa = _partial_of(agg, values[:half])
    pb = _partial_of(agg, values[half:])
    ab = agg.combine(pa, pb)
    ba = agg.combine(pb, pa)
    assert _close(
        float(agg.finalize(ab)), float(agg.finalize(ba)), _scale(values)
    )


@pytest.mark.parametrize("agg", MERGEABLE, ids=lambda a: a.name)
@given(values=values_strategy)
@settings(max_examples=40)
def test_combine_is_associative(agg, values):
    thirds = max(1, len(values) // 3)
    parts = [values[:thirds], values[thirds : 2 * thirds], values[2 * thirds :]]
    parts = [p for p in parts if p]
    if len(parts) < 3:
        return
    pa, pb, pc = (_partial_of(agg, p) for p in parts)
    left = agg.combine(agg.combine(pa, pb), pc)
    right = agg.combine(pa, agg.combine(pb, pc))
    assert _close(
        float(agg.finalize(left)), float(agg.finalize(right)), _scale(values)
    )


@pytest.mark.parametrize("agg", MERGEABLE, ids=lambda a: a.name)
@given(values=values_strategy)
@settings(max_examples=40)
def test_segment_reduce_matches_per_segment_compute(agg, values):
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 4, len(values))
    comps = agg.segment_reduce(
        codes, np.asarray(values, dtype=np.float64), 4
    )
    finalized = agg.finalize(comps)
    for segment in range(4):
        expected = agg.compute(
            [v for v, c in zip(values, codes) if c == segment]
        )
        assert _close(
            float(np.asarray(finalized)[segment]), expected, _scale(values)
        )
