"""Fuzz tests for the SQL front end.

Two guarantees: the tokenizer/parser never crash with anything other
than a :class:`SqlError` on arbitrary input, and every structurally
valid generated query round-trips through parse → compile → optimize.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SqlError
from repro.sql.compile import compile_query, plan_query
from repro.sql.parser import parse
from repro.sql.tokenizer import tokenize


@given(text=st.text(max_size=200))
@settings(max_examples=200)
def test_tokenizer_total(text):
    """Any input either tokenizes or raises SqlError — nothing else."""
    try:
        tokens = tokenize(text)
    except SqlError:
        return
    assert tokens[-1].type.name == "EOF"


@given(text=st.text(max_size=200))
@settings(max_examples=200)
def test_parser_total(text):
    try:
        parse(text)
    except SqlError:
        pass


# Printable-ASCII fuzz biased toward SQL-looking fragments.
sql_fragments = st.lists(
    st.sampled_from(
        [
            "SELECT", "FROM", "GROUP", "BY", "WINDOWS", "WINDOW",
            "TUMBLING", "HOPPING", "MIN", "(", ")", ",", "'x'", "5",
            "minute", "a", ".", "*", "AS", "TIMESTAMP",
        ]
    ),
    max_size=30,
).map(" ".join)


@given(text=sql_fragments)
@settings(max_examples=300)
def test_parser_total_on_sql_like_soup(text):
    try:
        query = parse(text)
    except SqlError:
        return
    # If it parsed, compiling may still fail semantically — but only
    # with a library error.
    try:
        compile_query(query)
    except ReproError:
        pass


aggregates = st.sampled_from(["MIN", "MAX", "SUM", "COUNT", "AVG"])
units = st.sampled_from(["second", "minute", "hour"])
sizes = st.lists(
    st.sampled_from([2, 3, 5, 6, 10, 12, 20, 30]),
    min_size=1,
    max_size=4,
    unique=True,
)


@given(aggregate=aggregates, unit=units, sizes=sizes)
@settings(max_examples=60, deadline=None)
def test_generated_queries_plan_end_to_end(aggregate, unit, sizes):
    windows = ", ".join(f"TUMBLING({unit}, {size})" for size in sizes)
    text = (
        f"SELECT {aggregate}(v) FROM s GROUP BY k, WINDOWS({windows})"
    )
    planned = plan_query(text)
    assert planned.optimization.best_cost <= planned.optimization.baseline_cost
    assert len(planned.compiled.window_set) == len(sizes)
    from repro.plans.validate import validate_plan

    validate_plan(planned.best_plan)
