"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.tokenizer import tokenize
from repro.sql.tokens import TokenType


def _types(text):
    return [t.type for t in tokenize(text)]


def _texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_punctuation(self):
        assert _types("SELECT a FROM b") == [
            TokenType.IDENT,
            TokenType.IDENT,
            TokenType.IDENT,
            TokenType.IDENT,
            TokenType.EOF,
        ]

    def test_numbers(self):
        tokens = tokenize("20 300")
        assert tokens[0].type is TokenType.INT and tokens[0].text == "20"
        assert tokens[1].text == "300"

    def test_string_literal(self):
        tokens = tokenize("'20 min'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "20 min"

    def test_punctuation(self):
        assert _types("(,.*)")[:-1] == [
            TokenType.LPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.STAR,
            TokenType.RPAREN,
        ]

    def test_dotted_identifier_tokens(self):
        assert _texts("System.Window().Id") == [
            "System", ".", "Window", "(", ")", ".", "Id",
        ]

    def test_underscore_identifiers(self):
        assert _texts("min_temp _x") == ["min_temp", "_x"]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- the projection\n a")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "a"]

    def test_whitespace_variants(self):
        assert _texts("a\tb\r\nc") == ["a", "b", "c"]

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("'unterminated")
        assert "unterminated" in str(excinfo.value)

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_number_glued_to_letter(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("20min")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("a\n!")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 1
