"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.ast import AggregateCall, ColumnRef
from repro.sql.parser import parse

PAPER_QUERY = """
SELECT DeviceID, System.Window().Id, Min(T) AS MinTemp
FROM Input TIMESTAMP BY EntryTime
GROUP BY DeviceID, Windows(
    Window('20 min', TumblingWindow(minute, 20)),
    Window('30 min', TumblingWindow(minute, 30)),
    Window('40 min', TumblingWindow(minute, 40)))
"""


class TestPaperQuery:
    def test_figure_1a_parses(self):
        query = parse(PAPER_QUERY)
        assert query.source == "Input"
        assert query.timestamp_column == "EntryTime"
        assert len(query.window_defs) == 3
        assert [d.name for d in query.window_defs] == [
            "20 min",
            "30 min",
            "40 min",
        ]
        assert all(d.kind == "tumbling" for d in query.window_defs)
        assert [d.range for d in query.window_defs] == [20, 30, 40]

    def test_aggregate_call_extracted(self):
        query = parse(PAPER_QUERY)
        calls = query.aggregate_calls
        assert len(calls) == 1
        assert calls[0].function.lower() == "min"
        assert calls[0].argument.name == "T"

    def test_group_keys(self):
        query = parse(PAPER_QUERY)
        assert [str(k) for k in query.group_keys] == ["DeviceID"]

    def test_select_items(self):
        query = parse(PAPER_QUERY)
        assert len(query.select_items) == 3
        assert query.select_items[2].alias == "MinTemp"
        assert isinstance(query.select_items[2].expression, AggregateCall)
        pseudo = query.select_items[1].expression
        assert isinstance(pseudo, ColumnRef)
        assert pseudo.is_call  # System.Window().Id


class TestWindowSpecs:
    def test_hopping_window(self):
        query = parse(
            "SELECT MIN(v) FROM s GROUP BY WINDOWS(HOPPING(second, 40, 20))"
        )
        definition = query.window_defs[0]
        assert definition.kind == "hopping"
        assert (definition.range, definition.slide) == (40, 20)

    def test_sliding_alias(self):
        query = parse(
            "SELECT MIN(v) FROM s GROUP BY WINDOWS(SLIDINGWINDOW(minute, 10, 5))"
        )
        assert query.window_defs[0].kind == "hopping"

    def test_bare_window_spec(self):
        query = parse(
            "SELECT MIN(v) FROM s GROUP BY WINDOWS(TUMBLING(minute, 5))"
        )
        assert query.window_defs[0].name == ""

    def test_window_wrapper_without_name(self):
        query = parse(
            "SELECT MIN(v) FROM s GROUP BY WINDOWS(WINDOW(TUMBLING(minute, 5)))"
        )
        assert query.window_defs[0].range == 5

    def test_keywords_case_insensitive(self):
        query = parse(
            "select min(v) from s group by windows(tumbling(MINUTE, 5))"
        )
        assert query.window_defs[0].range == 5


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT",
            "SELECT a",  # no FROM
            "SELECT a FROM",  # no source
            "SELECT a FROM s",  # no GROUP BY
            "SELECT a FROM s GROUP a",  # missing BY
            "SELECT a FROM s GROUP BY WINDOWS()",  # empty windows
            "SELECT a FROM s GROUP BY WINDOWS(TUMBLING(minute))",  # arity
            "SELECT a FROM s GROUP BY WINDOWS(TUMBLING(minute, 5)",  # paren
            "SELECT a FROM s GROUP BY k, WINDOWS(TUMBLING(m, 5)), "
            "WINDOWS(TUMBLING(m, 6))",  # duplicate clause
            "SELECT a FROM s TIMESTAMP EntryTime GROUP BY k",  # missing BY
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SqlSyntaxError):
            parse(text)

    def test_error_message_has_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse("SELECT a FROM s GROUP BY WINDOWS(BOGUS(minute, 5))")
        assert "line 1" in str(excinfo.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse(
                "SELECT MIN(v) FROM s GROUP BY WINDOWS(TUMBLING(minute, 5)) x"
            )
