"""Tests for SQL semantic analysis and end-to-end planning."""

import pytest

from repro.errors import SqlSemanticError
from repro.sql.compile import compile_query, plan_query
from repro.windows.window import Window

PAPER_QUERY = """
SELECT DeviceID, System.Window().Id, Min(T) AS MinTemp
FROM Input TIMESTAMP BY EntryTime
GROUP BY DeviceID, Windows(
    Window('20 min', TumblingWindow(minute, 20)),
    Window('30 min', TumblingWindow(minute, 30)),
    Window('40 min', TumblingWindow(minute, 40)))
"""


class TestCompile:
    def test_window_set_normalized_to_ticks(self):
        compiled = compile_query(PAPER_QUERY)
        assert set(compiled.window_set) == {
            Window(1200, 1200),
            Window(1800, 1800),
            Window(2400, 2400),
        }

    def test_window_names_preserved(self):
        compiled = compile_query(PAPER_QUERY)
        assert [w.name for w in compiled.window_set] == [
            "20 min",
            "30 min",
            "40 min",
        ]

    def test_aggregate_and_columns(self):
        compiled = compile_query(PAPER_QUERY)
        assert compiled.aggregate.name == "min"
        assert compiled.value_column == "T"
        assert compiled.group_keys == ("DeviceID",)
        assert compiled.alias == "MinTemp"
        assert compiled.source == "Input"

    def test_mixed_units(self):
        compiled = compile_query(
            "SELECT MIN(v) FROM s GROUP BY WINDOWS("
            "TUMBLING(minute, 2), TUMBLING(second, 180))"
        )
        assert set(compiled.window_set) == {Window(120, 120), Window(180, 180)}

    def test_zero_aggregates_rejected(self):
        with pytest.raises(SqlSemanticError):
            compile_query(
                "SELECT a FROM s GROUP BY WINDOWS(TUMBLING(minute, 5))"
            )

    def test_two_aggregates_rejected(self):
        with pytest.raises(SqlSemanticError):
            compile_query(
                "SELECT MIN(v), MAX(v) FROM s "
                "GROUP BY WINDOWS(TUMBLING(minute, 5))"
            )

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(Exception):
            compile_query(
                "SELECT FROB(v) FROM s GROUP BY WINDOWS(TUMBLING(minute, 5))"
            )

    def test_duplicate_window_names_rejected(self):
        with pytest.raises(SqlSemanticError):
            compile_query(
                "SELECT MIN(v) FROM s GROUP BY WINDOWS("
                "WINDOW('a', TUMBLING(minute, 5)),"
                "WINDOW('a', TUMBLING(minute, 10)))"
            )

    def test_duplicate_windows_rejected(self):
        from repro.errors import InvalidWindowError

        with pytest.raises(InvalidWindowError):
            compile_query(
                "SELECT MIN(v) FROM s GROUP BY WINDOWS("
                "TUMBLING(minute, 5), TUMBLING(second, 300))"
            )

    def test_bad_unit_rejected(self):
        with pytest.raises(SqlSemanticError):
            compile_query(
                "SELECT MIN(v) FROM s GROUP BY WINDOWS(TUMBLING(lightyear, 5))"
            )


class TestPlanQuery:
    def test_paper_query_end_to_end(self):
        planned = plan_query(PAPER_QUERY)
        # Example 7's structure at second granularity: the same factor
        # window (10 minutes) is found; raw-read costs scale with the
        # tick resolution while sub-aggregate reads do not, so sharing
        # pays even more than at minute granularity.
        assert planned.optimization.baseline_cost == 3 * 7200
        assert planned.optimization.predicted_speedup >= 360 / 150
        assert planned.best_plan is planned.with_factors
        factors = planned.with_factors.factor_window_nodes()
        assert [n.window for n in factors] == [Window(600, 600)]

    def test_plans_carry_source_name(self):
        planned = plan_query(PAPER_QUERY)
        assert planned.original.source.name == "Input"
        assert planned.with_factors.source.name == "Input"

    def test_factor_windows_disabled(self):
        planned = plan_query(PAPER_QUERY, enable_factor_windows=False)
        assert planned.with_factors is None
        assert planned.best_plan is planned.rewritten

    def test_holistic_query_falls_back_to_original(self):
        planned = plan_query(
            "SELECT MEDIAN(v) FROM s GROUP BY WINDOWS("
            "TUMBLING(minute, 5), TUMBLING(minute, 10))"
        )
        assert planned.rewritten is None
        assert planned.best_plan is planned.original

    def test_all_plans_validate(self):
        from repro.plans.validate import validate_plan

        planned = plan_query(PAPER_QUERY)
        for plan in (planned.original, planned.rewritten, planned.with_factors):
            validate_plan(plan)
