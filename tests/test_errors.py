"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CostModelError,
    ExecutionError,
    InvalidWindowError,
    PlanError,
    ReproError,
    SqlSemanticError,
    SqlSyntaxError,
    UnsupportedAggregateError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CostModelError,
            ExecutionError,
            InvalidWindowError,
            PlanError,
            SqlSemanticError,
            SqlSyntaxError,
            UnsupportedAggregateError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_value_error(self):
        for exc in (CostModelError, InvalidWindowError, PlanError):
            assert issubclass(exc, ValueError)

    def test_execution_error_is_runtime_error(self):
        assert issubclass(ExecutionError, RuntimeError)

    def test_sql_errors_share_a_base(self):
        from repro.errors import SqlError

        assert issubclass(SqlSyntaxError, SqlError)
        assert issubclass(SqlSemanticError, SqlError)

    def test_syntax_error_position_formatting(self):
        error = SqlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_syntax_error_without_position(self):
        error = SqlSyntaxError("bad token")
        assert str(error) == "bad token"


class TestOneCatchAllWorks:
    def test_library_failures_catchable_uniformly(self):
        from repro import MIN, WindowSet, optimize
        from repro.sql import parse
        from repro.windows import Window

        failures = 0
        for action in (
            lambda: Window(1, 2),
            lambda: optimize(WindowSet(), MIN),
            lambda: parse("SELECT"),
        ):
            try:
                action()
            except ReproError:
                failures += 1
        assert failures == 3
