"""Property-based equivalence across every registered engine path.

DESIGN.md invariants 5–6 extended to the physical-path registry: for
random window sets (tumbling and hopping), random streams, and every
plan variant (original / rewritten / factor windows), all registered
paths must produce identical results *and* identical logical pair
counts — and the logical counts must still equal the cost model's
prediction on aligned constant-rate streams even though the fast paths
physically do less work.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import (
    AVG,
    COUNT_DISTINCT,
    MAX,
    MEDIAN,
    MIN,
    SUM,
)
from repro.core.cost import CostModel
from repro.core.optimizer import min_cost_wcg_with_factors, optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import (
    available_engines,
    execute_plan,
    results_equal,
)
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet

ALL_ENGINES = (
    "columnar",
    "columnar-panes",
    "columnar-panes-native",
    "streaming",
    "streaming-chunked",
)

tumbling_sets = st.lists(
    st.sampled_from([4, 5, 6, 8, 10, 12, 15, 20]),
    min_size=2,
    max_size=4,
    unique=True,
).map(lambda ranges: WindowSet([Window(r, r) for r in ranges]))

hopping_sets = st.lists(
    st.tuples(st.sampled_from([2, 3, 5, 6]), st.integers(2, 4)),
    min_size=2,
    max_size=3,
    unique=True,
).map(lambda pairs: WindowSet(_dedupe(Window(k * s, s) for s, k in pairs)))


def _dedupe(windows):
    seen, out = set(), []
    for w in windows:
        if w not in seen:
            seen.add(w)
            out.append(w)
    return out


def _random_batch(seed: int, horizon: int = 130, num_keys: int = 2):
    rng = np.random.default_rng(seed)
    n = rng.integers(horizon // 2, horizon * 2)
    ts = np.sort(rng.integers(0, horizon - 1, n))
    keys = rng.integers(0, num_keys, n)
    values = rng.normal(0, 100, n)
    return make_batch(ts, values, keys=keys, num_keys=num_keys, horizon=horizon)


def _all_variants(windows, aggregate):
    result = optimize(windows, aggregate)
    plans = [original_plan(windows, aggregate)]
    if result.without_factors is not None:
        plans.append(rewrite_plan(result.without_factors, aggregate))
    if result.with_factors is not None:
        plans.append(
            rewrite_plan(result.with_factors, aggregate, description="factors")
        )
    return plans


def test_registry_exposes_all_paths():
    assert set(ALL_ENGINES) <= set(available_engines())


@pytest.mark.parametrize(
    "aggregate", [MIN, SUM, AVG, MEDIAN, COUNT_DISTINCT], ids=lambda a: a.name
)
def test_native_path_bit_identical_to_panes(aggregate):
    """Native kernels must match the pure pane path *bitwise*, not just
    within allclose tolerance — same grouping order, same FP reduce."""
    windows = WindowSet([Window(12, 4), Window(20, 4), Window(6, 6)])
    batch = _random_batch(404, horizon=240, num_keys=3)
    plan = original_plan(windows, aggregate)
    pure = execute_plan(plan, batch, engine="columnar-panes")
    native = execute_plan(plan, batch, engine="columnar-panes-native")
    assert set(pure.results) == set(native.results)
    for window, array in pure.results.items():
        np.testing.assert_array_equal(array, native.results[window])
    assert pure.stats.pairs_per_window == native.stats.pairs_per_window


def test_native_path_falls_back_without_kernels(monkeypatch):
    """REPRO_KERNELS=0 must leave the fifth path registered and
    producing identical results on the pure-NumPy fallback."""
    monkeypatch.setenv("REPRO_KERNELS", "0")
    from repro import _kernels

    assert not _kernels.available()
    assert "disabled" in _kernels.availability_error()
    windows = WindowSet([Window(12, 4), Window(8, 8)])
    batch = _random_batch(77)
    plan = original_plan(windows, MIN)
    pure = execute_plan(plan, batch, engine="columnar-panes")
    fallback = execute_plan(plan, batch, engine="columnar-panes-native")
    assert results_equal(pure, fallback)


@pytest.mark.parametrize("aggregate", [MIN, MAX], ids=lambda a: a.name)
@given(windows=hopping_sets, seed=st.integers(0, 10_000))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_paths_agree_on_hopping_sets(aggregate, windows, seed):
    batch = _random_batch(seed)
    for plan in _all_variants(windows, aggregate):
        reference = None
        for engine in ALL_ENGINES:
            result = execute_plan(plan, batch, engine=engine)
            if reference is None:
                reference = result
            else:
                assert results_equal(reference, result)
                assert (
                    reference.stats.pairs_per_window
                    == result.stats.pairs_per_window
                )


@pytest.mark.parametrize("aggregate", [SUM, AVG], ids=lambda a: a.name)
@given(windows=tumbling_sets, seed=st.integers(0, 10_000))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_paths_agree_on_tumbling_sets(aggregate, windows, seed):
    batch = _random_batch(seed)
    for plan in _all_variants(windows, aggregate):
        reference = None
        for engine in ALL_ENGINES:
            result = execute_plan(plan, batch, engine=engine)
            if reference is None:
                reference = result
            else:
                assert results_equal(reference, result)
                assert (
                    reference.stats.pairs_per_window
                    == result.stats.pairs_per_window
                )


@given(windows=tumbling_sets, periods=st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_fast_path_logical_pairs_match_cost_model(windows, periods):
    """The pane path's *logical* counters still equal the analytic cost
    model exactly, even though its physical touches are fewer."""
    model = CostModel()
    period = model.hyper_period(windows)
    horizon = periods * period
    ts = np.arange(horizon)
    batch = make_batch(ts, np.sin(ts / 3.0), horizon=horizon)

    gmin, _ = min_cost_wcg_with_factors(
        windows, CoverageSemantics.PARTITIONED_BY
    )
    plan = rewrite_plan(gmin, MIN)
    for engine in (
        "columnar-panes",
        "columnar-panes-native",
        "streaming-chunked",
    ):
        result = execute_plan(plan, batch, engine=engine)
        assert result.stats.total_pairs == periods * gmin.total_cost
        # Physical work never exceeds logical on constant-rate streams
        # once the plan has any hopping or multi-pane window; at the
        # very least it must stay within logical + one binning pass.
        assert (
            result.stats.total_physical
            <= result.stats.total_pairs + batch.num_events
        )
