"""Property-based end-to-end equivalence (DESIGN.md invariant 5).

For random window sets and random streams, every plan variant — the
original plan, the rewritten plan, the factor-window plan, the slicing
baseline, on both engines — must produce identical per-window results.
This is the single most important guarantee of the whole system: the
optimizer may only make queries *faster*, never *different*.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import AVG, COUNT, MAX, MIN, SUM
from repro.bench.harness import compare_plans  # noqa: F401  (API sanity)
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.plans.builder import original_plan
from repro.slicing.slicer import execute_sliced
from repro.windows.window import Window, WindowSet

tumbling_sets = st.lists(
    st.sampled_from([4, 5, 6, 8, 10, 12, 15, 20, 24, 30]),
    min_size=2,
    max_size=4,
    unique=True,
).map(lambda ranges: WindowSet([Window(r, r) for r in ranges]))

hopping_sets = st.lists(
    st.tuples(st.sampled_from([2, 3, 5, 6]), st.integers(2, 4)),
    min_size=2,
    max_size=3,
    unique=True,
).map(
    lambda pairs: WindowSet(
        _dedupe(Window(k * s, s) for s, k in pairs)
    )
)


def _dedupe(windows):
    seen, out = set(), []
    for w in windows:
        if w not in seen:
            seen.add(w)
            out.append(w)
    return out


def _random_batch(seed: int, horizon: int = 150, num_keys: int = 2):
    rng = np.random.default_rng(seed)
    # Bursty stream with gaps: harder than constant rate.
    n = rng.integers(horizon // 2, horizon * 2)
    ts = np.sort(rng.integers(0, horizon - 1, n))
    keys = rng.integers(0, num_keys, n)
    values = rng.normal(0, 100, n)
    return make_batch(ts, values, keys=keys, num_keys=num_keys, horizon=horizon)


def _all_variants(windows, aggregate):
    result = optimize(windows, aggregate)
    plans = [original_plan(windows, aggregate)]
    if result.without_factors is not None:
        plans.append(rewrite_plan(result.without_factors, aggregate))
    if result.with_factors is not None:
        plans.append(
            rewrite_plan(result.with_factors, aggregate, description="factors")
        )
    return plans


@pytest.mark.parametrize("aggregate", [MIN, MAX], ids=lambda a: a.name)
@given(windows=hopping_sets, seed=st.integers(0, 10_000))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_covered_by_plans_equivalent(aggregate, windows, seed):
    batch = _random_batch(seed)
    reference = None
    for plan in _all_variants(windows, aggregate):
        result = execute_plan(plan, batch)
        if reference is None:
            reference = result
        else:
            assert results_equal(reference, result)


@pytest.mark.parametrize("aggregate", [SUM, COUNT, AVG], ids=lambda a: a.name)
@given(windows=tumbling_sets, seed=st.integers(0, 10_000))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_partitioned_by_plans_equivalent(aggregate, windows, seed):
    batch = _random_batch(seed)
    reference = None
    for plan in _all_variants(windows, aggregate):
        result = execute_plan(plan, batch)
        if reference is None:
            reference = result
        else:
            assert results_equal(reference, result)


@given(windows=tumbling_sets, seed=st.integers(0, 10_000))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_streaming_engine_agrees_with_columnar(windows, seed):
    batch = _random_batch(seed, horizon=100)
    for plan in _all_variants(windows, MIN):
        columnar = execute_plan(plan, batch, engine="columnar")
        streaming = execute_plan(plan, batch, engine="streaming")
        assert results_equal(columnar, streaming)
        assert (
            columnar.stats.pairs_per_window
            == streaming.stats.pairs_per_window
        )


@given(windows=hopping_sets, seed=st.integers(0, 10_000))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_slicing_baseline_agrees(windows, seed):
    batch = _random_batch(seed)
    sliced = execute_sliced(windows, MIN, batch)
    reference = execute_plan(original_plan(windows, MIN), batch)
    for window in windows:
        np.testing.assert_allclose(
            sliced.results[window],
            reference.results[window],
            rtol=1e-9,
            equal_nan=True,
        )
