"""Engine work matches the analytic cost model (DESIGN.md invariant 6).

The paper's cost model prices a plan in "inputs processed per
hyper-period R" assuming a steady event rate η.  On a constant-rate,
single-key stream spanning exactly k hyper-periods, the engines'
processed-pair counters must equal k × the model's plan cost — exactly
for tumbling window sets (instances tile the periods), and up to the
period-straddling-instance correction for hopping sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.registry import MIN
from repro.core.cost import CostModel
from repro.core.optimizer import min_cost_wcg, min_cost_wcg_with_factors
from repro.core.rewrite import rewrite_plan
from repro.engine.events import make_batch
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import VIRTUAL_ROOT, Window, WindowSet

PART = CoverageSemantics.PARTITIONED_BY
COV = CoverageSemantics.COVERED_BY

tumbling_sets = st.lists(
    st.sampled_from([2, 3, 4, 5, 6, 8, 10, 12, 15, 20]),
    min_size=2,
    max_size=4,
    unique=True,
).map(lambda ranges: WindowSet([Window(r, r) for r in ranges]))


def _constant_batch(periods: int, period: int):
    horizon = periods * period
    ts = np.arange(horizon)
    return make_batch(ts, np.sin(ts / 3.0), horizon=horizon)


def _measured_cost(plan, batch):
    return execute_plan(plan, batch).stats.total_pairs


class TestExactForTumbling:
    def test_example_6_pairs_equal_cost(self, example6_windows):
        model = CostModel()
        period = model.hyper_period(example6_windows)  # 120
        batch = _constant_batch(3, period)

        baseline = _measured_cost(
            original_plan(example6_windows, MIN), batch
        )
        assert baseline == 3 * 480

        gmin = min_cost_wcg(example6_windows, PART)
        rewritten = _measured_cost(rewrite_plan(gmin, MIN), batch)
        assert rewritten == 3 * 150

    def test_example_7_pairs_equal_cost(self, example7_windows):
        period = 120
        batch = _constant_batch(2, period)
        assert (
            _measured_cost(original_plan(example7_windows, MIN), batch)
            == 2 * 360
        )
        gmin = min_cost_wcg(example7_windows, PART)
        assert _measured_cost(rewrite_plan(gmin, MIN), batch) == 2 * 246
        gmin_f, _ = min_cost_wcg_with_factors(example7_windows, PART)
        assert _measured_cost(rewrite_plan(gmin_f, MIN), batch) == 2 * 150

    @given(windows=tumbling_sets, periods=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_any_tumbling_set(self, windows, periods):
        model = CostModel()
        period = model.hyper_period(windows)
        batch = _constant_batch(periods, period)

        assert _measured_cost(
            original_plan(windows, MIN), batch
        ) == periods * model.baseline_cost(windows)

        gmin = min_cost_wcg(windows, PART)
        assert (
            _measured_cost(rewrite_plan(gmin, MIN), batch)
            == periods * gmin.total_cost
        )

        gmin_f, _ = min_cost_wcg_with_factors(windows, PART)
        assert (
            _measured_cost(rewrite_plan(gmin_f, MIN), batch)
            == periods * gmin_f.total_cost
        )


def _horizon_cost(gmin, horizon: int, model: CostModel) -> int:
    """The plan's cost model evaluated with the horizon as the period.

    Over a contiguous constant-rate stream the engines' pair counters
    equal exactly this quantity: every complete instance of a window
    holds exactly ``r`` events, and sub-aggregate reads are ``M`` per
    instance — the per-hyper-period cost merely packs instances into
    disjoint periods, which under-counts the boundary-straddling
    instances of hopping windows.
    """
    total = 0
    for window in gmin.graph.nodes:
        if window is VIRTUAL_ROOT:
            continue
        n = 1 + (horizon - window.range) // window.slide
        total += n * model.instance_cost(window, gmin.provider[window])
    return total


class TestHoppingExactAtHorizon:
    def test_hopping_pairs_equal_horizon_cost(self):
        windows = WindowSet([Window(20, 10), Window(40, 20), Window(60, 20)])
        model = CostModel()
        period = model.hyper_period(windows)  # 120
        batch = _constant_batch(4, period)

        gmin = min_cost_wcg(windows, COV)
        measured = _measured_cost(rewrite_plan(gmin, MIN), batch)
        assert measured == _horizon_cost(gmin, batch.horizon, model)

    def test_hopping_with_factors_pairs_equal_horizon_cost(self):
        windows = WindowSet([Window(40, 20), Window(60, 20), Window(80, 20)])
        model = CostModel()
        period = model.hyper_period(windows)
        batch = _constant_batch(2, period)

        gmin, _ = min_cost_wcg_with_factors(windows, COV)
        measured = _measured_cost(rewrite_plan(gmin, MIN), batch)
        assert measured == _horizon_cost(gmin, batch.horizon, model)

    def test_per_period_model_is_a_lower_bound(self):
        windows = WindowSet([Window(20, 10), Window(40, 20)])
        model = CostModel()
        period = model.hyper_period(windows)
        gmin = min_cost_wcg(windows, COV)
        plan = rewrite_plan(gmin, MIN)

        for periods in (2, 8):
            batch = _constant_batch(periods, period)
            measured = _measured_cost(plan, batch)
            assert measured >= periods * gmin.total_cost


class TestPredictedSpeedupMatchesWorkReduction:
    @given(windows=tumbling_sets)
    @settings(max_examples=15, deadline=None)
    def test_gamma_c_equals_pair_ratio(self, windows):
        """Figure 19 with the deterministic work metric: γ_C == pair
        ratio exactly on aligned tumbling streams."""
        model = CostModel()
        period = model.hyper_period(windows)
        batch = _constant_batch(2, period)

        gmin = min_cost_wcg(windows, PART)
        gmin_f, _ = min_cost_wcg_with_factors(windows, PART)
        pairs_plain = _measured_cost(rewrite_plan(gmin, MIN), batch)
        pairs_factor = _measured_cost(rewrite_plan(gmin_f, MIN), batch)
        predicted = gmin.total_cost / gmin_f.total_cost
        assert pairs_plain / pairs_factor == pytest.approx(predicted)
