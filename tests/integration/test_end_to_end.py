"""End-to-end integration: SQL text → optimized plans → execution.

Covers the full user journey of the quickstart, including the
Example 1 scenario from the paper's introduction (MIN temperature per
device over 20/30/40-minute tumbling windows).
"""

import numpy as np
import pytest

from repro.engine.events import make_batch
from repro.engine.executor import execute_plan, results_equal
from repro.sql.compile import plan_query
from repro.windows.window import Window

PAPER_QUERY = """
SELECT DeviceID, System.Window().Id, Min(T) AS MinTemp
FROM Input TIMESTAMP BY EntryTime
GROUP BY DeviceID, Windows(
    Window('20 min', TumblingWindow(minute, 20)),
    Window('30 min', TumblingWindow(minute, 30)),
    Window('40 min', TumblingWindow(minute, 40)))
"""


@pytest.fixture(scope="module")
def device_batch():
    """One reading per device per second for 4 hyper-periods (2h each)."""
    rng = np.random.default_rng(17)
    horizon = 4 * 7200
    n_devices = 3
    timestamps = np.repeat(np.arange(horizon), n_devices)
    keys = np.tile(np.arange(n_devices), horizon)
    values = rng.normal(21.0, 4.0, horizon * n_devices)
    return make_batch(
        timestamps, values, keys=keys, num_keys=n_devices, horizon=horizon
    )


@pytest.fixture(scope="module")
def planned():
    return plan_query(PAPER_QUERY)


class TestPaperScenario:
    def test_three_plans_identical_results(self, planned, device_batch):
        original = execute_plan(planned.original, device_batch)
        rewritten = execute_plan(planned.rewritten, device_batch)
        factors = execute_plan(planned.with_factors, device_batch)
        assert results_equal(original, rewritten)
        assert results_equal(original, factors)

    def test_work_strictly_decreases(self, planned, device_batch):
        original = execute_plan(planned.original, device_batch)
        rewritten = execute_plan(planned.rewritten, device_batch)
        factors = execute_plan(planned.with_factors, device_batch)
        assert (
            factors.stats.total_pairs
            < rewritten.stats.total_pairs
            < original.stats.total_pairs
        )

    def test_min_values_are_true_minima(self, planned, device_batch):
        result = execute_plan(planned.original, device_batch)
        window = Window(1200, 1200, name="20 min")
        array = result.results[window]
        # Spot-check instance 0 of device 0 against NumPy.
        mask = (device_batch.timestamps < 1200) & (device_batch.keys == 0)
        assert array[0, 0] == pytest.approx(
            float(device_batch.values[mask].min())
        )

    def test_factor_window_invisible_in_results(self, planned, device_batch):
        factors = execute_plan(planned.with_factors, device_batch)
        assert Window(600, 600) not in factors.results

    def test_per_device_independence(self, planned, device_batch):
        """Each device's minima depend only on that device's events."""
        result = execute_plan(planned.with_factors, device_batch)
        window = Window(1200, 1200, name="20 min")
        for device in range(3):
            mask = (device_batch.timestamps < 1200) & (
                device_batch.keys == device
            )
            assert result.results[window][device, 0] == pytest.approx(
                float(device_batch.values[mask].min())
            )


class TestTrillRendering:
    def test_best_plan_renders_like_figure_2c(self, planned):
        from repro.plans.render import to_trill

        text = to_trill(planned.best_plan)
        # Factor window first, then the user windows read sub-aggregates.
        assert ".Factor(" in text
        assert text.count("from sub-aggregates") == 3
