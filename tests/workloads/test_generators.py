"""Tests for the RandomGen / SequentialGen window-set generators."""

import pytest

from repro.errors import InvalidWindowError
from repro.workloads.generators import (
    DEFAULT_SEED_RANGES,
    DEFAULT_SEED_SLIDES,
    RandomGen,
    SequentialGen,
    make_generator,
)


class TestRandomGen:
    def test_deterministic_per_seed(self):
        gen = RandomGen()
        a = gen.generate(5, tumbling=True, seed=1)
        b = gen.generate(5, tumbling=True, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        gen = RandomGen()
        sets = {gen.generate(5, tumbling=True, seed=s) for s in range(8)}
        assert len(sets) > 1

    def test_tumbling_windows_are_seed_multiples(self):
        gen = RandomGen()
        for seed in range(5):
            for window in gen.generate(5, tumbling=True, seed=seed):
                assert window.is_tumbling
                multipliers = [
                    window.range // r0
                    for r0 in DEFAULT_SEED_RANGES
                    if window.range % r0 == 0
                ]
                # Algorithm 6 avoids r = r0 (multiplier >= 2).
                assert any(2 <= m <= 50 for m in multipliers)

    def test_hopping_windows_have_range_twice_slide(self):
        gen = RandomGen()
        for window in gen.generate(6, tumbling=False, seed=3):
            assert window.range == 2 * window.slide
            assert any(
                window.slide % s0 == 0 and 2 <= window.slide // s0 <= 50
                for s0 in DEFAULT_SEED_SLIDES
            )

    def test_requested_size(self):
        gen = RandomGen()
        for size in (1, 5, 10, 20):
            assert len(gen.generate(size, tumbling=True, seed=0)) == size

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidWindowError):
            RandomGen().generate(0, tumbling=True, seed=0)

    def test_impossible_size_detected(self):
        # Only 2 distinct windows exist for this configuration.
        gen = RandomGen(seed_ranges=(5,), kr=3)
        with pytest.raises(InvalidWindowError):
            gen.generate(5, tumbling=True, seed=0)


class TestSequentialGen:
    def test_sequential_multipliers(self):
        gen = SequentialGen(seed_ranges=(10,))
        windows = gen.generate(4, tumbling=True, seed=0)
        assert [w.range for w in windows] == [20, 30, 40, 50]

    def test_hopping_sequential(self):
        gen = SequentialGen(seed_slides=(5,))
        windows = gen.generate(3, tumbling=False, seed=0)
        assert [(w.range, w.slide) for w in windows] == [
            (20, 10),
            (30, 15),
            (40, 20),
        ]

    def test_deterministic_per_seed(self):
        gen = SequentialGen()
        assert gen.generate(5, True, seed=4) == gen.generate(5, True, seed=4)

    def test_size_exceeding_multiplier_rejected(self):
        gen = SequentialGen(kr=5)
        with pytest.raises(InvalidWindowError):
            gen.generate(5, tumbling=True, seed=0)

    def test_all_cost_model_valid(self):
        gen = SequentialGen()
        for tumbling in (True, False):
            windows = gen.generate(8, tumbling=tumbling, seed=2)
            windows.validate_for_cost_model()


class TestMakeGenerator:
    def test_names(self):
        assert isinstance(make_generator("random"), RandomGen)
        assert isinstance(make_generator("sequential"), SequentialGen)
        assert isinstance(make_generator("r"), RandomGen)
        assert isinstance(make_generator("s"), SequentialGen)

    def test_unknown_rejected(self):
        with pytest.raises(InvalidWindowError):
            make_generator("zipfian")
