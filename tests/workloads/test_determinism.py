"""Every workload generator is a pure function of its seed.

The shared RNG plumbing (:mod:`repro.workloads.rng`) is what lets a
scenario file commit one expected digest: no generator touches
module-level RNG state, and an unseeded draw is a loud error, never a
silent source of irreproducibility.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.workloads import (
    DOMAIN_STREAMS,
    RandomGen,
    SequentialGen,
    constant_rate_stream,
    debs_like_stream,
    seeded_pyrandom,
    seeded_rng,
    zipf_stream,
)

STREAMS = {
    "constant_rate": lambda seed: constant_rate_stream(
        500, num_keys=8, rate=2, seed=seed
    ),
    "zipf": lambda seed: zipf_stream(500, 16, s=1.3, rate=3, seed=seed),
    "debs_like": lambda seed: debs_like_stream(500, num_keys=8, seed=seed),
    **{
        name: (lambda seed, build=build: build(500, num_keys=16, seed=seed))
        for name, build in DOMAIN_STREAMS.items()
    },
}


@pytest.mark.parametrize("name", sorted(STREAMS))
class TestStreamDeterminism:
    def test_same_seed_bit_identical(self, name):
        a = STREAMS[name](7)
        b = STREAMS[name](7)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
        np.testing.assert_array_equal(a.keys, b.keys)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.horizon == b.horizon

    def test_different_seeds_differ(self, name):
        a = STREAMS[name](7)
        b = STREAMS[name](8)
        assert not (
            np.array_equal(a.keys, b.keys)
            and np.array_equal(a.values, b.values)
        ), f"{name} ignored its seed"


class TestDomainShapes:
    """Whole-number values are the library's float-determinism
    contract: integer partial sums merge exactly under any
    re-association (resharding, rebalance, recovery)."""

    @pytest.mark.parametrize("name", sorted(DOMAIN_STREAMS))
    def test_values_are_whole_numbers(self, name):
        batch = DOMAIN_STREAMS[name](2000, seed=5)
        np.testing.assert_array_equal(batch.values, np.round(batch.values))

    @pytest.mark.parametrize("name", sorted(DOMAIN_STREAMS))
    def test_sorted_and_in_key_space(self, name):
        batch = DOMAIN_STREAMS[name](2000, seed=5)
        assert np.all(np.diff(batch.timestamps) >= 0)
        assert batch.keys.min() >= 0
        assert batch.keys.max() < batch.num_keys
        assert batch.horizon == int(batch.timestamps[-1]) + 1


class TestGeneratorSeeding:
    def test_workload_generators_deterministic(self):
        for cls in (RandomGen, SequentialGen):
            gen = cls()
            for tumbling in (False, True):
                a = gen.generate(4, tumbling, seed=11)
                b = gen.generate(4, tumbling, seed=11)
                assert [(w.range, w.slide) for w in a] == [
                    (w.range, w.slide) for w in b
                ], f"{cls.name} is not a pure function of its seed"

    def test_unseeded_draw_is_loud(self):
        with pytest.raises(ExecutionError, match="explicit seed"):
            seeded_rng(None)
        with pytest.raises(ExecutionError, match="explicit seed"):
            seeded_pyrandom(None)
