"""Tests for synthetic and DEBS-like stream generators."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.workloads.debs import MF01_BASE_LEVEL, debs_like_stream, real_32m
from repro.workloads.streams import (
    constant_rate_stream,
    synthetic_1m,
    synthetic_10m,
)


class TestConstantRateStream:
    def test_one_event_per_tick(self):
        batch = constant_rate_stream(100)
        assert list(batch.timestamps) == list(range(100))
        assert batch.horizon == 100

    def test_rate_packs_events(self):
        batch = constant_rate_stream(100, rate=4)
        assert batch.horizon == 25
        # Exactly 4 events per tick.
        _, counts = np.unique(batch.timestamps, return_counts=True)
        assert np.all(counts == 4)

    def test_keys_round_robin(self):
        batch = constant_rate_stream(12, num_keys=3)
        assert list(batch.keys[:6]) == [0, 1, 2, 0, 1, 2]
        assert batch.num_keys == 3

    def test_deterministic(self):
        a = constant_rate_stream(50, seed=9)
        b = constant_rate_stream(50, seed=9)
        np.testing.assert_array_equal(a.values, b.values)

    def test_validation(self):
        with pytest.raises(ExecutionError):
            constant_rate_stream(0)
        with pytest.raises(ExecutionError):
            constant_rate_stream(10, rate=0)

    def test_presets_scale(self):
        assert synthetic_1m(scale=0.001).num_events == 1000
        assert synthetic_10m(scale=0.0001).num_events == 1000


class TestDebsLikeStream:
    def test_constant_sampling_rate(self):
        batch = debs_like_stream(200)
        assert list(batch.timestamps) == list(range(200))

    def test_values_near_base_level(self):
        batch = debs_like_stream(5000)
        mean = float(np.mean(batch.values))
        assert abs(mean - MF01_BASE_LEVEL) < 1500

    def test_bursts_present(self):
        batch = debs_like_stream(50_000, burst_probability=0.01)
        spikes = np.sum(batch.values > MF01_BASE_LEVEL + 1500)
        assert spikes > 0

    def test_deterministic(self):
        a = debs_like_stream(100, seed=5)
        b = debs_like_stream(100, seed=5)
        np.testing.assert_array_equal(a.values, b.values)

    def test_multi_key(self):
        batch = debs_like_stream(10, num_keys=2)
        assert set(batch.keys) == {0, 1}

    def test_preset_scale(self):
        assert real_32m(scale=1e-5).num_events == 320
