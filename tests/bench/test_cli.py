"""Tests for the command-line interface."""

import pytest

from repro.bench.cli import build_parser, main

QUERY = (
    "SELECT MIN(T) FROM Input GROUP BY WINDOWS("
    "TUMBLING(minute, 20), TUMBLING(minute, 30), TUMBLING(minute, 40))"
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(["optimize", QUERY, "--trill"])
        assert args.query == QUERY
        assert args.trill


class TestOptimizeCommand:
    def test_prints_summary_and_tree(self, capsys):
        assert main(["optimize", QUERY]) == 0
        out = capsys.readouterr().out
        assert "predicted speedup" in out
        assert "Union" in out

    def test_trill_output(self, capsys):
        assert main(["optimize", QUERY, "--trill"]) == 0
        assert ".Tumbling(" in capsys.readouterr().out

    def test_no_factors(self, capsys):
        assert main(["optimize", QUERY, "--no-factors"]) == 0
        out = capsys.readouterr().out
        assert "w/ factor windows" not in out


class TestListCommand:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig11", "fig12", "fig13", "fig19", "table1", "table3"):
            assert name in out


class TestExperimentCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_fig12_runs(self, capsys):
        assert main(["experiment", "fig12", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "optimization overhead" in out

    def test_fig19_runs_small(self, capsys):
        code = main(
            ["experiment", "fig19", "--events", "4000", "--runs", "1"]
        )
        assert code == 0
        assert "Pearson r" in capsys.readouterr().out

    def test_table1_runs_small(self, capsys):
        code = main(
            ["experiment", "table1", "--events", "4000", "--runs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "R-5-tumbling" in out and "S-10-hopping" in out


class TestEnginesCommand:
    def test_lists_registered_paths(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("columnar", "columnar-panes", "streaming", "streaming-chunked"):
            assert name in out

    def test_annotates_query_plan(self, capsys):
        query = (
            "SELECT DeviceID, System.Window().Id, Min(T) AS MinTemp "
            "FROM Input TIMESTAMP BY EntryTime "
            "GROUP BY DeviceID, Windows("
            "Window('20 min', TumblingWindow(minute, 20)), "
            "Window('40 min', TumblingWindow(minute, 40)))"
        )
        assert main(["engines", "--query", query]) == 0
        out = capsys.readouterr().out
        assert "engine=columnar-panes" in out
        assert "via panes[p=" in out
