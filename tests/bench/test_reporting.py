"""Tests for text reporting."""

from repro.bench.harness import BoostSummary
from repro.bench.reporting import (
    format_boost_summary_table,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["a", "long_header"], [["x", 1], ["yyyy", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        # Separator row of dashes matches widths.
        assert set(lines[2].replace("  ", "")) == {"-"}
        assert len(lines) == 5

    def test_wide_cells_expand_columns(self):
        text = format_table(["h"], [["wide content"]])
        header, sep, row = text.splitlines()
        assert len(sep) == len("wide content")


class TestFormatSeries:
    def test_runs_and_scaling(self):
        text = format_series(
            {"Original": [1_000_000.0, 2_000_000.0], "Optimized": [3_000_000.0]},
            title="Fig",
        )
        assert "Fig" in text
        assert "1,000" in text  # 1e6 events/s → 1,000 K events/s
        assert "-" in text.splitlines()[-1]  # missing point rendered as dash

    def test_row_count(self):
        text = format_series({"a": [1.0, 2.0, 3.0]})
        assert len(text.splitlines()) == 2 + 3


class TestBoostSummaryTable:
    def test_render(self):
        summary = BoostSummary(
            setup="R-5-tumbling",
            mean_without=1.21,
            max_without=1.92,
            mean_with=1.85,
            max_with=2.54,
            runs=10,
        )
        text = format_boost_summary_table([summary], title="Table I")
        assert "Table I" in text
        assert "R-5-tumbling" in text
        assert "1.21x" in text and "2.54x" in text
