"""Tests for ASCII chart rendering."""

import pytest

from repro.bench.charts import bar_chart, scatter_plot, sparkline


class TestBarChart:
    def test_groups_and_bars(self):
        text = bar_chart(
            {"Original": [100.0, 200.0], "Optimized": [400.0, 300.0]},
            title="Fig",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig"
        assert sum(1 for l in lines if l.startswith("run ")) == 2
        assert sum(1 for l in lines if "█" in l) == 4

    def test_longest_bar_is_peak(self):
        text = bar_chart({"a": [10.0], "b": [100.0]}, width=20)
        bars = {
            line.split("|")[0].strip(): line.split("|")[1]
            for line in text.splitlines()
            if "|" in line
        }
        assert bars["b"].count("█") == 20
        assert bars["a"].count("█") == 2

    def test_nan_rendered_as_na(self):
        text = bar_chart({"a": [float("nan")]})
        assert "(n/a)" in text

    def test_missing_points_tolerated(self):
        text = bar_chart({"a": [1.0, 2.0], "b": [3.0]})
        assert "(n/a)" in text

    def test_empty_series(self):
        assert bar_chart({}, title="T") == "T"


class TestScatterPlot:
    def test_contains_points_and_diagonal(self):
        text = scatter_plot([1.0, 2.0, 3.0], [1.1, 2.2, 2.9], title="Fig 19")
        assert "Fig 19" in text
        assert "o" in text
        assert "." in text  # the y=x reference

    def test_dimensions(self):
        text = scatter_plot([1.0, 2.0], [2.0, 1.0], width=30, height=10)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        assert len(rows) == 10
        assert all(len(r) == 31 for r in rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_plot([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            scatter_plot([], [])


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
