"""Tests for the ``bench compare`` regression gate."""

import json

import pytest

from repro.bench.compare import (
    MetricDelta,
    compare_files,
    diff_reports,
    format_comparison,
)


def payload(throughput, seconds, physical, speedup=2.0):
    return {
        "benchmark": "demo",
        "events": 30000,
        "series": [
            {
                "shards": 4,
                "throughput": throughput,
                "switch_seconds": seconds,
                "total_physical": physical,
                "speedup_vs_1shard": speedup,
            }
        ],
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestDiffReports:
    def test_classifies_directions(self):
        deltas = diff_reports(
            payload(100.0, 1.0, 500), payload(120.0, 2.0, 500)
        )
        by_key = {d.path.rsplit(".", 1)[-1]: d for d in deltas}
        assert by_key["throughput"].direction == "higher"
        assert by_key["switch_seconds"].direction == "lower"
        assert by_key["throughput"].change == pytest.approx(0.2)
        assert by_key["switch_seconds"].change == pytest.approx(-1.0)

    def test_parameters_are_not_metrics(self):
        deltas = diff_reports(
            {"events": 100, "shards": 4}, {"events": 900, "shards": 8}
        )
        assert deltas == []

    def test_one_sided_structure_skipped(self):
        deltas = diff_reports(
            {"a": {"throughput": 1.0}},
            {"b": {"throughput": 9.0}},
        )
        assert deltas == []

    def test_portability(self):
        assert MetricDelta("x.speedup_vs_1shard", 1, 2, "higher").portable
        assert MetricDelta("x.total_physical", 1, 2, "lower").portable
        assert not MetricDelta("x.throughput", 1, 2, "higher").portable


class TestCompareFiles:
    def test_no_regression_exits_zero(self, tmp_path):
        a = write(tmp_path, "a.json", payload(100.0, 1.0, 500))
        b = write(tmp_path, "b.json", payload(110.0, 0.9, 500))
        code, text = compare_files(a, b)
        assert code == 0
        assert "no regressions" in text

    def test_throughput_regression_exits_nonzero(self, tmp_path):
        a = write(tmp_path, "a.json", payload(100.0, 1.0, 500))
        b = write(tmp_path, "b.json", payload(70.0, 1.0, 500))
        code, text = compare_files(a, b, threshold=0.2)
        assert code == 1
        assert "regressed" in text

    def test_threshold_tolerates_noise(self, tmp_path):
        a = write(tmp_path, "a.json", payload(100.0, 1.0, 500))
        b = write(tmp_path, "b.json", payload(70.0, 1.0, 500))
        code, _ = compare_files(a, b, threshold=0.5)
        assert code == 0

    def test_zero_baseline_cannot_hide_regression(self, tmp_path):
        """A counter growing off a zero baseline has no finite relative
        scale — it must always trip the gate, never slip under a
        percentage threshold."""
        a = write(tmp_path, "a.json", payload(100.0, 1.0, 0))
        b = write(tmp_path, "b.json", payload(100.0, 1.0, 1_000_000))
        code, _ = compare_files(a, b, threshold=0.99, portable_only=True)
        assert code == 1
        # Zero → zero is no movement; zero → positive on a
        # higher-is-better metric is an improvement.
        same = write(tmp_path, "c.json", payload(100.0, 1.0, 0))
        code, _ = compare_files(a, same, threshold=0.2)
        assert code == 0
        grew = write(
            tmp_path, "d.json", payload(100.0, 1.0, 0, speedup=5.0)
        )
        base0 = write(
            tmp_path, "e.json", payload(100.0, 1.0, 0, speedup=0.0)
        )
        code, _ = compare_files(base0, grew, threshold=0.2)
        assert code == 0

    def test_lower_is_better_regression(self, tmp_path):
        a = write(tmp_path, "a.json", payload(100.0, 1.0, 500))
        b = write(tmp_path, "b.json", payload(100.0, 1.6, 500))
        code, _ = compare_files(a, b, threshold=0.2)
        assert code == 1

    def test_portable_only_ignores_wall_clock(self, tmp_path):
        """Cross-hardware mode: a slower machine must not fail the
        gate, but more (deterministic) physical work must."""
        a = write(tmp_path, "a.json", payload(100.0, 1.0, 500))
        slower = write(tmp_path, "b.json", payload(30.0, 5.0, 500))
        code, _ = compare_files(a, slower, threshold=0.2, portable_only=True)
        assert code == 0
        wasteful = write(tmp_path, "c.json", payload(100.0, 1.0, 900))
        code, _ = compare_files(
            a, wasteful, threshold=0.2, portable_only=True
        )
        assert code == 1

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.bench.cli import main

        a = write(tmp_path, "a.json", payload(100.0, 1.0, 500))
        b = write(tmp_path, "b.json", payload(50.0, 1.0, 500))
        assert main(["bench", "compare", str(a), str(b)]) == 1
        assert (
            main(
                [
                    "bench",
                    "compare",
                    str(a),
                    str(b),
                    "--threshold",
                    "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "benchmark comparison" in out


class TestFormatting:
    def test_regressions_flagged(self):
        deltas = diff_reports(
            payload(100.0, 1.0, 500), payload(50.0, 1.0, 500)
        )
        text = format_comparison(deltas, threshold=0.2)
        flagged = [
            line for line in text.splitlines() if line.startswith("!")
        ]
        assert len(flagged) == 1
        assert "throughput" in flagged[0]
