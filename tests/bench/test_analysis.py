"""Tests for the statistical helpers (cross-checked against SciPy)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.bench.analysis import (
    SampleStats,
    best_fit_line,
    geometric_mean,
    pearson_r,
)


class TestPearsonR:
    def test_matches_scipy(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, 100)
        y = 2 * x + rng.normal(0, 0.5, 100)
        expected = scipy_stats.pearsonr(x, y).statistic
        assert pearson_r(x, y) == pytest.approx(expected)

    def test_perfect_correlation(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson_r(x, [2 * v for v in x]) == pytest.approx(1.0)
        assert pearson_r(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_constant_series_is_nan(self):
        assert np.isnan(pearson_r([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            pearson_r([1.0], [2.0])
        with pytest.raises(ValueError):
            pearson_r([1.0, 2.0], [1.0, 2.0, 3.0])


class TestBestFitLine:
    def test_recovers_line(self):
        x = np.arange(10, dtype=float)
        slope, intercept = best_fit_line(x, 3 * x + 1)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(1.0)


class TestSampleStats:
    def test_mean_and_std(self):
        stats = SampleStats.of([2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.std == pytest.approx(np.std([2.0, 4.0, 6.0]))
        assert stats.count == 3

    def test_empty(self):
        stats = SampleStats.of([])
        assert stats.count == 0 and stats.mean == 0.0


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])
