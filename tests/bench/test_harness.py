"""Tests for the benchmark harness (small streams; behaviour only)."""

import pytest

from repro.aggregates.registry import MEDIAN, MIN
from repro.bench.harness import BoostSummary, PlanRun, compare_plans
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream


@pytest.fixture(scope="module")
def batch():
    return constant_rate_stream(5_000)


class TestComparePlans:
    def test_all_variants_measured(self, batch, example7_windows):
        result = compare_plans(
            example7_windows, MIN, batch, include_scotty=True
        )
        names = [run.name for run in result.runs()]
        assert names == [
            "original",
            "rewritten",
            "rewritten+factors",
            "scotty",
        ]

    def test_work_reductions_match_cost_model_direction(
        self, batch, example7_windows
    ):
        result = compare_plans(example7_windows, MIN, batch)
        assert result.work_reduction_without_factors > 1.0
        assert (
            result.work_reduction_with_factors
            >= result.work_reduction_without_factors
        )

    def test_costs_recorded(self, batch, example7_windows):
        result = compare_plans(example7_windows, MIN, batch)
        assert result.original.cost == 360
        assert result.rewritten.cost == 246
        assert result.with_factors.cost == 150

    def test_holistic_only_original(self, batch, example7_windows):
        result = compare_plans(example7_windows, MEDIAN, batch)
        assert result.rewritten is None
        assert result.with_factors is None
        assert result.boost_with_factors == 1.0

    def test_scotty_skipped_for_holistic(self, batch, example7_windows):
        result = compare_plans(
            example7_windows, MEDIAN, batch, include_scotty=True
        )
        assert result.scotty is None

    def test_semantics_override_respected(self, batch, example7_windows):
        result = compare_plans(
            example7_windows,
            MIN,
            batch,
            semantics=CoverageSemantics.PARTITIONED_BY,
        )
        assert result.optimization.semantics is (
            CoverageSemantics.PARTITIONED_BY
        )

    def test_streaming_engine_option(self, example7_windows):
        small = constant_rate_stream(500)
        result = compare_plans(example7_windows, MIN, small, engine="streaming")
        assert result.original.pairs > result.with_factors.pairs


class TestPlanRun:
    def test_boost_over(self):
        fast = PlanRun("a", throughput=200.0, pairs=1, wall_seconds=1.0)
        slow = PlanRun("b", throughput=100.0, pairs=1, wall_seconds=2.0)
        assert fast.boost_over(slow) == pytest.approx(2.0)

    def test_boost_over_zero(self):
        fast = PlanRun("a", throughput=200.0, pairs=1, wall_seconds=1.0)
        zero = PlanRun("b", throughput=0.0, pairs=1, wall_seconds=0.0)
        assert fast.boost_over(zero) == float("inf")


class TestBoostSummary:
    def test_from_comparisons(self, batch, example7_windows):
        comparisons = [
            compare_plans(example7_windows, MIN, batch) for _ in range(2)
        ]
        summary = BoostSummary.from_comparisons("S-3-tumbling", comparisons)
        assert summary.runs == 2
        assert summary.max_without >= summary.mean_without > 0
        assert summary.max_with >= summary.mean_with > 0
        row = summary.row()
        assert row[0] == "S-3-tumbling"
        assert all(cell.endswith("x") for cell in row[1:])
