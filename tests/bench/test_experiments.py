"""Tests for the experiment definitions (tiny streams, 2 runs)."""

import pytest

from repro.bench.experiments import (
    boost_summary_table,
    cost_model_correlation,
    make_stream,
    optimizer_overhead,
    render_correlation,
    render_overhead,
    run_panel,
    scotty_comparison,
    throughput_panels,
)

EVENTS = 6_000
RUNS = 2


class TestMakeStream:
    def test_synthetic(self):
        batch = make_stream("synthetic", 100)
        assert batch.num_events == 100

    def test_real(self):
        batch = make_stream("real", 100)
        assert float(batch.values.mean()) > 1000  # mf01-scale values


class TestRunPanel:
    def test_panel_structure(self):
        batch = make_stream("synthetic", EVENTS)
        panel = run_panel("random", True, 3, batch, runs=RUNS)
        assert len(panel.comparisons) == RUNS
        assert panel.setup_code == "R-3-tumbling"
        assert "partitioned by" in panel.label

    def test_series_keys(self):
        batch = make_stream("synthetic", EVENTS)
        panel = run_panel("sequential", False, 3, batch, runs=RUNS)
        series = panel.series()
        assert set(series) == {
            "Original Plan",
            "Plan w/o Factor Windows",
            "Plan w/ Factor Windows",
        }
        assert all(len(v) == RUNS for v in series.values())

    def test_render(self):
        batch = make_stream("synthetic", EVENTS)
        panel = run_panel("random", True, 3, batch, runs=RUNS)
        text = panel.render()
        assert "RandomGen" in text


class TestThroughputPanels:
    def test_four_panels(self):
        panels = throughput_panels(set_size=3, events=EVENTS, runs=RUNS)
        assert len(panels) == 4
        codes = {p.setup_code for p in panels}
        assert codes == {
            "R-3-tumbling",
            "R-3-hopping",
            "S-3-tumbling",
            "S-3-hopping",
        }


class TestSummaries:
    def test_boost_table_shape(self):
        summaries = boost_summary_table(
            set_sizes=(3,), events=EVENTS, runs=RUNS
        )
        assert len(summaries) == 4  # 2 generators x 1 size x 2 kinds
        assert all(s.runs == RUNS for s in summaries)


class TestOverhead:
    def test_points_and_render(self):
        points = optimizer_overhead(set_sizes=(3, 5), runs=RUNS)
        # 2 generators x 2 sizes x 2 semantics.
        assert len(points) == 8
        assert all(p.stats.mean >= 0 for p in points)
        text = render_overhead(points)
        assert "R-3" in text and "S-5" in text


class TestScottyComparison:
    def test_includes_scotty_series(self):
        panels = scotty_comparison(set_size=3, events=EVENTS, runs=RUNS)
        series = panels[0].series(include_scotty=True)
        assert set(series) == {"Flink", "Scotty", "Factor Windows"}


class TestCorrelation:
    def test_pairs_deterministic_correlation(self):
        # With the pair-count metric, observed speedup equals the cost
        # model's prediction up to stream-boundary effects: r ~ 1.
        panels = cost_model_correlation(
            set_sizes=(3,), events=EVENTS, runs=4, use_pairs=True
        )
        assert len(panels) == 4
        for panel in panels:
            if len(panel.predicted) >= 2:
                assert panel.r == pytest.approx(1.0, abs=0.08)

    def test_render(self):
        panels = cost_model_correlation(
            set_sizes=(3,), events=EVENTS, runs=RUNS, use_pairs=True
        )
        text = render_correlation(panels)
        assert "Pearson r" in text
