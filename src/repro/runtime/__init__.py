"""The live query runtime: long-lived sessions over unbounded streams.

This package composes the layers the rest of the repo builds — the SQL
front end, the shared-workload optimizer, the chunked streaming engine,
and the out-of-order front door — into long-lived session objects:

* :class:`QuerySession` — one :class:`~repro.runtime.core.SessionCore`
  behind one reorder buffer: the single-process service shape of the
  paper's motivating Azure IoT Central scenario.
* :class:`ShardedSession` — N cores over a hash-partitioned key space
  behind one coordinator clock, with pluggable execution backends
  (deterministic serial, or a ``multiprocessing`` worker pool) and a
  partial-merge coordinator (DESIGN.md §7, invariant 10).

See DESIGN.md §6 for the generation/switch model and invariant 9 for
the observational-equivalence contract.
"""

from .core import (
    DEFAULT_RETIRED_RESULT_CAP,
    RegisterAck,
    SessionCore,
    ShardReport,
)
from .results import (
    PartialResults,
    PlanSwitchRecord,
    WindowResults,
    finalize_partials,
)
from .session import QuerySession
from .sharding import (
    ProcessShardBackend,
    SerialShardBackend,
    ShardedSession,
)

__all__ = [
    "DEFAULT_RETIRED_RESULT_CAP",
    "PartialResults",
    "PlanSwitchRecord",
    "ProcessShardBackend",
    "QuerySession",
    "RegisterAck",
    "SerialShardBackend",
    "SessionCore",
    "ShardReport",
    "ShardedSession",
    "WindowResults",
    "finalize_partials",
]
