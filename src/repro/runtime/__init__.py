"""The live query runtime: long-lived sessions over unbounded streams.

This package composes the layers the rest of the repo builds — the SQL
front end, the shared-workload optimizer, the chunked streaming engine,
and the out-of-order front door — into one long-lived object,
:class:`QuerySession`: the service shape of the paper's motivating
Azure IoT Central scenario, where dashboards open and close
continuously over a single device stream.

See DESIGN.md §6 for the generation/switch model and invariant 9 for
the observational-equivalence contract.
"""

from .session import (
    PlanSwitchRecord,
    QuerySession,
    WindowResults,
)

__all__ = [
    "PlanSwitchRecord",
    "QuerySession",
    "WindowResults",
]
