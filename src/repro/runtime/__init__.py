"""The live query runtime: long-lived sessions over unbounded streams.

This package composes the layers the rest of the repo builds — the SQL
front end, the shared-workload optimizer, the chunked streaming engine,
and the out-of-order front door — into long-lived session objects:

* :class:`QuerySession` — one :class:`~repro.runtime.core.SessionCore`
  behind one reorder buffer: the single-process service shape of the
  paper's motivating Azure IoT Central scenario.
* :class:`ShardedSession` — N cores over a hash-partitioned key space
  behind one coordinator clock, with pluggable execution backends
  (deterministic serial; a ``multiprocessing`` worker pool over pipes;
  a shared-memory ring data plane — see ``docs/backends.md`` for the
  backend contract) and a partial-merge coordinator (DESIGN.md §7,
  invariant 10).

Both sessions take ``async_ingest=True`` to put a bounded queue and a
background pump thread in front of ingestion — pushes return without
waiting for flushes, backpressure instead of loss (DESIGN.md §8,
invariant 11).

Both sessions are also *durable*: ``session.snapshot(path)`` captures
the whole session at a safe watermark and ``Session.restore(path)``
resumes it bit-identically (DESIGN.md §9, invariant 12) — see
:mod:`repro.runtime.checkpoint` for the format,
:mod:`repro.runtime.faults` for the deterministic fault-injection
harness, and ``docs/durability.md`` for the crash-recovery story.

See DESIGN.md §6 for the generation/switch model and invariant 9 for
the observational-equivalence contract.
"""

from .checkpoint import (
    CheckpointStore,
    Snapshot,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .core import (
    DEFAULT_RETIRED_RESULT_CAP,
    RegisterAck,
    SessionCore,
    ShardReport,
)
from .faults import Fault, FaultPlan
from .results import (
    PartialResults,
    PlanSwitchRecord,
    WindowResults,
    finalize_partials,
)
from .ingest import DEFAULT_INGEST_HIGH_WATERMARK, IngestStats
from .session import QuerySession
from .sharding import (
    DEFAULT_CONTROL_TIMEOUT,
    ProcessShardBackend,
    SerialShardBackend,
    ShardedSession,
    SharedMemoryShardBackend,
)
from .shm_ring import RingSpec, ShmRing

__all__ = [
    "CheckpointStore",
    "DEFAULT_CONTROL_TIMEOUT",
    "DEFAULT_INGEST_HIGH_WATERMARK",
    "DEFAULT_RETIRED_RESULT_CAP",
    "Fault",
    "FaultPlan",
    "IngestStats",
    "PartialResults",
    "PlanSwitchRecord",
    "ProcessShardBackend",
    "QuerySession",
    "RegisterAck",
    "RingSpec",
    "SerialShardBackend",
    "SessionCore",
    "ShardReport",
    "ShardedSession",
    "SharedMemoryShardBackend",
    "ShmRing",
    "Snapshot",
    "WindowResults",
    "finalize_partials",
    "latest_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]
