"""The live query runtime: long-lived sessions over unbounded streams.

This package composes the layers the rest of the repo builds — the SQL
front end, the shared-workload optimizer, the chunked streaming engine,
and the out-of-order front door — into long-lived session objects:

* :class:`QuerySession` — one :class:`~repro.runtime.core.SessionCore`
  behind one reorder buffer: the single-process service shape of the
  paper's motivating Azure IoT Central scenario.
* :class:`ShardedSession` — N cores over a hash-partitioned key space
  behind one coordinator clock, with pluggable execution backends
  (deterministic serial; a ``multiprocessing`` worker pool over pipes;
  a shared-memory ring data plane — see ``docs/backends.md`` for the
  backend contract) and a partial-merge coordinator (DESIGN.md §7,
  invariant 10).

Both sessions take ``async_ingest=True`` to put a bounded queue and a
background pump thread in front of ingestion — pushes return without
waiting for flushes, backpressure instead of loss (DESIGN.md §8,
invariant 11).

See DESIGN.md §6 for the generation/switch model and invariant 9 for
the observational-equivalence contract.
"""

from .core import (
    DEFAULT_RETIRED_RESULT_CAP,
    RegisterAck,
    SessionCore,
    ShardReport,
)
from .results import (
    PartialResults,
    PlanSwitchRecord,
    WindowResults,
    finalize_partials,
)
from .ingest import DEFAULT_INGEST_HIGH_WATERMARK, IngestStats
from .session import QuerySession
from .sharding import (
    ProcessShardBackend,
    SerialShardBackend,
    ShardedSession,
    SharedMemoryShardBackend,
)
from .shm_ring import RingSpec, ShmRing

__all__ = [
    "DEFAULT_INGEST_HIGH_WATERMARK",
    "DEFAULT_RETIRED_RESULT_CAP",
    "IngestStats",
    "PartialResults",
    "PlanSwitchRecord",
    "ProcessShardBackend",
    "QuerySession",
    "RegisterAck",
    "RingSpec",
    "SerialShardBackend",
    "SessionCore",
    "ShardReport",
    "ShardedSession",
    "SharedMemoryShardBackend",
    "ShmRing",
    "WindowResults",
    "finalize_partials",
]
