"""Per-(aggregate, semantics) group operator runtime.

One :class:`GroupRuntime` owns the chunked operators of one shared
plan across generations: the current generation's operators, any
still-draining displaced operators, the providers-first advance order
spanning both, and the routing of emitted blocks to subscriptions —
finalized per-key blocks to :class:`~repro.runtime.results.Subscription`
and pre-finalize component blocks to
:class:`~repro.runtime.results.PartialSubscription` (the sharded
runtime's cross-key merge tap, DESIGN.md §7).
"""

from __future__ import annotations

import numpy as np

from ..core.multiquery import GroupKey
from ..engine.stats import ExecutionStats
from ..engine.streaming import (
    _ChunkedHolisticOperator,
    _ChunkedOperator,
    _ChunkedRawOperator,
    _ChunkedSubAggOperator,
)
from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan
from ..windows.window import Window
from .results import PartialSubscription, Subscription


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class GroupRuntime:
    """Operators of one (aggregate, semantics) group, across generations."""

    def __init__(self, key: GroupKey, core):
        self.key = key
        self.core = core
        self.stats = ExecutionStats()
        self.ops: dict[Window, _ChunkedOperator] = {}
        self.draining: list[_ChunkedOperator] = []
        self.advance_order: list[_ChunkedOperator] = []
        self.absorbers: list[_ChunkedOperator] = []
        self.subs_by_window: dict[Window, list[Subscription]] = {}
        self.psubs_by_window: dict[Window, list[PartialSubscription]] = {}

    # ------------------------------------------------------------------
    # Emission sinks: operator blocks → subscriptions
    # ------------------------------------------------------------------
    def sink(self, window: Window, m0: int, m1: int, block: np.ndarray) -> None:
        for sub in self.subs_by_window.get(window, ()):
            sub.accept(m0, m1, block)

    def partial_sink(
        self, window: Window, m0: int, m1: int, components: tuple
    ) -> None:
        for sub in self.psubs_by_window.get(window, ()):
            sub.accept(m0, m1, components)

    # ------------------------------------------------------------------
    # Generation switch
    # ------------------------------------------------------------------
    def rebuild(self, plan: LogicalPlan, watermark: int) -> tuple[int, int, int]:
        """Install ``plan`` as the new generation at ``watermark``.

        Returns ``(adopted, fresh, draining)`` operator counts.
        """
        core = self.core
        old_gen = self.ops
        new_ops: dict[Window, _ChunkedOperator] = {}
        adopted: set[Window] = set()
        for node in plan.topological_window_order():
            window, aggregate, provider = (
                node.window,
                node.aggregate,
                node.provider,
            )
            if provider is None:
                cls = (
                    _ChunkedRawOperator
                    if aggregate.mergeable
                    else _ChunkedHolisticOperator
                )
            else:
                cls = _ChunkedSubAggOperator
            old = old_gen.get(window)
            compatible = (
                old is not None
                and type(old) is cls
                and getattr(old, "provider", None) == provider
                and old.aggregate.name == aggregate.name
            )
            if compatible:
                start = old.start_instance
            else:
                if provider is None:
                    # Raw readers: first instance starting at/after the
                    # switch watermark — all of its events are still in
                    # (or ahead of) the reorder buffer.
                    start = _ceil_div(watermark, window.slide)
                else:
                    # Sub-aggregate readers: first instance whose whole
                    # covering set the (possibly fresh) provider can
                    # still deliver.
                    provider_op = new_ops[provider]
                    stride = window.slide // provider.slide
                    start = _ceil_div(provider_op.next_close, stride)
                if old is not None:
                    # Seamless handover: the displaced operator drains
                    # everything below the fresh start.
                    start = max(start, old.next_close)
            args = (window, aggregate, core.num_keys, None, self.stats)
            kwargs = dict(
                start_instance=start,
                sink=None if node.is_factor else self.sink,
                partial_sink=None if node.is_factor else self.partial_sink,
            )
            if provider is None:
                op = cls(*args, **kwargs)
            else:
                op = cls(provider, *args, **kwargs)
            op.gen_seq = core._next_seq()
            if compatible:
                op.adopt(old.handoff())
                adopted.add(window)
            new_ops[window] = op

        # Displaced operators drain; dropped providers are retained
        # (and capped) only while a draining consumer still needs them.
        fresh_draining: list[_ChunkedOperator] = []
        for window, old in old_gen.items():
            if window in adopted:
                continue
            replacement = new_ops.get(window)
            if replacement is not None:
                old.cap_instances(replacement.start_instance)
            else:
                old._dropped = True
            if replacement is None or not old.drained:
                fresh_draining.append(old)
        self.draining = [
            op for op in self.draining if not op.drained
        ] + fresh_draining
        self.ops = new_ops
        self._rewire()
        self.cleanup()
        return (
            len(adopted),
            len(new_ops) - len(adopted),
            len(self.draining),
        )

    def _rewire(self) -> None:
        """Rebuild consumer edges and the advance order across the
        current generation and every still-draining operator."""
        live = self.draining + list(self.ops.values())
        live.sort(key=lambda op: op.gen_seq)
        for op in live:
            op.consumers = []
        by_window: dict[Window, list[_ChunkedOperator]] = {}
        for op in live:
            by_window.setdefault(op.window, []).append(op)
        for op in live:
            provider = getattr(op, "provider", None)
            if provider is None:
                continue
            sources = by_window.get(provider)
            if not sources:
                raise ExecutionError(
                    f"{op.window} reads from {provider}, which has no "
                    "live operator"
                )
            for source in sources:
                source.consumers.append(op)
        self.advance_order = _toposort(live, by_window)
        # Dropped providers stay only as long as a draining consumer
        # still needs their instances; reverse topological order
        # resolves consumer caps before provider caps along chains.
        for op in reversed(self.advance_order):
            if getattr(op, "_dropped", False):
                needed = op.next_close
                for consumer in op.consumers:
                    if consumer.num_instances is None:
                        raise ExecutionError(
                            f"uncapped operator {consumer.window} reads "
                            f"from dropped window {op.window}"
                        )
                    needed = max(
                        needed,
                        (consumer.num_instances - 1) * consumer.stride
                        + consumer.multiplier,
                    )
                op.cap_instances(needed)
        self.absorbers = [
            op
            for op in self.advance_order
            if isinstance(op, (_ChunkedRawOperator, _ChunkedHolisticOperator))
        ]

    def cleanup(self) -> None:
        """Retire drained operators and detach them everywhere."""
        dead = {id(op) for op in self.draining if op.drained}
        if not dead:
            return
        self.draining = [op for op in self.draining if id(op) not in dead]
        self.advance_order = [
            op for op in self.advance_order if id(op) not in dead
        ]
        for op in self.advance_order:
            if op.consumers:
                op.consumers = [
                    c for c in op.consumers if id(c) not in dead
                ]
        self.absorbers = [
            op for op in self.absorbers if id(op) not in dead
        ]

    # ------------------------------------------------------------------
    # Steady-state processing
    # ------------------------------------------------------------------
    def absorb(
        self, ts: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        self.stats.events += int(ts.size)
        for op in self.absorbers:
            op.absorb(ts, keys, values)

    def advance(self, watermark: int) -> None:
        for op in self.advance_order:
            op.advance(watermark)
        if self.draining:
            self.cleanup()

    def max_retained_state(self) -> int:
        if not self.advance_order:
            return 0
        return max(op.max_retained for op in self.advance_order)


def _toposort(
    live: "list[_ChunkedOperator]",
    by_window: "dict[Window, list[_ChunkedOperator]]",
) -> "list[_ChunkedOperator]":
    """Order operators providers-first; generations of the same window
    stay in age order (an old operator's closes must reach a shared
    consumer before its replacement's)."""
    edges: dict[int, list[_ChunkedOperator]] = {}
    indegree: dict[int, int] = {id(op): 0 for op in live}

    def add_edge(src: _ChunkedOperator, dst: _ChunkedOperator) -> None:
        edges.setdefault(id(src), []).append(dst)
        indegree[id(dst)] += 1

    for op in live:
        for consumer in op.consumers:
            add_edge(op, consumer)
    for chain in by_window.values():
        for older, newer in zip(chain, chain[1:]):
            add_edge(older, newer)

    ready = sorted(
        (op for op in live if indegree[id(op)] == 0),
        key=lambda op: op.gen_seq,
    )
    order: list[_ChunkedOperator] = []
    while ready:
        op = ready.pop(0)
        order.append(op)
        woke = []
        for consumer in edges.get(id(op), ()):
            indegree[id(consumer)] -= 1
            if indegree[id(consumer)] == 0:
                woke.append(consumer)
        if woke:
            ready.extend(woke)
            ready.sort(key=lambda o: o.gen_seq)
    if len(order) != len(live):
        raise ExecutionError("cycle in operator graph across generations")
    return order
