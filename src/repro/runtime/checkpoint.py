"""Durable session snapshots (DESIGN.md §9, invariant 12).

A *snapshot* is a whole-session capture taken at a safe watermark: the
reorder buffer, every group's operator state and provider partials,
the subscription routing table, the retired-result archive, the
registered workload with its plan generation, and — in async mode —
the ingest-queue residue.  It generalizes the engine's
``handoff()``/``adopt()`` operator-state transplant
(:mod:`repro.engine.streaming`): where a plan switch transplants state
between operator generations *inside* one process, a snapshot
transplants the entire session across process lifetimes.  The contract
is the same in both directions — **bit-identical resumption**: a
session restored from a snapshot and fed the remainder of the stream
emits exactly what the uninterrupted session would have
(``tests/runtime/test_checkpoint.py`` holds this as a property across
every backend × ingest combination).

This module owns the *format*, not the capture: sessions assemble
their own payloads (:meth:`~repro.runtime.QuerySession.snapshot`,
:meth:`~repro.runtime.sharding.ShardedSession.snapshot`) and hand them
to :func:`write_checkpoint`.  On disk a checkpoint is::

    magic (6) | version (u16 LE) | sha256(body) (32) | body (pickle)

written atomically (temp file + ``os.replace``) so a crash mid-write
can never leave a truncated file that :func:`read_checkpoint` would
trust — a corrupt or torn file fails the checksum and raises, it never
restores garbage.  See ``docs/durability.md`` for the full format and
the safe-watermark rules.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ExecutionError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "Snapshot",
    "latest_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]

#: File magic — identifies a factor-windows checkpoint.
CHECKPOINT_MAGIC = b"RCKPT\x00"

#: Format version; bumped on any incompatible payload change.
CHECKPOINT_VERSION = 1

_VERSION_WORD = struct.Struct("<H")
_DIGEST_BYTES = 32
_HEADER_BYTES = len(CHECKPOINT_MAGIC) + _VERSION_WORD.size + _DIGEST_BYTES

#: Checkpoint filename shape used by :class:`CheckpointStore`.
_CKPT_NAME = re.compile(r"^ckpt-(\d{12})\.rckpt$")


@dataclass
class Snapshot:
    """One whole-session capture, in memory.

    ``kind`` names the session shape that produced it (``"query"`` or
    ``"sharded"`` — restore dispatches on it), ``watermark`` is the
    safe watermark of the cut, and ``payload`` is the session-assembled
    state graph (pickled wholesale, so shared references — e.g. the
    rate controller inside the rate observer — survive).  ``meta`` is
    caller-owned (the CLI stores its stream position there so
    ``restore`` can resume the synthetic stream deterministically).
    """

    kind: str
    watermark: int
    generation: int
    queries: tuple
    payload: dict
    meta: dict = field(default_factory=dict)


def write_checkpoint(snapshot: Snapshot, path: "str | Path") -> Path:
    """Serialize ``snapshot`` to ``path`` atomically; returns the path.

    The body is pickled first, its digest computed, and the whole file
    staged in a sibling temp file before one ``os.replace`` — readers
    only ever observe a complete checkpoint or the previous one.
    """
    path = Path(path)
    body = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(body).digest()
    blob = (
        CHECKPOINT_MAGIC
        + _VERSION_WORD.pack(CHECKPOINT_VERSION)
        + digest
        + body
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_checkpoint(path: "str | Path") -> Snapshot:
    """Load and verify one checkpoint file.

    Raises :class:`~repro.errors.ExecutionError` on a missing file, a
    foreign or truncated header, a version mismatch, or a checksum
    failure — a checkpoint either restores exactly or not at all.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise ExecutionError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(blob) < _HEADER_BYTES or not blob.startswith(CHECKPOINT_MAGIC):
        raise ExecutionError(f"{path} is not a factor-windows checkpoint")
    offset = len(CHECKPOINT_MAGIC)
    (version,) = _VERSION_WORD.unpack_from(blob, offset)
    if version != CHECKPOINT_VERSION:
        raise ExecutionError(
            f"{path}: checkpoint format v{version} is not supported "
            f"(this build reads v{CHECKPOINT_VERSION})"
        )
    offset += _VERSION_WORD.size
    digest = blob[offset : offset + _DIGEST_BYTES]
    body = blob[offset + _DIGEST_BYTES :]
    if hashlib.sha256(body).digest() != digest:
        raise ExecutionError(
            f"{path}: checksum mismatch — checkpoint is corrupt or torn"
        )
    snapshot = pickle.loads(body)
    if not isinstance(snapshot, Snapshot):  # pragma: no cover - defensive
        raise ExecutionError(f"{path}: body is not a Snapshot")
    return snapshot


def latest_checkpoint(directory: "str | Path") -> "Path | None":
    """The newest checkpoint in a :class:`CheckpointStore` directory
    (by watermark encoded in the filename), or ``None``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: "tuple[int, Path] | None" = None
    for entry in directory.iterdir():
        match = _CKPT_NAME.match(entry.name)
        if match is None:
            continue
        watermark = int(match.group(1))
        if best is None or watermark > best[0]:
            best = (watermark, entry)
    return None if best is None else best[1]


def require_cadence(store: "CheckpointStore | None") -> "CheckpointStore | None":
    """Validate a store handed to a session's ``auto_checkpoint=``.

    In-session auto-checkpointing is cadence-driven (:meth:`due` is
    consulted after every applied push), so a store constructed without
    ``every=`` would silently never checkpoint — fail loudly instead."""
    if store is not None and store.every is None:
        raise ExecutionError(
            "auto_checkpoint needs a cadence: construct the "
            "CheckpointStore with every=<ticks> (a store without a "
            "cadence would never be due)"
        )
    return store


class CheckpointStore:
    """A rotating directory of checkpoints: ``ckpt-<watermark>.rckpt``.

    ``keep`` bounds retention (oldest watermarks deleted first; the
    newest is never deleted).  ``every`` expresses the CLI's
    ``--checkpoint-every`` cadence: :meth:`due` is true once the
    watermark has advanced ``every`` or more ticks past the last save.
    """

    def __init__(
        self,
        directory: "str | Path",
        keep: int = 4,
        every: "int | None" = None,
    ):
        if keep < 1:
            raise ExecutionError(f"keep must be >= 1, got {keep}")
        if every is not None and every < 1:
            raise ExecutionError(f"every must be >= 1, got {every}")
        self.directory = Path(directory)
        self.keep = keep
        self.every = every
        self._last_saved: "int | None" = None

    def due(self, watermark: int) -> bool:
        """Whether the cadence calls for a checkpoint at ``watermark``."""
        if self.every is None:
            return False
        if self._last_saved is None:
            return watermark >= self.every
        return watermark - self._last_saved >= self.every

    def path_for(self, watermark: int) -> Path:
        if watermark < 0:  # pragma: no cover - defensive
            raise ExecutionError(f"negative watermark {watermark}")
        return self.directory / f"ckpt-{watermark:012d}.rckpt"

    def save(self, snapshot: Snapshot) -> Path:
        """Write one checkpoint and rotate old ones out."""
        path = write_checkpoint(snapshot, self.path_for(snapshot.watermark))
        self._last_saved = snapshot.watermark
        self._rotate()
        return path

    def paths(self) -> "list[Path]":
        """Every checkpoint in the store, oldest watermark first."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _CKPT_NAME.match(entry.name)
            if match is not None:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    def latest(self) -> "Path | None":
        return latest_checkpoint(self.directory)

    def _rotate(self) -> None:
        paths = self.paths()
        for stale in paths[: max(0, len(paths) - self.keep)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - defensive
                pass
