""":class:`SessionCore` — the embeddable single-shard session engine.

The core is everything a live session does *after* its out-of-order
front door: chunked event buffering, one :class:`GroupRuntime` per
(aggregate, semantics) group, watermark-safe plan switching, and
subscription routing.  It deliberately owns **no** reorder buffer and
**no** rate controller — those belong to whoever feeds it:

* :class:`~repro.runtime.QuerySession` wraps one core behind a
  :class:`~repro.engine.outoforder.ReorderBuffer` and a
  :class:`~repro.core.adaptive.RateController` (the single-process
  service shape);
* :class:`~repro.runtime.sharding.ShardedSession` embeds N cores — one
  per key shard: in-process (serial backend) or in worker processes
  fed over pipes (process backend) or shared-memory rings (shm
  backend, DESIGN.md §8) — and drives them all from one coordinator
  clock, which is what makes shard-count invariance (DESIGN.md
  invariant 10) provable: every core sees the same watermark sequence
  regardless of how keys were split or shipped.

Because the core never advances time on its own (``ingest`` self-rolls
chunk boundaries only in the standalone path; ``buffer_arrays`` never
does), a coordinator can hold N cores at identical watermarks by
construction.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.multiquery import (
    GroupKey,
    IncrementalWorkload,
    Query,
    WorkloadDelta,
)
from ..engine.events import EVENT_BYTES
from ..engine.stats import ExecutionStats
from ..errors import ExecutionError
from ..windows.window import Window
from .group import GroupRuntime
from .results import (
    PartialResults,
    PartialSubscription,
    PlanSwitchRecord,
    Subscription,
    WindowResults,
)

#: Default bound on retained *retired* subscriptions (the ``name@gN``
#: archive plus plainly-deregistered queries).  Counters stay exact —
#: mirrors ``ReorderStats.late_event_cap``.
DEFAULT_RETIRED_RESULT_CAP = 64

#: Result-routing scopes a query can register under.
SCOPES = ("per_key", "global")

#: Post-flush callback: ``(watermark, events_absorbed)``.
FlushHook = Callable[[int, int], None]


@dataclass
class RegisterAck:
    """What one core reports back from a workload mutation.

    A sharding coordinator broadcasts mutations and cross-checks the
    acks: every shard must agree on the generation, the chunk width,
    and each subscription's aligned start instance — they are pure
    functions of the (identical) mutation history, so disagreement
    means a desynced shard, never a tolerable race.
    """

    name: str
    generation: int
    chunk_ticks: int
    watermark: int
    starts: "dict[tuple[str, Window], int]" = field(default_factory=dict)


@dataclass
class ShardReport:
    """One core's emitted results: per-key rows plus cross-key partials."""

    results: "dict[str, dict[Window, WindowResults]]"
    partials: "dict[tuple[str, Window], PartialResults]"


def resolve_registration_query(
    query: "str | Query", name: str, next_auto: Callable[[], str]
) -> Query:
    """Normalize a registration argument (SQL text or a workload
    query) into a named :class:`Query`."""
    if isinstance(query, str):
        from ..sql.compile import compile_registration

        return compile_registration(query, name=name or next_auto())
    if name and name != query.name:
        return Query(
            name=name, windows=query.windows, aggregate=query.aggregate
        )
    return query


class EpochRateObserver:
    """Chunk-sized epoch accounting feeding a rate controller.

    Shared by every front door (:class:`~repro.runtime.QuerySession`
    and :class:`~repro.runtime.sharding.ShardedSession`) so the replan
    *timing policy* — when an epoch closes, when a drift decision is
    parked — has exactly one implementation: a divergence here would
    silently break the shard-count invariance of replan timing
    (DESIGN.md invariant 10).

    A due replan is parked in :attr:`pending_rate`, never applied
    inline: a switch advances operators up to the reorder watermark,
    which is only safe once the front door's release iterator has
    fully drained, so the owner applies it at its next push boundary
    via :meth:`take_pending`.
    """

    def __init__(self, controller):
        self.controller = controller
        self.epoch_start = 0
        self.epoch_events = 0
        self.pending_rate: "int | None" = None

    def observe_flush(
        self,
        watermark: int,
        count: int,
        chunk_ticks: int,
        has_queries: bool,
    ) -> None:
        """Account one flush; park a replan decision when the EWMA
        drift beats the controller's hysteresis."""
        self.epoch_events += count
        if watermark - self.epoch_start < chunk_ticks:
            return
        events = self.epoch_events
        ticks = watermark - self.epoch_start
        self.epoch_start = watermark
        self.epoch_events = 0
        if self.controller is None or ticks <= 0:
            return
        rate = self.controller.observe(events, ticks)
        if rate is None or not has_queries:
            return
        self.pending_rate = rate

    def take_pending(self) -> "int | None":
        """Claim the parked replan decision (clears it)."""
        rate, self.pending_rate = self.pending_rate, None
        return rate


class SessionCore:
    """A single-shard live-session engine over pre-ordered input.

    Parameters
    ----------
    num_keys:
        Dense key-id space this core owns (fixed per core).
    chunk_ticks:
        Watermark-block width.  Default: the largest registered window
        range, recomputed at every switch.
    event_rate / enable_factor_windows:
        Cost-model inputs of the embedded
        :class:`~repro.core.multiquery.IncrementalWorkload`.
    max_retired_results:
        Retention cap on retired subscriptions (``None`` = unbounded).
        Evictions are counted exactly in
        :attr:`retired_results_evicted` / :attr:`retired_instances_evicted`.
    on_flush:
        Called as ``on_flush(watermark, events)`` after every flush —
        the hook the front doors hang epoch/rate accounting on.
    """

    def __init__(
        self,
        num_keys: int = 1,
        chunk_ticks: "int | None" = None,
        event_rate: int = 1,
        enable_factor_windows: bool = True,
        max_retired_results: "int | None" = DEFAULT_RETIRED_RESULT_CAP,
        on_flush: "FlushHook | None" = None,
    ):
        if num_keys < 1:
            raise ExecutionError(f"num_keys must be >= 1, got {num_keys}")
        if max_retired_results is not None and max_retired_results < 0:
            raise ExecutionError(
                f"max_retired_results must be >= 0, got {max_retired_results}"
            )
        self.num_keys = num_keys
        self.workload = IncrementalWorkload(
            event_rate=event_rate,
            enable_factor_windows=enable_factor_windows,
        )
        self.max_retired_results = max_retired_results
        self.on_flush = on_flush
        self._fixed_chunk = chunk_ticks
        self._chunk_ticks = chunk_ticks or 1
        self._chunk_start = 0
        self._chunk_end = self._chunk_ticks
        self._buf_chunks: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]" = []
        self._buf_ts: list[int] = []
        self._buf_keys: list[int] = []
        self._buf_values: list[float] = []
        self._buffered = 0
        # Reusable flush arena: multi-chunk flushes re-contiguate into
        # these preallocated columns instead of a fresh ``concatenate``
        # per flush; a single-chunk flush passes its arrays through
        # untouched (zero copies).  Operators never retain absorbed
        # arrays past the flush, so reusing the arena is safe.
        self._arena: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None
        self.bytes_copied = 0
        self.copies_elided = 0
        self._watermark = 0
        self._max_event_ts = -1
        self._groups: dict[GroupKey, GroupRuntime] = {}
        self._subs: dict[tuple[str, Window], Subscription] = {}
        self._psubs: dict[tuple[str, Window], PartialSubscription] = {}
        self._retired: "dict[tuple[str, Window], Subscription | PartialSubscription]" = {}
        self.retired_results_evicted = 0
        self.retired_instances_evicted = 0
        self._seq = 0
        self._closed = False
        self.switches: list[PlanSwitchRecord] = []
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Snapshot support (DESIGN.md §9, invariant 12)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle everything but :attr:`on_flush` — the hook is a bound
        method of the owning front door (it may reach a pump thread)
        and is re-bound by whoever restores the core.  Every other
        field — the buffered partial chunk, the group runtimes with
        their operators and subscriptions, the retired-result archive,
        the workload and its plans — is plain picklable state, which is
        what makes a core snapshot a *complete* capture: restoring it
        resumes bit-identical to an uninterrupted run.

        The flush arena is dropped too: it holds no live data between
        flushes (only capacity), and buffered chunk *views* — which may
        alias shared-memory ring slots — pickle by value, so a snapshot
        never captures an aliased page."""
        state = dict(self.__dict__)
        state["on_flush"] = None
        state["_arena"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """The operators' frontier: instances ending at or before this
        are final and emitted."""
        return self._watermark

    @property
    def chunk_ticks(self) -> int:
        return self._chunk_ticks

    @property
    def buffered_events(self) -> int:
        """Events buffered but not yet absorbed by a flush — at most
        one chunk's worth in steady state (boundedness introspection
        for the front doors and their tests)."""
        return self._buffered

    @property
    def queries(self) -> tuple[str, ...]:
        return tuple(self.workload.queries)

    @property
    def generation(self) -> int:
        return self.workload.generation

    def stats(self) -> ExecutionStats:
        """Merged execution counters across all groups."""
        merged = ExecutionStats()
        for runtime in self._groups.values():
            merged.merge(runtime.stats)
        merged.wall_seconds = self.wall_seconds
        merged.bytes_copied += self.bytes_copied
        merged.copies_elided += self.copies_elided
        return merged

    def group_stats(self) -> "dict[GroupKey, ExecutionStats]":
        return {key: rt.stats for key, rt in self._groups.items()}

    def max_retained_state(self) -> int:
        """Largest per-operator buffered-state high-water mark."""
        marks = [rt.max_retained_state() for rt in self._groups.values()]
        return max(marks, default=0)

    # ------------------------------------------------------------------
    # Elastic-shard protocol: key transplant at a barrier (DESIGN.md §12)
    # ------------------------------------------------------------------
    def _require_barrier(self, what: str) -> None:
        if self._buffered:
            raise ExecutionError(
                f"{what} requires a drained core — {self._buffered} "
                "buffered events mean the caller is not at a watermark "
                "barrier"
            )

    def extract_keys(self, local_ids: "np.ndarray | list[int]") -> dict:
        """Remove and export the per-key state of ``local_ids``.

        ``local_ids`` are sorted local key ids.  Only valid at a
        watermark barrier (no buffered events): per-key state is then
        exactly the retained operator buffers plus the
        emitted-but-undrained subscription rows.  Remaining keys
        renumber down to rank order in the surviving owned-key set.
        The bundle is plain picklable data for :meth:`absorb_keys` on a
        lockstep sibling core.  Cross-key partial subscriptions ship
        nothing — closed instances keep their contributions here, and
        every instance still counts each key exactly once.
        """
        self._require_barrier("extract_keys")
        local_ids = np.asarray(local_ids, dtype=np.int64)
        if local_ids.size == 0:
            raise ExecutionError("extract_keys needs at least one key")
        if local_ids[0] < 0 or local_ids[-1] >= self.num_keys:
            raise ExecutionError(
                f"local ids outside [0, {self.num_keys})"
            )
        groups = [
            (key, [op.extract_keys(local_ids) for op in rt.advance_order])
            for key, rt in self._groups.items()
        ]
        subs = [
            (slot, sub.extract_keys(local_ids))
            for slot, sub in self._subs.items()
        ]
        retired = [
            (slot, sub.extract_keys(local_ids))
            for slot, sub in self._retired.items()
            if isinstance(sub, Subscription)
        ]
        self.num_keys -= int(local_ids.size)
        return {
            "watermark": self._watermark,
            "generation": self.generation,
            "count": int(local_ids.size),
            "groups": groups,
            "subs": subs,
            "retired": retired,
        }

    def absorb_keys(
        self, bundle: dict, positions: "np.ndarray | list[int]"
    ) -> None:
        """Splice an extracted key bundle into this core.

        ``positions`` are the incoming keys' local ids in this core's
        *post-absorb* owned-key ranking.  Both cores must sit at the
        same barrier (equal watermark and generation) — lockstep makes
        their operator/subscription structure identical, which every
        layer below re-asserts.
        """
        self._require_barrier("absorb_keys")
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size != bundle["count"]:
            raise ExecutionError(
                f"bundle carries {bundle['count']} keys but "
                f"{positions.size} positions given"
            )
        if (
            bundle["watermark"] != self._watermark
            or bundle["generation"] != self.generation
        ):
            raise ExecutionError(
                f"key absorb across barriers: bundle at "
                f"(wm={bundle['watermark']}, gen={bundle['generation']}) "
                f"vs core at (wm={self._watermark}, "
                f"gen={self.generation})"
            )
        num_keys = self.num_keys + int(positions.size)
        if [key for key, _ in bundle["groups"]] != list(self._groups):
            raise ExecutionError("group structure mismatch on key absorb")
        for key, op_states in bundle["groups"]:
            runtime = self._groups[key]
            if len(op_states) != len(runtime.advance_order):
                raise ExecutionError(
                    f"{key[0]}: operator count mismatch on key absorb"
                )
            for op, state in zip(runtime.advance_order, op_states):
                op.absorb_keys(state, positions, num_keys)
        for slots, incoming, label in (
            (self._subs, bundle["subs"], "subscription"),
            (
                {
                    slot: sub
                    for slot, sub in self._retired.items()
                    if isinstance(sub, Subscription)
                },
                bundle["retired"],
                "retired subscription",
            ),
        ):
            if [slot for slot, _ in incoming] != list(slots):
                raise ExecutionError(
                    f"{label} structure mismatch on key absorb"
                )
            for slot, state in incoming:
                slots[slot].absorb_keys(state, positions, num_keys)
        self.num_keys = num_keys

    def spawn_sibling(self) -> "SessionCore":
        """Clone this core into a fresh, keyless sibling (shard split).

        The sibling inherits the entire workload/plan/generation
        history — which is what keeps every barrier identity
        (operator structure, close cursors, subscription frontiers)
        valid — but starts empty: per-key rows stripped, cross-key
        partial blocks neutralized to identity components, and all
        counters zeroed so the merged logical stats across cores stay
        equal to the unsharded run.
        """
        self._require_barrier("spawn_sibling")
        twin: "SessionCore" = pickle.loads(pickle.dumps(self))
        if twin.num_keys:
            # The donor may already be keyless: a migration plan
            # extracts before it spawns, so a retiring slot-0 shard
            # has had every key moved out by the time it donates.
            twin.extract_keys(np.arange(twin.num_keys, dtype=np.int64))
        for psub in twin._psubs.values():
            psub.neutralize()
        for sub in twin._retired.values():
            if isinstance(sub, PartialSubscription):
                sub.neutralize()
        for runtime in twin._groups.values():
            runtime.stats.__init__()
        twin.wall_seconds = 0.0
        twin.bytes_copied = 0
        twin.copies_elided = 0
        twin.retired_results_evicted = 0
        twin.retired_instances_evicted = 0
        return twin

    def extract_remnant(self) -> dict:
        """Export the cross-key residue of a retiring (keyless) core.

        After :meth:`extract_keys` moved every owned key out, what
        remains is state reduced *over* keys: partial-subscription
        blocks holding closed-instance contributions of keys this core
        used to own, plus the logical counters.  The coordinator folds
        the remnant into exactly one surviving core, so each instance
        still counts every key once and merged stats stay equal to the
        unsharded run.
        """
        return {
            "watermark": self._watermark,
            "generation": self.generation,
            "psubs": [
                (slot, psub.extract_remnant())
                for slot, psub in self._psubs.items()
            ],
            "retired_psubs": [
                (slot, sub.extract_remnant())
                for slot, sub in self._retired.items()
                if isinstance(sub, PartialSubscription)
            ],
            "group_stats": [
                (key, rt.stats) for key, rt in self._groups.items()
            ],
            "wall_seconds": self.wall_seconds,
            "bytes_copied": self.bytes_copied,
            "copies_elided": self.copies_elided,
            "retired_results_evicted": self.retired_results_evicted,
            "retired_instances_evicted": self.retired_instances_evicted,
        }

    def absorb_remnant(self, remnant: dict) -> None:
        """Fold a retiring core's cross-key residue into this core."""
        self._require_barrier("absorb_remnant")
        if (
            remnant["watermark"] != self._watermark
            or remnant["generation"] != self.generation
        ):
            raise ExecutionError(
                "remnant absorb across barriers: "
                f"(wm={remnant['watermark']}, gen={remnant['generation']}) "
                f"vs (wm={self._watermark}, gen={self.generation})"
            )
        for slots, incoming, label in (
            (self._psubs, remnant["psubs"], "partial subscription"),
            (
                {
                    slot: sub
                    for slot, sub in self._retired.items()
                    if isinstance(sub, PartialSubscription)
                },
                remnant["retired_psubs"],
                "retired partial subscription",
            ),
        ):
            if [slot for slot, _ in incoming] != list(slots):
                raise ExecutionError(
                    f"{label} structure mismatch on remnant absorb"
                )
            for slot, state in incoming:
                slots[slot].absorb_remnant(state)
        if [key for key, _ in remnant["group_stats"]] != list(self._groups):
            raise ExecutionError("group structure mismatch on remnant absorb")
        for key, stats in remnant["group_stats"]:
            self._groups[key].stats.merge(stats)
        self.wall_seconds += remnant["wall_seconds"]
        self.bytes_copied += remnant["bytes_copied"]
        self.copies_elided += remnant["copies_elided"]
        self.retired_results_evicted += remnant["retired_results_evicted"]
        self.retired_instances_evicted += remnant["retired_instances_evicted"]

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Workload mutations
    # ------------------------------------------------------------------
    def register(
        self,
        query: Query,
        at: "int | None" = None,
        scope: str = "per_key",
    ) -> RegisterAck:
        """Register one named query at the safe watermark ``at``
        (default: the core's own watermark).

        ``scope="per_key"`` routes finalized per-key blocks to a
        :class:`Subscription`; ``scope="global"`` routes pre-finalize
        component blocks to a :class:`PartialSubscription` (mergeable
        aggregates only — holistic global queries have no partial form
        and must be raw-forwarded to a single-key core instead).
        """
        self._require_open()
        if scope not in SCOPES:
            raise ExecutionError(
                f"unknown scope {scope!r}; expected one of {SCOPES}"
            )
        if scope == "global" and not query.aggregate.mergeable:
            raise ExecutionError(
                f"{query.aggregate.name} is holistic: global scope needs "
                "raw forwarding (a ShardedSession coordinator core), not "
                "partial merging"
            )
        # Re-using a retired query's name must not shadow its archived
        # results: move them to a generation-suffixed name, *in place*
        # — renaming must not rejuvenate the archive's position in the
        # retention cap's oldest-first eviction order.
        if any(key[0] == query.name for key in self._retired):
            archive = f"{query.name}@g{self.workload.generation}"
            renamed: dict = {}
            for key, sub in self._retired.items():
                if key[0] == query.name:
                    sub.query = archive
                    renamed[(archive, key[1])] = sub
                else:
                    renamed[key] = sub
            self._retired = renamed
        delta = self.workload.register(query)
        self._apply_delta(delta, at)
        runtime = self._groups[delta.key]
        routing = delta.group.routing()
        starts: dict[tuple[str, Window], int] = {}
        for window in query.windows:
            target = routing[(query.name, window)]
            op = runtime.ops[target]
            slot = (query.name, window)
            if scope == "per_key":
                sub = Subscription(
                    query.name, window, op.next_close, self.num_keys
                )
                self._subs[slot] = sub
                runtime.subs_by_window.setdefault(target, []).append(sub)
            else:
                psub = PartialSubscription(
                    query.name, window, op.next_close, query.aggregate
                )
                self._psubs[slot] = psub
                runtime.psubs_by_window.setdefault(target, []).append(psub)
            starts[slot] = (
                self._subs[slot].start
                if scope == "per_key"
                else self._psubs[slot].start
            )
        return self._ack(query.name, starts)

    def deregister(self, name: str, at: "int | None" = None) -> RegisterAck:
        """Remove one query at the safe watermark.  Its emitted results
        stay readable (within the retention cap); its windows stop
        being computed unless another query still needs them."""
        self._require_open()
        query = self.workload.queries.get(name)
        if query is None:
            raise ExecutionError(f"no registered query named {name!r}")
        delta = self.workload.deregister(name)
        for window in query.windows:
            slot = (name, window)
            sub = self._subs.pop(slot, None) or self._psubs.pop(slot, None)
            if sub is not None:
                self._archive(slot, sub)
        self._apply_delta(delta, at)
        return self._ack(name, {})

    def set_event_rate(
        self, event_rate: int, at: "int | None" = None
    ) -> RegisterAck:
        """Re-price every group at a new rate, switching the plans
        whose provider map actually changed."""
        self._require_open()
        for delta in self.workload.set_event_rate(event_rate):
            if delta.provider_change:
                self._apply_delta(delta, at)
        return self._ack("", {})

    def _ack(
        self, name: str, starts: "dict[tuple[str, Window], int]"
    ) -> RegisterAck:
        return RegisterAck(
            name=name,
            generation=self.workload.generation,
            chunk_ticks=self._chunk_ticks,
            watermark=self._watermark,
            starts=starts,
        )

    def _archive(
        self,
        slot: "tuple[str, Window]",
        sub: "Subscription | PartialSubscription",
    ) -> None:
        """Retain a retired subscription within the retention cap,
        evicting oldest-first with exact counters."""
        self._retired[slot] = sub
        cap = self.max_retired_results
        if cap is None:
            return
        while len(self._retired) > cap:
            old_slot = next(iter(self._retired))
            old = self._retired.pop(old_slot)
            self.retired_results_evicted += 1
            self.retired_instances_evicted += old.emitted_instances

    def _apply_delta(self, delta: WorkloadDelta, at: "int | None") -> None:
        started = time.perf_counter()
        self.sync_to(self._watermark if at is None else at)
        key = delta.key
        if delta.retired:
            self._groups.pop(key, None)
            self._record_switch(
                delta, started, adopted=0, fresh=0, draining=0
            )
            return
        runtime = self._groups.get(key)
        if runtime is None:
            runtime = GroupRuntime(key, self)
            self._groups[key] = runtime
        if delta.provider_change:
            adopted, fresh, draining = runtime.rebuild(
                delta.plan, self._watermark
            )
        else:
            adopted, fresh, draining = len(runtime.ops), 0, 0
        self._rescope_subscriptions(runtime)
        self._refresh_chunk_ticks()
        self._record_switch(
            delta, started, adopted=adopted, fresh=fresh, draining=draining
        )

    def _rescope_subscriptions(self, runtime: GroupRuntime) -> None:
        """Re-index this group's subscriptions by operator window."""
        routing = self.workload.routing()
        runtime.subs_by_window = {}
        runtime.psubs_by_window = {}
        for table, out in (
            (self._subs, runtime.subs_by_window),
            (self._psubs, runtime.psubs_by_window),
        ):
            for (name, window), sub in table.items():
                target = routing.get((name, window))
                if target is None or target not in runtime.ops:
                    continue
                if self.workload.group_of(name) != runtime.key:
                    continue
                out.setdefault(target, []).append(sub)

    def _record_switch(
        self, delta: WorkloadDelta, started: float, **counts
    ) -> None:
        self.switches.append(
            PlanSwitchRecord(
                generation=delta.generation,
                reason=delta.reason,
                key=delta.key,
                watermark=self._watermark,
                seconds=time.perf_counter() - started,
                rate=self.workload.event_rate,
                **counts,
            )
        )

    def _refresh_chunk_ticks(self) -> None:
        if self._fixed_chunk is not None:
            return
        ranges = [
            w.range for q in self.workload.queries.values() for w in q.windows
        ]
        self._chunk_ticks = max(ranges, default=1)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, ts: int, key: int, value: float) -> None:
        """Buffer one in-order event and self-roll chunk boundaries —
        the standalone (single-core front door) path.

        A flush may advance the watermark up to ``ts``'s chunk end;
        the event is buffered first, so every released-but-unabsorbed
        event is in the buffer when it does.  Absorbing an event
        slightly before its chunk is harmless — closes are
        watermark-driven.
        """
        self._buf_ts.append(ts)
        self._buf_keys.append(key)
        self._buf_values.append(value)
        self._buffered += 1
        if ts > self._max_event_ts:
            self._max_event_ts = ts
        while ts >= self._chunk_end:
            self._flush(self._chunk_end)

    def buffer_arrays(
        self, ts: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Buffer a sorted column slice *without* advancing time — the
        coordinated (sharded) path, where only the coordinator's clock
        may trigger flushes."""
        if ts.size == 0:
            return
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_keys):
            raise ExecutionError(
                f"keys outside dense id space [0, {self.num_keys})"
            )
        self._seal_scalar_buffer()
        self._buf_chunks.append(
            (
                np.asarray(ts, dtype=np.int64),
                np.asarray(keys, dtype=np.int64),
                np.asarray(values, dtype=np.float64),
            )
        )
        self._buffered += int(ts.size)
        last = int(ts[-1])
        if last > self._max_event_ts:
            self._max_event_ts = last

    def localize_buffer(self) -> None:
        """Copy every buffered chunk into freshly owned arrays.

        Zero-copy consumers (the shm shard worker) buffer *views over
        ring slots* and normally release the slots right after a flush
        absorbs them.  When slots must be freed *before* a flush — the
        borrow budget is exhausted, or the ring goes idle with views
        still buffered — this materializes the buffer first so no view
        outlives its slot.  On the steady-state path (flush between
        feeds) this never runs and events reach the operators with
        zero or one copies; localization adds one bounded copy only
        for the events caught by an early release.
        """
        if not self._buf_chunks:
            return
        localized = []
        for ts, keys, values in self._buf_chunks:
            localized.append((np.array(ts), np.array(keys), np.array(values)))
            self.bytes_copied += int(ts.size) * EVENT_BYTES
        self._buf_chunks = localized

    def _seal_scalar_buffer(self) -> None:
        if self._buf_ts:
            self._buf_chunks.append(
                (
                    np.asarray(self._buf_ts, dtype=np.int64),
                    np.asarray(self._buf_keys, dtype=np.int64),
                    np.asarray(self._buf_values, dtype=np.float64),
                )
            )
            self._buf_ts, self._buf_keys, self._buf_values = [], [], []

    def advance_to(self, watermark: int) -> None:
        """Absorb the buffer and advance every operator to
        ``watermark`` (the coordinator's flush edge)."""
        self._require_open()
        if watermark < self._watermark:
            raise ExecutionError(
                f"cannot advance backwards: watermark {watermark} < "
                f"{self._watermark}"
            )
        self._flush(watermark)

    def sync_to(self, target: int) -> None:
        """Advance to the newest safe watermark (switch entry point).

        Absorbs at most the buffered partial chunk; everything newer
        still sits ahead (in the front door's reorder buffer) and
        reaches fresh operators through the normal path — a switch
        never replays more than the reorder buffer plus one chunk.
        """
        target = max(self._watermark, target)
        if self._buffered or target > self._watermark:
            self._flush(target)

    def _gather_chunks(
        self,
        chunks: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]",
        count: int,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Copy buffered runs into the reused arena, returning length-
        ``count`` views over it.

        Growth is geometric so steady-state flushes allocate nothing.
        The views die with the flush (operators do not retain absorbed
        arrays), so the arena can be rewritten next flush.
        """
        if self._arena is None or self._arena[0].size < count:
            cap = count
            if self._arena is not None:
                cap = max(cap, 2 * self._arena[0].size)
            self._arena = (
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.float64),
            )
        arena_ts, arena_keys, arena_values = self._arena
        pos = 0
        for chunk_ts, chunk_keys, chunk_values in chunks:
            n = int(chunk_ts.size)
            arena_ts[pos : pos + n] = chunk_ts
            arena_keys[pos : pos + n] = chunk_keys
            arena_values[pos : pos + n] = chunk_values
            pos += n
        return arena_ts[:count], arena_keys[:count], arena_values[:count]

    def _flush(self, to_watermark: int) -> None:
        started = time.perf_counter()
        self._seal_scalar_buffer()
        count = self._buffered
        if count:
            chunks, self._buf_chunks = self._buf_chunks, []
            self._buffered = 0
            if len(chunks) == 1:
                # Pass the single run straight through — no copy.  The
                # arrays may be borrowed ring views; operators reduce
                # them into their own state without retaining them.
                ts, keys, values = chunks[0]
                self.copies_elided += count
            else:
                # Re-contiguate into the reused arena (one bounded
                # copy), so operators see one contiguous block per
                # flush — the same bits a concatenate would produce.
                ts, keys, values = self._gather_chunks(chunks, count)
                self.bytes_copied += count * EVENT_BYTES
            for runtime in self._groups.values():
                runtime.absorb(ts, keys, values)
        for runtime in self._groups.values():
            runtime.advance(to_watermark)
        self._watermark = to_watermark
        self._chunk_start = to_watermark
        self._chunk_end = to_watermark + self._chunk_ticks
        self.wall_seconds += time.perf_counter() - started
        if self.on_flush is not None:
            self.on_flush(to_watermark, count)

    # ------------------------------------------------------------------
    # Termination and results
    # ------------------------------------------------------------------
    def finish(self, horizon: "int | None" = None) -> int:
        """Close every instance ending at or before ``horizon``
        (default: last event + 1) and seal the core.  Returns the
        horizon used."""
        self._require_open()
        if horizon is None:
            horizon = max(self._watermark, self._max_event_ts + 1)
        if horizon < self._watermark:
            raise ExecutionError(
                f"horizon {horizon} is behind the watermark "
                f"{self._watermark}"
            )
        self._flush(horizon)
        self._closed = True
        return horizon

    def report(self, drain: bool = False) -> ShardReport:
        """Emitted results: per-key rows plus cross-key partials.

        ``drain=False`` snapshots (non-consuming — memory grows with
        emitted instances); ``drain=True`` consumes: each subscription
        releases what it returned, and retired subscriptions are
        dropped once read — the bounded-memory service read path.
        """
        results: dict[str, dict[Window, WindowResults]] = {}
        partials: dict[tuple[str, Window], PartialResults] = {}
        tables = (self._retired, self._subs, self._psubs)
        for table in tables:
            for (name, window), sub in table.items():
                emitted = sub.drain() if drain else sub.snapshot()
                if isinstance(sub, Subscription):
                    results.setdefault(name, {})[window] = emitted
                else:
                    partials[(name, window)] = emitted
        if drain:
            self._retired = {}
        return ShardReport(results=results, partials=partials)

    def _require_open(self) -> None:
        if self._closed:
            raise ExecutionError("session is finished")
