"""Result routing: subscriptions and their emitted-result snapshots.

A session routes every finalized operator block to the subscriptions
of the (query, window) pairs reading that operator.  Two subscription
kinds exist:

* :class:`Subscription` — the per-key read path: buffers finalized
  ``(num_keys, span)`` blocks; its :class:`WindowResults` snapshot is
  what :meth:`~repro.runtime.QuerySession.results` returns.
* :class:`PartialSubscription` — the cross-key *partial* read path of
  the sharded runtime (DESIGN.md §7): buffers pre-finalize aggregate
  components reduced over the session's local keys, so a coordinator
  can ``combine`` the partials of disjoint key shards and finalize
  once.  Only mergeable aggregates have a partial form.

Both enforce the same contiguity contract: emitted blocks must abut
the subscription's frontier (instances that predate it are skipped —
the invariant-9 carve-out), so a gap or duplicate is an error, never a
silently wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..aggregates.base import AggregateFunction
from ..core.multiquery import GroupKey
from ..errors import ExecutionError
from ..windows.window import Window


@dataclass
class PlanSwitchRecord:
    """One applied generation switch (register/deregister/rate)."""

    generation: int
    reason: str
    key: GroupKey
    watermark: int
    seconds: float
    adopted: int
    fresh: int
    draining: int
    rate: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"gen {self.generation} [{self.reason}] {self.key[0]} "
            f"@wm={self.watermark}: {self.adopted} adopted, "
            f"{self.fresh} fresh, {self.draining} draining "
            f"({self.seconds * 1e3:.2f} ms)"
        )


@dataclass
class WindowResults:
    """Everything one (query, window) subscription has received.

    ``values[:, i]`` is instance ``start_instance + i``; instances
    before ``start_instance`` predate the subscription (or the
    window's activation) and were never owned by the session — the
    invariant-9 carve-out.
    """

    query: str
    window: Window
    start_instance: int
    frontier: int
    values: np.ndarray  # (num_keys, frontier - start_instance)

    def value(self, key: int, instance: int) -> float:
        if not self.start_instance <= instance < self.frontier:
            raise ExecutionError(
                f"instance {instance} outside emitted range "
                f"[{self.start_instance}, {self.frontier})"
            )
        return float(self.values[key, instance - self.start_instance])


@dataclass
class PartialResults:
    """One session's cross-key *partial* emission for a (query, window).

    ``components[c][i]`` is component ``c`` of instance
    ``start_instance + i``, already reduced over the emitting session's
    local keys.  Partials from disjoint key shards merge with the
    aggregate's vectorized ``combine``; ``aggregate`` names the
    function (resolvable via the registry) so a coordinator can merge
    without extra bookkeeping.
    """

    query: str
    window: Window
    start_instance: int
    frontier: int
    aggregate: str
    components: tuple  # per-component (frontier - start_instance,) arrays


class Subscription:
    """Routes one (query, requested window)'s emitted result blocks."""

    def __init__(self, query: str, window: Window, start: int, num_keys: int):
        self.query = query
        self.window = window
        self.start = start
        self.frontier = start
        self.num_keys = num_keys
        self._blocks: list[np.ndarray] = []

    def accept(self, m0: int, m1: int, block: np.ndarray) -> None:
        if m1 <= self.frontier:
            return  # instances that predate this subscription
        if m0 < self.frontier:
            block = block[:, self.frontier - m0:]
            m0 = self.frontier
        if m0 != self.frontier:
            raise ExecutionError(
                f"{self.query}/{self.window}: emission gap — got block "
                f"[{m0}, {m1}) at frontier {self.frontier}"
            )
        self._blocks.append(block)
        self.frontier = m1

    def snapshot(self) -> WindowResults:
        if self._blocks:
            values = np.concatenate(self._blocks, axis=1)
        else:
            values = np.empty((self.num_keys, 0), dtype=np.float64)
        return WindowResults(
            query=self.query,
            window=self.window,
            start_instance=self.start,
            frontier=self.frontier,
            values=values,
        )

    def drain(self) -> WindowResults:
        """Hand over everything emitted so far and release it — the
        bounded-memory read path for unbounded sessions."""
        snapshot = self.snapshot()
        self._blocks = []
        self.start = self.frontier
        return snapshot

    @property
    def emitted_instances(self) -> int:
        """Instances currently buffered (retention accounting)."""
        return self.frontier - self.start

    # ------------------------------------------------------------------
    # Elastic-shard protocol (DESIGN.md §12): emitted-but-undrained
    # blocks are per-key rows and travel with their keys.
    # ------------------------------------------------------------------
    def extract_keys(self, local_ids: np.ndarray) -> dict:
        """Remove and return the rows of ``local_ids`` (sorted)."""
        rows = [block[local_ids] for block in self._blocks]
        self._blocks = [
            np.delete(block, local_ids, axis=0) for block in self._blocks
        ]
        self.num_keys -= int(local_ids.size)
        return {"start": self.start, "frontier": self.frontier, "rows": rows}

    def absorb_keys(
        self, state: dict, positions: np.ndarray, num_keys: int
    ) -> None:
        """Splice extracted rows in at ``positions``.

        Block boundaries are emission-driven and the coordinator drains
        every core in the same collect, so lockstep cores always agree
        on the block structure here.
        """
        if (
            state["start"] != self.start
            or state["frontier"] != self.frontier
            or len(state["rows"]) != len(self._blocks)
            or any(
                rows.shape[1] != block.shape[1]
                for rows, block in zip(state["rows"], self._blocks)
            )
        ):
            raise ExecutionError(
                f"{self.query}/{self.window}: subscription block "
                "structure mismatch on key absorb"
            )
        keep = np.setdiff1d(
            np.arange(num_keys, dtype=np.int64), positions, assume_unique=True
        )
        spliced = []
        for block, rows in zip(self._blocks, state["rows"]):
            out = np.empty((num_keys, block.shape[1]), dtype=block.dtype)
            out[keep] = block
            out[positions] = rows
            spliced.append(out)
        self._blocks = spliced
        self.num_keys = num_keys


class PartialSubscription:
    """Routes one (query, window)'s pre-finalize component blocks.

    Components arrive as per-key ``(num_keys, span)`` arrays from the
    operator's partial sink and are reduced over the key axis *at
    accept time*, so the retained state per instance is one scalar per
    component regardless of the key count.
    """

    def __init__(
        self,
        query: str,
        window: Window,
        start: int,
        aggregate: AggregateFunction,
    ):
        if not aggregate.mergeable:
            raise ExecutionError(
                f"{aggregate.name} is holistic: it has no partial form "
                "to subscribe to — use raw forwarding instead"
            )
        self.query = query
        self.window = window
        self.start = start
        self.frontier = start
        self.aggregate = aggregate
        self._blocks: list[tuple] = []

    def accept(self, m0: int, m1: int, components: tuple) -> None:
        if m1 <= self.frontier:
            return
        if m0 < self.frontier:
            skip = self.frontier - m0
            components = tuple(
                np.asarray(part)[:, skip:] for part in components
            )
            m0 = self.frontier
        if m0 != self.frontier:
            raise ExecutionError(
                f"{self.query}/{self.window}: partial emission gap — got "
                f"block [{m0}, {m1}) at frontier {self.frontier}"
            )
        self._blocks.append(
            tuple(
                ufunc.reduce(
                    np.asarray(part, dtype=np.float64), axis=0
                )
                for ufunc, part in zip(
                    self.aggregate.component_ufuncs, components
                )
            )
        )
        self.frontier = m1

    def _components(self) -> tuple:
        n = self.aggregate.num_components
        if self._blocks:
            return tuple(
                np.concatenate([block[i] for block in self._blocks])
                for i in range(n)
            )
        return tuple(np.empty(0, dtype=np.float64) for _ in range(n))

    def snapshot(self) -> PartialResults:
        return PartialResults(
            query=self.query,
            window=self.window,
            start_instance=self.start,
            frontier=self.frontier,
            aggregate=self.aggregate.name,
            components=self._components(),
        )

    def drain(self) -> PartialResults:
        snapshot = self.snapshot()
        self._blocks = []
        self.start = self.frontier
        return snapshot

    @property
    def emitted_instances(self) -> int:
        return self.frontier - self.start

    # ------------------------------------------------------------------
    # Elastic-shard protocol (DESIGN.md §12).  Partials are already
    # reduced over local keys, so a key *move* ships nothing: closed
    # instances keep their contributions on the emitting core and every
    # instance still counts each key exactly once.  Only shard
    # retirement folds state — the remnant combine below — and a
    # spawned sibling must first neutralize its inherited blocks.
    # ------------------------------------------------------------------
    def neutralize(self) -> None:
        """Replace every buffered block with identity components,
        keeping the spans (a fresh sibling core contributed nothing to
        the instances already emitted)."""
        identity = self.aggregate.identity_components
        self._blocks = [
            tuple(
                np.full(part.shape, ident, dtype=np.float64)
                for part, ident in zip(block, identity)
            )
            for block in self._blocks
        ]

    def extract_remnant(self) -> dict:
        """Export buffered blocks for folding into a surviving core."""
        return {
            "start": self.start,
            "frontier": self.frontier,
            "blocks": self._blocks,
        }

    def absorb_remnant(self, state: dict) -> None:
        """Elementwise-combine a retiring core's blocks into ours."""
        if (
            state["start"] != self.start
            or state["frontier"] != self.frontier
            or len(state["blocks"]) != len(self._blocks)
        ):
            raise ExecutionError(
                f"{self.query}/{self.window}: partial block structure "
                "mismatch on remnant absorb"
            )
        self._blocks = [
            self.aggregate.combine(mine, theirs)
            for mine, theirs in zip(self._blocks, state["blocks"])
        ]


def finalize_partials(
    aggregate: AggregateFunction, parts: "list[PartialResults]"
) -> WindowResults:
    """Merge per-shard partials into one finalized global result row.

    The vectorized coordinator merge of DESIGN.md §7: one
    ``combine`` per shard over whole instance arrays, one ``finalize``
    at the end.  All parts must cover the same instance range (the
    coordinator advances every shard to the same watermark).
    """
    if not parts:
        raise ExecutionError("cannot finalize zero partial results")
    first = parts[0]
    for part in parts[1:]:
        if (
            part.start_instance != first.start_instance
            or part.frontier != first.frontier
        ):
            raise ExecutionError(
                f"{first.query}/{first.window}: shard partial ranges "
                f"disagree — [{first.start_instance}, {first.frontier}) "
                f"vs [{part.start_instance}, {part.frontier})"
            )
    combined = first.components
    for part in parts[1:]:
        combined = aggregate.combine(combined, part.components)
    values = np.asarray(
        aggregate.finalize(combined), dtype=np.float64
    ).reshape(1, -1)
    return WindowResults(
        query=first.query,
        window=first.window,
        start_instance=first.start_instance,
        frontier=first.frontier,
        values=values,
    )
