""":class:`QuerySession` — the long-lived multi-query runtime.

A session ingests one unbounded, possibly out-of-order event stream
and serves a *changing* set of registered window-aggregate queries:

* events enter through a :class:`~repro.engine.outoforder.ReorderBuffer`
  (bounded lateness, drop-late policy) and are executed on the
  ``streaming-chunked`` operator family in watermark blocks;
* :meth:`QuerySession.register` / :meth:`QuerySession.deregister`
  mutate the workload at any watermark; only the affected (aggregate,
  semantics) group is re-optimized
  (:class:`~repro.core.multiquery.IncrementalWorkload`);
* a :class:`~repro.core.adaptive.RateController` watches the live
  event rate and re-prices every group when the drift beats its
  hysteresis — the paper's §VI future work, wired into a real loop.

Plan switches are **watermark-safe** (DESIGN.md §6, invariant 9).  At
a switch the session synchronizes to a safe watermark ``T`` (absorbing
at most the currently-buffered partial chunk), then builds the new
generation of operators:

* operators whose (type, window, aggregate, provider) shape survives
  **adopt** the old operator's state wholesale (pane buffers, provider
  partials, holistic event buffers) via the engine's handoff protocol
  — history is never recomputed;
* operators whose shape changed start **fresh** at an aligned
  instance: raw readers at the first instance starting at or after
  ``T`` (every event they need is still ahead of, or inside, the
  reorder buffer), sub-aggregate readers at the first instance whose
  covering set their provider can still deliver;
* the displaced old operators **drain**: they keep running, capped at
  the fresh operator's start instance, finish exactly the straddling
  instances they alone hold state for, and retire.  Providers that
  left the plan stay alive until their last draining consumer is
  served.

Per window the emitted instance ranges of draining and fresh operators
are disjoint and contiguous, so the result stream a subscription sees
is bit-identical to a cold run of the final workload — never a wrong,
missing, or duplicate instance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.adaptive import RateController
from ..core.multiquery import (
    GroupKey,
    IncrementalWorkload,
    Query,
    WorkloadDelta,
)
from ..engine.outoforder import ReorderBuffer
from ..engine.stats import ExecutionStats
from ..engine.streaming import (
    _ChunkedHolisticOperator,
    _ChunkedOperator,
    _ChunkedRawOperator,
    _ChunkedSubAggOperator,
)
from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan
from ..windows.window import Window


@dataclass
class PlanSwitchRecord:
    """One applied generation switch (register/deregister/rate)."""

    generation: int
    reason: str
    key: GroupKey
    watermark: int
    seconds: float
    adopted: int
    fresh: int
    draining: int
    rate: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"gen {self.generation} [{self.reason}] {self.key[0]} "
            f"@wm={self.watermark}: {self.adopted} adopted, "
            f"{self.fresh} fresh, {self.draining} draining "
            f"({self.seconds * 1e3:.2f} ms)"
        )


@dataclass
class WindowResults:
    """Everything one (query, window) subscription has received.

    ``values[:, i]`` is instance ``start_instance + i``; instances
    before ``start_instance`` predate the subscription (or the
    window's activation) and were never owned by the session — the
    invariant-9 carve-out.
    """

    query: str
    window: Window
    start_instance: int
    frontier: int
    values: np.ndarray  # (num_keys, frontier - start_instance)

    def value(self, key: int, instance: int) -> float:
        if not self.start_instance <= instance < self.frontier:
            raise ExecutionError(
                f"instance {instance} outside emitted range "
                f"[{self.start_instance}, {self.frontier})"
            )
        return float(self.values[key, instance - self.start_instance])


class _Subscription:
    """Routes one (query, requested window)'s emitted result blocks."""

    def __init__(self, query: str, window: Window, start: int, num_keys: int):
        self.query = query
        self.window = window
        self.start = start
        self.frontier = start
        self.num_keys = num_keys
        self._blocks: list[np.ndarray] = []

    def accept(self, m0: int, m1: int, block: np.ndarray) -> None:
        if m1 <= self.frontier:
            return  # instances that predate this subscription
        if m0 < self.frontier:
            block = block[:, self.frontier - m0:]
            m0 = self.frontier
        if m0 != self.frontier:
            raise ExecutionError(
                f"{self.query}/{self.window}: emission gap — got block "
                f"[{m0}, {m1}) at frontier {self.frontier}"
            )
        self._blocks.append(block)
        self.frontier = m1

    def snapshot(self) -> WindowResults:
        if self._blocks:
            values = np.concatenate(self._blocks, axis=1)
        else:
            values = np.empty((self.num_keys, 0), dtype=np.float64)
        return WindowResults(
            query=self.query,
            window=self.window,
            start_instance=self.start,
            frontier=self.frontier,
            values=values,
        )

    def drain(self) -> WindowResults:
        """Hand over everything emitted so far and release it — the
        bounded-memory read path for unbounded sessions."""
        snapshot = self.snapshot()
        self._blocks = []
        self.start = self.frontier
        return snapshot


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class _GroupRuntime:
    """Operators of one (aggregate, semantics) group, across generations."""

    def __init__(self, key: GroupKey, session: "QuerySession"):
        self.key = key
        self.session = session
        self.stats = ExecutionStats()
        self.ops: dict[Window, _ChunkedOperator] = {}
        self.draining: list[_ChunkedOperator] = []
        self.advance_order: list[_ChunkedOperator] = []
        self.absorbers: list[_ChunkedOperator] = []
        self.subs_by_window: dict[Window, list[_Subscription]] = {}

    # ------------------------------------------------------------------
    # Emission sink: operator blocks → subscriptions
    # ------------------------------------------------------------------
    def sink(self, window: Window, m0: int, m1: int, block: np.ndarray) -> None:
        for sub in self.subs_by_window.get(window, ()):
            sub.accept(m0, m1, block)

    # ------------------------------------------------------------------
    # Generation switch
    # ------------------------------------------------------------------
    def rebuild(self, plan: LogicalPlan, watermark: int) -> tuple[int, int, int]:
        """Install ``plan`` as the new generation at ``watermark``.

        Returns ``(adopted, fresh, draining)`` operator counts.
        """
        session = self.session
        old_gen = self.ops
        new_ops: dict[Window, _ChunkedOperator] = {}
        adopted: set[Window] = set()
        for node in plan.topological_window_order():
            window, aggregate, provider = (
                node.window,
                node.aggregate,
                node.provider,
            )
            if provider is None:
                cls = (
                    _ChunkedRawOperator
                    if aggregate.mergeable
                    else _ChunkedHolisticOperator
                )
            else:
                cls = _ChunkedSubAggOperator
            old = old_gen.get(window)
            compatible = (
                old is not None
                and type(old) is cls
                and getattr(old, "provider", None) == provider
                and old.aggregate.name == aggregate.name
            )
            if compatible:
                start = old.start_instance
            else:
                if provider is None:
                    # Raw readers: first instance starting at/after the
                    # switch watermark — all of its events are still in
                    # (or ahead of) the reorder buffer.
                    start = _ceil_div(watermark, window.slide)
                else:
                    # Sub-aggregate readers: first instance whose whole
                    # covering set the (possibly fresh) provider can
                    # still deliver.
                    provider_op = new_ops[provider]
                    stride = window.slide // provider.slide
                    start = _ceil_div(provider_op.next_close, stride)
                if old is not None:
                    # Seamless handover: the displaced operator drains
                    # everything below the fresh start.
                    start = max(start, old.next_close)
            args = (window, aggregate, session.num_keys, None, self.stats)
            kwargs = dict(
                start_instance=start,
                sink=None if node.is_factor else self.sink,
            )
            if provider is None:
                op = cls(*args, **kwargs)
            else:
                op = cls(provider, *args, **kwargs)
            op.gen_seq = session._next_seq()
            if compatible:
                op.adopt(old.handoff())
                adopted.add(window)
            new_ops[window] = op

        # Displaced operators drain; dropped providers are retained
        # (and capped) only while a draining consumer still needs them.
        fresh_draining: list[_ChunkedOperator] = []
        for window, old in old_gen.items():
            if window in adopted:
                continue
            replacement = new_ops.get(window)
            if replacement is not None:
                old.cap_instances(replacement.start_instance)
            else:
                old._dropped = True
            if replacement is None or not old.drained:
                fresh_draining.append(old)
        self.draining = [
            op for op in self.draining if not op.drained
        ] + fresh_draining
        self.ops = new_ops
        self._rewire()
        self.cleanup()
        return (
            len(adopted),
            len(new_ops) - len(adopted),
            len(self.draining),
        )

    def _rewire(self) -> None:
        """Rebuild consumer edges and the advance order across the
        current generation and every still-draining operator."""
        live = self.draining + list(self.ops.values())
        live.sort(key=lambda op: op.gen_seq)
        for op in live:
            op.consumers = []
        by_window: dict[Window, list[_ChunkedOperator]] = {}
        for op in live:
            by_window.setdefault(op.window, []).append(op)
        for op in live:
            provider = getattr(op, "provider", None)
            if provider is None:
                continue
            sources = by_window.get(provider)
            if not sources:
                raise ExecutionError(
                    f"{op.window} reads from {provider}, which has no "
                    "live operator"
                )
            for source in sources:
                source.consumers.append(op)
        self.advance_order = _toposort(live, by_window)
        # Dropped providers stay only as long as a draining consumer
        # still needs their instances; reverse topological order
        # resolves consumer caps before provider caps along chains.
        for op in reversed(self.advance_order):
            if getattr(op, "_dropped", False):
                needed = op.next_close
                for consumer in op.consumers:
                    if consumer.num_instances is None:
                        raise ExecutionError(
                            f"uncapped operator {consumer.window} reads "
                            f"from dropped window {op.window}"
                        )
                    needed = max(
                        needed,
                        (consumer.num_instances - 1) * consumer.stride
                        + consumer.multiplier,
                    )
                op.cap_instances(needed)
        self.absorbers = [
            op
            for op in self.advance_order
            if isinstance(op, (_ChunkedRawOperator, _ChunkedHolisticOperator))
        ]

    def cleanup(self) -> None:
        """Retire drained operators and detach them everywhere."""
        dead = {id(op) for op in self.draining if op.drained}
        if not dead:
            return
        self.draining = [op for op in self.draining if id(op) not in dead]
        self.advance_order = [
            op for op in self.advance_order if id(op) not in dead
        ]
        for op in self.advance_order:
            if op.consumers:
                op.consumers = [
                    c for c in op.consumers if id(c) not in dead
                ]
        self.absorbers = [
            op for op in self.absorbers if id(op) not in dead
        ]

    # ------------------------------------------------------------------
    # Steady-state processing
    # ------------------------------------------------------------------
    def absorb(
        self, ts: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        self.stats.events += int(ts.size)
        for op in self.absorbers:
            op.absorb(ts, keys, values)

    def advance(self, watermark: int) -> None:
        for op in self.advance_order:
            op.advance(watermark)
        if self.draining:
            self.cleanup()

    def max_retained_state(self) -> int:
        if not self.advance_order:
            return 0
        return max(op.max_retained for op in self.advance_order)


def _toposort(
    live: "list[_ChunkedOperator]",
    by_window: "dict[Window, list[_ChunkedOperator]]",
) -> "list[_ChunkedOperator]":
    """Order operators providers-first; generations of the same window
    stay in age order (an old operator's closes must reach a shared
    consumer before its replacement's)."""
    edges: dict[int, list[_ChunkedOperator]] = {}
    indegree: dict[int, int] = {id(op): 0 for op in live}

    def add_edge(src: _ChunkedOperator, dst: _ChunkedOperator) -> None:
        edges.setdefault(id(src), []).append(dst)
        indegree[id(dst)] += 1

    for op in live:
        for consumer in op.consumers:
            add_edge(op, consumer)
    for chain in by_window.values():
        for older, newer in zip(chain, chain[1:]):
            add_edge(older, newer)

    ready = sorted(
        (op for op in live if indegree[id(op)] == 0),
        key=lambda op: op.gen_seq,
    )
    order: list[_ChunkedOperator] = []
    while ready:
        op = ready.pop(0)
        order.append(op)
        woke = []
        for consumer in edges.get(id(op), ()):
            indegree[id(consumer)] -= 1
            if indegree[id(consumer)] == 0:
                woke.append(consumer)
        if woke:
            ready.extend(woke)
            ready.sort(key=lambda o: o.gen_seq)
    if len(order) != len(live):
        raise ExecutionError("cycle in operator graph across generations")
    return order


class QuerySession:
    """A long-lived runtime over one unbounded, out-of-order stream.

    Parameters
    ----------
    num_keys:
        Dense key-id space of the stream (fixed per session).
    max_lateness:
        Reorder-buffer bound: an event may trail the maximum seen
        timestamp by up to this many ticks; later ones are dropped
        (and counted — see :attr:`reorder_stats`).
    chunk_ticks:
        Watermark-block width.  Default: the largest registered window
        range, recomputed at every switch.
    event_rate / hysteresis / alpha:
        Initial cost-model rate and the live re-planning policy
        (:class:`~repro.core.adaptive.RateController`).  ``hysteresis=
        None`` disables rate-driven re-planning.
    """

    def __init__(
        self,
        num_keys: int = 1,
        max_lateness: int = 0,
        chunk_ticks: "int | None" = None,
        event_rate: int = 1,
        hysteresis: "float | None" = 0.25,
        alpha: float = 0.3,
        enable_factor_windows: bool = True,
    ):
        if num_keys < 1:
            raise ExecutionError(f"num_keys must be >= 1, got {num_keys}")
        self.num_keys = num_keys
        self.workload = IncrementalWorkload(
            event_rate=event_rate,
            enable_factor_windows=enable_factor_windows,
        )
        self.controller = (
            None
            if hysteresis is None
            else RateController(
                hysteresis=hysteresis, alpha=alpha, initial_rate=event_rate
            )
        )
        self._reorder = ReorderBuffer(max_lateness)
        self._fixed_chunk = chunk_ticks
        self._chunk_ticks = chunk_ticks or 1
        self._chunk_start = 0
        self._chunk_end = self._chunk_ticks
        self._buf_ts: list[int] = []
        self._buf_keys: list[int] = []
        self._buf_values: list[float] = []
        self._watermark = 0
        self._max_event_ts = -1
        self._epoch_start = 0
        self._epoch_events = 0
        self._groups: dict[GroupKey, _GroupRuntime] = {}
        self._subs: dict[tuple[str, Window], _Subscription] = {}
        self._retired_subs: dict[tuple[str, Window], _Subscription] = {}
        self._seq = 0
        self._auto_names = 0
        self._pending_rate: "int | None" = None
        self._closed = False
        self.switches: list[PlanSwitchRecord] = []
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """The operators' frontier: instances ending at or before this
        are final and emitted."""
        return self._watermark

    @property
    def queries(self) -> tuple[str, ...]:
        return tuple(self.workload.queries)

    @property
    def reorder_stats(self):
        return self._reorder.stats

    @property
    def generation(self) -> int:
        return self.workload.generation

    def stats(self) -> ExecutionStats:
        """Merged execution counters across all groups."""
        merged = ExecutionStats()
        for runtime in self._groups.values():
            merged.merge(runtime.stats)
        merged.wall_seconds = self.wall_seconds
        return merged

    def group_stats(self) -> "dict[GroupKey, ExecutionStats]":
        return {key: rt.stats for key, rt in self._groups.items()}

    def max_retained_state(self) -> int:
        """Largest per-operator buffered-state high-water mark."""
        marks = [rt.max_retained_state() for rt in self._groups.values()]
        return max(marks, default=0)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Workload mutations
    # ------------------------------------------------------------------
    def register(self, query: "str | Query", name: str = "") -> str:
        """Register one query (SQL text or a workload query) at the
        current watermark; returns its name."""
        self._require_open()
        if isinstance(query, str):
            from ..sql.compile import compile_registration

            if not name:
                self._auto_names += 1
                name = f"q{self._auto_names}"
            query = compile_registration(query, name=name)
        elif name and name != query.name:
            query = Query(
                name=name, windows=query.windows, aggregate=query.aggregate
            )
        # Re-using a retired query's name must not shadow its archived
        # results: move them to a generation-suffixed name first.
        colliding = [
            key for key in self._retired_subs if key[0] == query.name
        ]
        for key in colliding:
            sub = self._retired_subs.pop(key)
            archive = f"{query.name}@g{self.workload.generation}"
            sub.query = archive
            self._retired_subs[(archive, key[1])] = sub
        delta = self.workload.register(query)
        self._apply_delta(delta)
        runtime = self._groups[delta.key]
        routing = delta.group.routing()
        for window in query.windows:
            target = routing[(query.name, window)]
            op = runtime.ops[target]
            sub = _Subscription(
                query.name, window, op.next_close, self.num_keys
            )
            self._subs[(query.name, window)] = sub
            runtime.subs_by_window.setdefault(target, []).append(sub)
        return query.name

    def deregister(self, name: str) -> None:
        """Remove one query at the current watermark.  Its emitted
        results stay readable; its windows stop being computed unless
        another query (or the optimizer) still needs them."""
        self._require_open()
        query = self.workload.queries.get(name)
        if query is None:
            raise ExecutionError(f"no registered query named {name!r}")
        delta = self.workload.deregister(name)
        for window in query.windows:
            sub = self._subs.pop((name, window), None)
            if sub is not None:
                self._retired_subs[(name, window)] = sub
        self._apply_delta(delta)

    def _apply_delta(self, delta: WorkloadDelta) -> None:
        started = time.perf_counter()
        self._sync()
        key = delta.key
        if delta.retired:
            runtime = self._groups.pop(key, None)
            self._record_switch(
                delta, started, adopted=0, fresh=0, draining=0
            )
            return
        runtime = self._groups.get(key)
        if runtime is None:
            runtime = _GroupRuntime(key, self)
            self._groups[key] = runtime
        if delta.provider_change:
            adopted, fresh, draining = runtime.rebuild(
                delta.plan, self._watermark
            )
        else:
            adopted, fresh, draining = len(runtime.ops), 0, 0
        self._rescope_subscriptions(runtime)
        self._refresh_chunk_ticks()
        self._record_switch(
            delta, started, adopted=adopted, fresh=fresh, draining=draining
        )

    def _rescope_subscriptions(self, runtime: _GroupRuntime) -> None:
        """Re-index this group's subscriptions by operator window."""
        routing = self.workload.routing()
        runtime.subs_by_window = {}
        for (name, window), sub in self._subs.items():
            target = routing.get((name, window))
            if target is None or target not in runtime.ops:
                continue
            if self.workload.group_of(name) != runtime.key:
                continue
            runtime.subs_by_window.setdefault(target, []).append(sub)

    def _record_switch(
        self, delta: WorkloadDelta, started: float, **counts
    ) -> None:
        self.switches.append(
            PlanSwitchRecord(
                generation=delta.generation,
                reason=delta.reason,
                key=delta.key,
                watermark=self._watermark,
                seconds=time.perf_counter() - started,
                rate=self.workload.event_rate,
                **counts,
            )
        )

    def _refresh_chunk_ticks(self) -> None:
        if self._fixed_chunk is not None:
            return
        ranges = [
            w.range for q in self.workload.queries.values() for w in q.windows
        ]
        self._chunk_ticks = max(ranges, default=1)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, ts: int, key: int, value: float) -> None:
        """Ingest one (possibly out-of-order) event."""
        self._require_open()
        if not 0 <= key < self.num_keys:
            raise ExecutionError(
                f"key {key} outside dense id space [0, {self.num_keys})"
            )
        for event in self._reorder.push(ts, int(key), float(value)):
            self._ingest(event)
        # Rate-driven switches are deferred to this point: a switch
        # advances operators up to the reorder watermark, which is only
        # safe once every event the buffer has released is ingested —
        # and the release iterator above drains lazily.
        if self._pending_rate is not None:
            rate, self._pending_rate = self._pending_rate, None
            for delta in self.workload.set_event_rate(rate):
                if delta.provider_change:
                    self._apply_delta(delta)

    def push_many(self, events) -> None:
        """Ingest an iterable of ``(ts, key, value)`` events."""
        for ts, key, value in events:
            self.push(ts, key, value)

    def _ingest(self, event) -> None:
        # Buffer first, then roll chunk boundaries: a flush may advance
        # the watermark up to the reorder frontier (e.g. a rate-driven
        # switch), and every released-but-unabsorbed event must be in
        # the buffer when it does.  Absorbing an event slightly before
        # its chunk is harmless — closes are watermark-driven.
        ts, key, value = event
        self._buf_ts.append(ts)
        self._buf_keys.append(key)
        self._buf_values.append(value)
        if ts > self._max_event_ts:
            self._max_event_ts = ts
        while ts >= self._chunk_end:
            self._flush(self._chunk_end)

    def _sync(self) -> None:
        """Advance to the newest safe watermark (switch entry point).

        Absorbs at most the buffered partial chunk; everything newer
        still sits in the reorder buffer and reaches fresh operators
        through the normal path — a switch never replays more than the
        reorder buffer plus one chunk.
        """
        target = max(self._watermark, self._reorder.watermark, 0)
        if self._buf_ts or target > self._watermark:
            self._flush(target)

    def _flush(self, to_watermark: int) -> None:
        started = time.perf_counter()
        count = len(self._buf_ts)
        if count:
            ts = np.asarray(self._buf_ts, dtype=np.int64)
            keys = np.asarray(self._buf_keys, dtype=np.int64)
            values = np.asarray(self._buf_values, dtype=np.float64)
            self._buf_ts, self._buf_keys, self._buf_values = [], [], []
            for runtime in self._groups.values():
                runtime.absorb(ts, keys, values)
        for runtime in self._groups.values():
            runtime.advance(to_watermark)
        self._watermark = to_watermark
        self._chunk_start = to_watermark
        self._chunk_end = to_watermark + self._chunk_ticks
        self._epoch_events += count
        self.wall_seconds += time.perf_counter() - started
        if to_watermark - self._epoch_start >= self._chunk_ticks:
            self._observe_rate(to_watermark)

    def _observe_rate(self, now: int) -> None:
        # Only records the decision: applying a replan is deferred to
        # the next push() boundary (the release iterator must be fully
        # drained before a switch advances the watermark), and a due
        # replan is never swallowed — it stays pending until applied.
        events = self._epoch_events
        ticks = now - self._epoch_start
        self._epoch_start = now
        self._epoch_events = 0
        if self.controller is None or ticks <= 0:
            return
        rate = self.controller.observe(events, ticks)
        if rate is None or not len(self.workload):
            return
        self._pending_rate = rate

    # ------------------------------------------------------------------
    # Termination and results
    # ------------------------------------------------------------------
    def finish(self, horizon: "int | None" = None):
        """Drain the reorder buffer, close every instance ending at or
        before ``horizon`` (default: last event + 1), and return
        :meth:`results`.  The session accepts no events afterwards."""
        self._require_open()
        for event in self._reorder.flush():
            self._ingest(event)
        if horizon is None:
            horizon = max(self._watermark, self._max_event_ts + 1)
        if horizon < self._watermark:
            raise ExecutionError(
                f"horizon {horizon} is behind the watermark "
                f"{self._watermark}"
            )
        self._flush(horizon)
        self._closed = True
        return self.results()

    def results(self) -> "dict[str, dict[Window, WindowResults]]":
        """Per-query, per-window emitted results (live and retired
        subscriptions both included).

        Non-consuming: every call returns everything accumulated since
        each subscription started, so memory grows with emitted
        instances.  Long-lived sessions over unbounded streams should
        poll :meth:`drain_results` instead.
        """
        out: dict[str, dict[Window, WindowResults]] = {}
        for (name, window), sub in {
            **self._retired_subs,
            **self._subs,
        }.items():
            out.setdefault(name, {})[window] = sub.snapshot()
        return out

    def drain_results(self) -> "dict[str, dict[Window, WindowResults]]":
        """Consume emitted results: return every block accumulated
        since the previous drain and release it (each subscription's
        ``start_instance`` moves to its frontier).  Polling this keeps
        per-subscription memory bounded by the emission rate between
        polls — the service-shaped read path.  Retired subscriptions
        are drained too and dropped once read."""
        out: dict[str, dict[Window, WindowResults]] = {}
        for (name, window), sub in self._subs.items():
            out.setdefault(name, {})[window] = sub.drain()
        for (name, window), sub in self._retired_subs.items():
            out.setdefault(name, {})[window] = sub.drain()
        self._retired_subs = {}
        return out

    def _require_open(self) -> None:
        if self._closed:
            raise ExecutionError("session is finished")
