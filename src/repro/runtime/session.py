""":class:`QuerySession` — the long-lived multi-query runtime.

A session ingests one unbounded, possibly out-of-order event stream
and serves a *changing* set of registered window-aggregate queries:

* events enter through a :class:`~repro.engine.outoforder.ReorderBuffer`
  (bounded lateness, drop-late policy) and are executed on the
  ``streaming-chunked`` operator family in watermark blocks;
* :meth:`QuerySession.register` / :meth:`QuerySession.deregister`
  mutate the workload at any watermark; only the affected (aggregate,
  semantics) group is re-optimized
  (:class:`~repro.core.multiquery.IncrementalWorkload`);
* a :class:`~repro.core.adaptive.RateController` watches the live
  event rate and re-prices every group when the drift beats its
  hysteresis — the paper's §VI future work, wired into a real loop.

The execution machinery itself lives in
:class:`~repro.runtime.core.SessionCore` — the embeddable single-shard
engine this class merely feeds.  ``QuerySession`` is exactly "one core
behind one reorder buffer"; the key-sharded runtime
(:class:`~repro.runtime.sharding.ShardedSession`) feeds N of the same
cores from one coordinator and must therefore behave identically at
any shard count (DESIGN.md invariants 9 and 10).

Plan switches are **watermark-safe** (DESIGN.md §6, invariant 9).  At
a switch the session synchronizes to a safe watermark ``T`` (absorbing
at most the currently-buffered partial chunk), then builds the new
generation of operators:

* operators whose (type, window, aggregate, provider) shape survives
  **adopt** the old operator's state wholesale via the engine's
  handoff protocol — history is never recomputed;
* operators whose shape changed start **fresh** at an aligned
  instance;
* the displaced old operators **drain**: capped at the fresh
  operator's start instance, they finish exactly the straddling
  instances they alone hold state for, and retire.

Per window the emitted instance ranges of draining and fresh operators
are disjoint and contiguous, so the result stream a subscription sees
is bit-identical to a cold run of the final workload — never a wrong,
missing, or duplicate instance.
"""

from __future__ import annotations

import pickle

from ..aggregates.registry import get_aggregate
from ..core.adaptive import RateController
from ..core.multiquery import GroupKey, Query
from ..engine.outoforder import ReorderBuffer
from ..engine.stats import ExecutionStats
from ..errors import ExecutionError
from ..windows.window import Window
from .checkpoint import (
    CheckpointStore,
    Snapshot,
    read_checkpoint,
    require_cadence,
    write_checkpoint,
)
from .core import (
    DEFAULT_RETIRED_RESULT_CAP,
    EpochRateObserver,
    SessionCore,
    resolve_registration_query,
)
from .ingest import (
    DEFAULT_INGEST_HIGH_WATERMARK,
    AsyncIngestFrontDoor,
    IngestPump,
)
from .results import (
    PlanSwitchRecord,
    WindowResults,
    finalize_partials,
)

__all__ = ["PlanSwitchRecord", "QuerySession", "WindowResults"]


class QuerySession(AsyncIngestFrontDoor):
    """A long-lived runtime over one unbounded, out-of-order stream.

    Parameters
    ----------
    num_keys:
        Dense key-id space of the stream (fixed per session).
    max_lateness:
        Reorder-buffer bound: an event may trail the maximum seen
        timestamp by up to this many ticks; later ones are dropped
        (and counted — see :attr:`reorder_stats`).
    chunk_ticks:
        Watermark-block width.  Default: the largest registered window
        range, recomputed at every switch.
    event_rate / hysteresis / alpha:
        Initial cost-model rate and the live re-planning policy
        (:class:`~repro.core.adaptive.RateController`).  ``hysteresis=
        None`` disables rate-driven re-planning.
    max_retired_results:
        Retention cap on deregistered queries' archived results
        (``None`` = unbounded); evictions are counted exactly.
    async_ingest / ingest_high_watermark / ingest_low_watermark:
        ``async_ingest=True`` puts a bounded queue and a background
        pump thread in front of the synchronous ingest path
        (:mod:`repro.runtime.ingest`, DESIGN.md §8): ``push`` returns
        without waiting for flushes, blocking only while the backlog
        sits at ``ingest_high_watermark`` events (until drained to
        ``ingest_low_watermark``).  Workload mutations and result
        reads become synchronization points; emitted results are
        bit-identical to sync mode (invariant 11).  Close the session
        (or ``finish`` it) to stop the pump thread.
    auto_checkpoint / checkpoint_meta / on_checkpoint:
        In-session checkpoint cadence (DESIGN.md §9): pass a
        :class:`~repro.runtime.checkpoint.CheckpointStore` constructed
        with ``every=<ticks>`` and the session saves a rotating
        checkpoint whenever a push advances the watermark past the
        cadence — the same code path the CLI and the session service
        use, so neither reimplements it.  ``checkpoint_meta`` is an
        optional zero-argument callable producing the ``meta`` dict
        stored in each checkpoint (called at save time);
        ``on_checkpoint`` is an optional ``(snapshot, path)`` callback
        fired after each save (the service supervisor truncates its
        replay tail there).
    """

    def __init__(
        self,
        num_keys: int = 1,
        max_lateness: int = 0,
        chunk_ticks: "int | None" = None,
        event_rate: int = 1,
        hysteresis: "float | None" = 0.25,
        alpha: float = 0.3,
        enable_factor_windows: bool = True,
        max_retired_results: "int | None" = DEFAULT_RETIRED_RESULT_CAP,
        async_ingest: bool = False,
        ingest_high_watermark: int = DEFAULT_INGEST_HIGH_WATERMARK,
        ingest_low_watermark: "int | None" = None,
        auto_checkpoint: "CheckpointStore | None" = None,
        checkpoint_meta=None,
        on_checkpoint=None,
    ):
        self._core = SessionCore(
            num_keys=num_keys,
            chunk_ticks=chunk_ticks,
            event_rate=event_rate,
            enable_factor_windows=enable_factor_windows,
            max_retired_results=max_retired_results,
            on_flush=self._on_flush,
        )
        self.num_keys = num_keys
        self.controller = (
            None
            if hysteresis is None
            else RateController(
                hysteresis=hysteresis, alpha=alpha, initial_rate=event_rate
            )
        )
        self._reorder = ReorderBuffer(max_lateness)
        self._rate_observer = EpochRateObserver(self.controller)
        self._auto_names = 0
        self._auto_store = require_cadence(auto_checkpoint)
        self._checkpoint_meta = checkpoint_meta
        self._on_checkpoint = on_checkpoint
        self._pump = (
            IngestPump(
                push=self._push_now,
                high_watermark=ingest_high_watermark,
                low_watermark=ingest_low_watermark,
            )
            if async_ingest
            else None
        )

    # ------------------------------------------------------------------
    # Introspection (delegated to the core)
    # ------------------------------------------------------------------
    @property
    def core(self) -> SessionCore:
        """The embedded single-shard engine."""
        return self._core

    @property
    def watermark(self) -> int:
        """The operators' frontier: instances ending at or before this
        are final and emitted."""
        return self._core.watermark

    @property
    def queries(self) -> tuple[str, ...]:
        return self._core.queries

    @property
    def reorder_stats(self):
        return self._reorder.stats

    @property
    def generation(self) -> int:
        return self._core.generation

    @property
    def workload(self):
        return self._core.workload

    @property
    def switches(self) -> "list[PlanSwitchRecord]":
        return self._via_pump(list, self._core.switches)

    @property
    def wall_seconds(self) -> float:
        return self._core.wall_seconds

    @property
    def retired_results_evicted(self) -> int:
        """Retired subscriptions evicted by the retention cap (exact)."""
        return self._core.retired_results_evicted

    @property
    def retired_instances_evicted(self) -> int:
        """Result instances dropped with those evictions (exact)."""
        return self._core.retired_instances_evicted

    @property
    def _groups(self):
        return self._core._groups

    def stats(self) -> ExecutionStats:
        """Merged execution counters across all groups (in async mode,
        a synchronization point — the snapshot is consistent with the
        command stream)."""
        return self._via_pump(self._core.stats)

    def group_stats(self) -> "dict[GroupKey, ExecutionStats]":
        return self._via_pump(self._core.group_stats)

    def max_retained_state(self) -> int:
        """Largest per-operator buffered-state high-water mark."""
        return self._via_pump(self._core.max_retained_state)

    # ------------------------------------------------------------------
    # Workload mutations
    # ------------------------------------------------------------------
    def _next_auto_name(self) -> str:
        self._auto_names += 1
        return f"q{self._auto_names}"

    def _safe_watermark(self) -> int:
        return max(self._core.watermark, self._reorder.watermark, 0)

    def register(
        self, query: "str | Query", name: str = "", scope: str = "per_key"
    ) -> str:
        """Register one query (SQL text or a workload query) at the
        current watermark; returns its name.

        ``scope="global"`` aggregates across *all* keys into a single
        result row (mergeable aggregates only; a
        :class:`~repro.runtime.sharding.ShardedSession` additionally
        raw-forwards holistic global queries)."""
        return self._via_pump(self._register_now, query, name, scope)

    def _register_now(
        self, query: "str | Query", name: str, scope: str
    ) -> str:
        query = resolve_registration_query(query, name, self._next_auto_name)
        self._core.register(query, at=self._safe_watermark(), scope=scope)
        return query.name

    def deregister(self, name: str) -> None:
        """Remove one query at the current watermark.  Its emitted
        results stay readable (within the retention cap); its windows
        stop being computed unless another query (or the optimizer)
        still needs them."""
        self._via_pump(self._deregister_now, name)

    def _deregister_now(self, name: str) -> None:
        self._core.deregister(name, at=self._safe_watermark())

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, ts: int, key: int, value: float) -> None:
        """Ingest one (possibly out-of-order) event.

        In async mode this enqueues and returns immediately, blocking
        only under backpressure (see :mod:`repro.runtime.ingest`)."""
        if not self._route_event(ts, key, value):
            self._push_now(ts, key, value)

    def _push_now(self, ts: int, key: int, value: float) -> None:
        self._core._require_open()
        if not 0 <= key < self.num_keys:
            raise ExecutionError(
                f"key {key} outside dense id space [0, {self.num_keys})"
            )
        for event in self._reorder.push(ts, int(key), float(value)):
            self._core.ingest(*event)
        # Rate-driven switches are deferred to this point: a switch
        # advances operators up to the reorder watermark, which is only
        # safe once every event the buffer has released is ingested —
        # and the release iterator above drains lazily.
        if self._rate_observer.pending_rate is not None:
            rate = self._rate_observer.take_pending()
            self._core.set_event_rate(rate, at=self._safe_watermark())
        self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self) -> None:
        """Cadence-driven checkpointing, inside the ingest path itself:
        fires on the same thread that applies pushes (the pump thread
        in async mode), so every saved cut is prefix-consistent with
        the command stream by construction."""
        store = self._auto_store
        if store is None or not store.due(self._core.watermark):
            return
        meta = (
            {} if self._checkpoint_meta is None else self._checkpoint_meta()
        )
        snap = self._snapshot_now(meta)
        path = store.save(snap)
        if self._on_checkpoint is not None:
            self._on_checkpoint(snap, path)

    def push_many(self, events) -> None:
        """Ingest an iterable of ``(ts, key, value)`` events."""
        for ts, key, value in events:
            self.push(ts, key, value)

    def _on_flush(self, watermark: int, count: int) -> None:
        self._rate_observer.observe_flush(
            watermark,
            count,
            self._core.chunk_ticks,
            bool(len(self._core.workload)),
        )

    # ------------------------------------------------------------------
    # Durability (DESIGN.md §9, invariant 12)
    # ------------------------------------------------------------------
    def snapshot(
        self, path=None, meta: "dict | None" = None
    ) -> Snapshot:
        """Capture the whole session at the current safe watermark.

        The capture is *complete*: the core (operator state, provider
        partials, routing table, retired-result archive, workload +
        plan generation), the reorder buffer, the rate controller, and
        — in async mode — the ingest-queue residue (events enqueued
        but not yet applied).  In async mode the capture runs at its
        position in the command stream, like every synchronization
        point, so it is prefix-consistent with everything pushed
        before it.

        The returned :class:`~repro.runtime.checkpoint.Snapshot` is an
        isolated deep copy — the live session keeps running unaffected.
        With ``path`` it is also written to disk atomically.  Restoring
        it (:meth:`restore`) and replaying the remainder of the stream
        is bit-identical to never having stopped (invariant 12).
        """
        snap = self._via_pump(self._snapshot_now, meta)
        if path is not None:
            write_checkpoint(snap, path)
        return snap

    def _snapshot_now(self, meta: "dict | None") -> Snapshot:
        residue = [] if self._pump is None else self._pump.pending_data()
        graph = {
            "core": self._core,
            "reorder": self._reorder,
            "controller": self.controller,
            "observer": self._rate_observer,
            "auto_names": self._auto_names,
            "num_keys": self.num_keys,
            "residue": residue,
        }
        # One dumps over the whole graph: shared references (the
        # controller inside the observer) survive, and the snapshot is
        # isolated from further mutation of the live session.
        return Snapshot(
            kind="query",
            watermark=self._core.watermark,
            generation=self._core.generation,
            queries=self.queries,
            payload={
                "state": pickle.dumps(
                    graph, protocol=pickle.HIGHEST_PROTOCOL
                )
            },
            meta=dict(meta or {}),
        )

    @classmethod
    def restore(
        cls,
        source,
        async_ingest: bool = False,
        ingest_high_watermark: int = DEFAULT_INGEST_HIGH_WATERMARK,
        ingest_low_watermark: "int | None" = None,
        auto_checkpoint: "CheckpointStore | None" = None,
        checkpoint_meta=None,
        on_checkpoint=None,
    ) -> "QuerySession":
        """Rebuild a session from a :class:`Snapshot` or a checkpoint
        file and resume exactly where it left off.

        The ingest mode is an override, not part of the snapshot —
        invariant 11 makes it observationally invisible, so a session
        snapshotted in async mode may restore in sync mode and vice
        versa.  Captured ingest-queue residue is replayed through the
        restored front door first, so the restored timeline has applied
        exactly the events the original had accepted.  The
        auto-checkpoint knobs mirror the constructor's (cadence state
        lives in the store, not the snapshot — pass the same store to
        keep the cadence rolling).
        """
        snap = source if isinstance(source, Snapshot) else read_checkpoint(source)
        if snap.kind != "query":
            raise ExecutionError(
                f"checkpoint kind {snap.kind!r} does not restore into a "
                "QuerySession (use ShardedSession.restore)"
            )
        graph = pickle.loads(snap.payload["state"])
        self = cls.__new__(cls)
        self._core = graph["core"]
        self.num_keys = graph["num_keys"]
        self.controller = graph["controller"]
        self._reorder = graph["reorder"]
        self._rate_observer = graph["observer"]
        self._auto_names = graph["auto_names"]
        self._auto_store = require_cadence(auto_checkpoint)
        self._checkpoint_meta = checkpoint_meta
        self._on_checkpoint = on_checkpoint
        self._core.on_flush = self._on_flush
        self._pump = (
            IngestPump(
                push=self._push_now,
                high_watermark=ingest_high_watermark,
                low_watermark=ingest_low_watermark,
            )
            if async_ingest
            else None
        )
        for item in graph["residue"]:
            self.push(item[1], item[2], item[3])
        return self

    # ------------------------------------------------------------------
    # Termination and results
    # ------------------------------------------------------------------
    def finish(self, horizon: "int | None" = None):
        """Drain the reorder buffer, close every instance ending at or
        before ``horizon`` (default: last event + 1), and return
        :meth:`results`.  The session accepts no events afterwards (in
        async mode the pump thread is stopped)."""
        results = self._via_pump(self._finish_now, horizon)
        self._stop_pump()
        return results

    def _finish_now(self, horizon: "int | None"):
        self._core._require_open()
        for event in self._reorder.flush():
            self._core.ingest(*event)
        self._core.finish(horizon)
        return self._collect(drain=False)

    def close(self) -> None:
        """Stop the async pump thread (if any).  Unlike
        :meth:`finish`, pending queued events are still applied first;
        results stay readable afterwards."""
        self._stop_pump()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def results(self) -> "dict[str, dict[Window, WindowResults]]":
        """Per-query, per-window emitted results (live and retired
        subscriptions both included; global-scope queries appear as a
        single finalized row).

        Non-consuming: every call returns everything accumulated since
        each subscription started, so memory grows with emitted
        instances.  Long-lived sessions over unbounded streams should
        poll :meth:`drain_results` instead.
        """
        return self._via_pump(self._collect, False)

    def drain_results(self) -> "dict[str, dict[Window, WindowResults]]":
        """Consume emitted results: return every block accumulated
        since the previous drain and release it (each subscription's
        ``start_instance`` moves to its frontier).  Polling this keeps
        per-subscription memory bounded by the emission rate between
        polls — the service-shaped read path.  Retired subscriptions
        are drained too and dropped once read."""
        return self._via_pump(self._collect, True)

    def _collect(self, drain: bool):
        report = self._core.report(drain=drain)
        out = report.results
        for (name, window), partial in report.partials.items():
            merged = finalize_partials(
                get_aggregate(partial.aggregate), [partial]
            )
            out.setdefault(name, {})[window] = merged
        return out
