"""Key-sharded parallel runtime (DESIGN.md §7, invariant 10).

:class:`ShardedSession` scales the live session across the key axis:
the dense key space is hash-partitioned into N disjoint shards
(:func:`~repro.engine.events.shard_assignment`), each owned by one
embedded :class:`~repro.runtime.core.SessionCore` running the same
workload over its keys' sub-stream.  One coordinator owns everything
time-related — the out-of-order front door, the chunk clock, and the
rate controller — and broadcasts workload mutations to every shard at
the same safe watermark, so all cores advance through an identical
watermark sequence regardless of the shard count.  That lockstep is
what makes **invariant 10** provable: for any shard count, any
out-of-order stream, and any register/deregister/rate schedule, the
merged results are identical to the 1-shard run.

The coordinator merges per result-routing mode:

* ``per_key`` queries — **disjoint-key concatenation**: each shard's
  rows scatter into the global key space (every key is owned by
  exactly one shard, so merging is a permutation, not arithmetic);
* ``global`` distributive/algebraic queries — **vectorized partial
  merge**: shards emit pre-finalize aggregate components reduced over
  their local keys; the coordinator ``combine``s the per-shard
  partials over whole instance arrays and finalizes once;
* ``global`` holistic queries — **raw forwarding**: no partial form
  exists, so the full value stream feeds a coordinator-local
  single-key core (inherently unsharded, per the Gray et al.
  taxonomy).

Three execution backends implement one contract (documented for
third-party implementations in ``docs/backends.md``):

* :class:`SerialShardBackend` — all cores in-process, advanced
  deterministically in shard order: the test oracle.
* :class:`ProcessShardBackend` — one worker process per shard over a
  ``multiprocessing`` pipe; columnar event slices ship per chunk (one
  IPC message per shard per chunk, never per event) and data-plane
  commands are fire-and-forget, so the coordinator keeps routing chunk
  ``k+1`` while workers crunch chunk ``k``.
* :class:`SharedMemoryShardBackend` — the same worker topology, but
  the data plane moves to one single-producer/single-consumer columnar
  ring per shard in ``multiprocessing.shared_memory``
  (:mod:`repro.runtime.shm_ring`): event slices are written straight
  into fixed-capacity slots as numpy column blocks — nothing on the
  data plane is pickled — and watermark advances ride the same ring,
  so data/advance ordering is a property of the ring, not of pipe
  scheduling.  Control-plane commands stay on the pipe (DESIGN.md §8).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass

import numpy as np

from ..aggregates.registry import get_aggregate
from ..core.adaptive import RateController
from ..core.multiquery import Query
from ..engine.events import (
    DEFAULT_NUM_SLOTS,
    EVENT_BYTES,
    EventBatch,
    KeyPartitioner,
)
from ..engine.outoforder import ReorderBuffer
from ..engine.stats import ExecutionStats
from ..errors import ExecutionError
from ..windows.window import Window
from .checkpoint import (
    CheckpointStore,
    Snapshot,
    read_checkpoint,
    require_cadence,
    write_checkpoint,
)
from .core import (
    DEFAULT_RETIRED_RESULT_CAP,
    EpochRateObserver,
    RegisterAck,
    SessionCore,
    ShardReport,
    resolve_registration_query,
)
from .ingest import (
    DEFAULT_INGEST_HIGH_WATERMARK,
    _EVENT,
    AsyncIngestFrontDoor,
    IngestPump,
)
from .results import PlanSwitchRecord, WindowResults, finalize_partials

#: Coordinator merge modes, derived from (scope, taxonomy).
MERGE_MODES = ("concat", "partial", "forward")

#: Default control-plane reply deadline, in seconds.  A worker that is
#: alive but silent past this (lost control message, wedged loop) is
#: declared stalled instead of hanging the coordinator forever: with
#: ``worker_recovery=True`` it is respawned and replayed like a crash,
#: otherwise the session raises with diagnostics.  Pass
#: ``control_timeout=None`` to wait on process liveness alone.  Generous
#: on purpose: a *working* worker never takes anywhere near this long to
#: ack a control op, so a false stall requires pathological scheduling.
DEFAULT_CONTROL_TIMEOUT = 60.0

#: ``configure(control_timeout=...)`` sentinel: "leave it unchanged"
#: must be distinguishable from an explicit ``None`` (no deadline).
_TIMEOUT_UNSET = object()

#: Per-flush exponential decay of the per-slot load counters: recent
#: traffic dominates the rebalance policy, but a slot that was hot a
#: few chunks ago still registers (half-life ≈ 3 flushes).
LOAD_DECAY = 0.8


class _MigrationDisrupted(ExecutionError):
    """A worker died or stalled *inside* a migration plan.

    Migration state transplants are not replayable commands — a bundle
    extracted from a core that subsequently crashed and was restored
    would be applied twice — so the normal per-command recovery path is
    disabled during a plan.  The coordinator instead catches this,
    rolls every shard back to the pre-migration snapshot
    (:meth:`_WorkerShardBackend.migration_rollback`), and redoes the
    whole plan from scratch.  Subclasses :class:`ExecutionError` so an
    unrecoverable disruption (recovery unarmed, or a second failure)
    surfaces through the ordinary error contract.
    """

    def __init__(self, slot: int, op: str, cause: str):
        super().__init__(
            f"migration op {op!r} disrupted on backend slot {slot}: "
            f"{cause}"
        )
        self.slot = slot
        self.op = op
        self.cause = cause


@dataclass(frozen=True)
class ShardConfig:
    """Constructor arguments for one shard's :class:`SessionCore`."""

    shard: int
    num_keys: int
    chunk_ticks: "int | None"
    event_rate: int
    enable_factor_windows: bool
    max_retired_results: "int | None"

    def build(self) -> SessionCore:
        return SessionCore(
            num_keys=self.num_keys,
            chunk_ticks=self.chunk_ticks,
            event_rate=self.event_rate,
            enable_factor_windows=self.enable_factor_windows,
            max_retired_results=self.max_retired_results,
        )


def _merge_acks(acks: "list[RegisterAck]") -> RegisterAck:
    """Cross-check broadcast acks: every shard must agree bit-for-bit
    (they are pure functions of the shared mutation history)."""
    first = acks[0]
    for ack in acks[1:]:
        if (
            ack.generation != first.generation
            or ack.chunk_ticks != first.chunk_ticks
            or ack.watermark != first.watermark
            or ack.starts != first.starts
        ):
            raise ExecutionError(
                f"shard desync: ack {ack} disagrees with {first}"
            )
    return first


class SerialShardBackend:
    """All shard cores in-process, advanced in shard order.

    Deterministic by construction — the oracle the invariant-10/11
    property tests (and every worker backend) are compared against.
    """

    name = "serial"

    def __init__(self):
        self.cores: list[SessionCore] = []

    def start(self, configs: "list[ShardConfig]") -> None:
        self.cores = [config.build() for config in configs]

    def feed(self, slices) -> None:
        for core, chunks in zip(self.cores, slices):
            for ts, keys, values in chunks:
                if ts.size:
                    core.buffer_arrays(ts, keys, values)

    def advance(self, watermark: int) -> None:
        for core in self.cores:
            core.advance_to(watermark)

    def register(self, query: Query, at: int, scope: str) -> RegisterAck:
        return _merge_acks(
            [core.register(query, at=at, scope=scope) for core in self.cores]
        )

    def deregister(self, name: str, at: int) -> RegisterAck:
        return _merge_acks(
            [core.deregister(name, at=at) for core in self.cores]
        )

    def set_rate(self, event_rate: int, at: int) -> RegisterAck:
        return _merge_acks(
            [
                core.set_event_rate(event_rate, at=at)
                for core in self.cores
            ]
        )

    def collect(self, drain: bool) -> "list[ShardReport]":
        return [core.report(drain=drain) for core in self.cores]

    def stats(self) -> "list[ExecutionStats]":
        return [core.stats() for core in self.cores]

    def switches(self) -> "list[list[PlanSwitchRecord]]":
        return [list(core.switches) for core in self.cores]

    def watermarks(self) -> "list[int]":
        return [core.watermark for core in self.cores]

    def max_retained_state(self) -> int:
        return max(
            (core.max_retained_state() for core in self.cores), default=0
        )

    def snapshot(self) -> "list[bytes]":
        """Serialize every shard core (one pickle blob per shard) —
        the backend half of a coordinator-consistent checkpoint."""
        return [
            pickle.dumps(core, protocol=pickle.HIGHEST_PROTOCOL)
            for core in self.cores
        ]

    def restore(self, states: "list[bytes]") -> None:
        """Replace every shard core with a snapshotted one."""
        if len(states) != len(self.cores):
            raise ExecutionError(
                f"snapshot has {len(states)} shard cores, backend has "
                f"{len(self.cores)}"
            )
        self.cores = [pickle.loads(state) for state in states]

    # ------------------------------------------------------------------
    # Elastic-shard protocol (DESIGN.md §12): direct core calls.  The
    # worker backends speak the identical five-op vocabulary over their
    # control pipes, so one coordinator plan drives all three.
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return len(self.cores)

    def migrate_extract(self, slot: int, local_ids) -> object:
        return self.cores[slot].extract_keys(local_ids)

    def migrate_absorb(self, slot: int, bundle, positions) -> None:
        self.cores[slot].absorb_keys(bundle, positions)

    def spawn_sibling(self, src_slot: int, config: ShardConfig) -> None:
        del config  # the sibling clones the donor; nothing to build
        self.cores.append(self.cores[src_slot].spawn_sibling())

    def retire_shard(self, slot: int) -> object:
        return self.cores.pop(slot).extract_remnant()

    def absorb_remnant(self, slot: int, remnant) -> None:
        self.cores[slot].absorb_remnant(remnant)

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Worker-process backends (pipe and shared-memory data planes)
# ----------------------------------------------------------------------
#: Commands that synchronously return a payload (everything else is
#: fire-and-forget data plane).
_REPLY_OPS = frozenset(
    {
        "register",
        "deregister",
        "rate",
        "collect",
        "stats",
        "retained",
        "snapshot",
        "restore",
        # Elastic-shard migration vocabulary (DESIGN.md §12).  These
        # are deliberately *not* in _LOGGED_OPS: a transplant is not
        # replayable command-by-command — recovery instead rolls the
        # whole migration back to its pre-plan snapshot and redoes it.
        "extract",
        "absorb",
        "sibling",
        "remnant",
        "absorb_remnant",
    }
)

#: Mutating control commands the coordinator retains for crash-recovery
#: replay (reads are idempotent or reproduced via a drain barrier).
_LOGGED_OPS = frozenset({"register", "deregister", "rate"})

#: Worker idle wait on the control pipe when the data plane is quiet.
_IDLE_POLL_SECONDS = 500e-6

#: Coordinator poll step while waiting for a control reply — short
#: enough that worker death (liveness) surfaces promptly, long enough
#: to cost nothing against real reply latencies.
_CONTROL_POLL_SECONDS = 0.05


def _send_fatal(conn) -> None:
    """Last words: ship the traceback of a dying worker loop up the
    control pipe so the coordinator can surface the *cause* of the
    crash, not just an EOF (satellite of DESIGN.md §9)."""
    try:
        conn.send(("fatal", traceback.format_exc()))
    except Exception:  # pragma: no cover - pipe already gone
        pass


def _apply_control(core, conn, msg, pending_error: "str | None") -> "str | None":
    """Execute one synchronous control-plane command and reply on the
    pipe.  A parked data-plane error pre-empts the command (the reply
    stream must never desync); the possibly-updated parked error is
    returned."""
    op = msg[0]
    if pending_error is not None:
        conn.send(("error", pending_error))
        return pending_error
    try:
        if op == "register":
            conn.send(("ok", core.register(msg[1], at=msg[2], scope=msg[3])))
        elif op == "deregister":
            conn.send(("ok", core.deregister(msg[1], at=msg[2])))
        elif op == "rate":
            conn.send(("ok", core.set_event_rate(msg[1], at=msg[2])))
        elif op == "collect":
            conn.send(("ok", core.report(drain=msg[1])))
        elif op == "stats":
            conn.send(
                ("ok", (core.stats(), list(core.switches), core.watermark))
            )
        elif op == "retained":
            conn.send(("ok", core.max_retained_state()))
        elif op == "extract":
            # The coordinator only sends migration ops at a drained
            # barrier (ring empty / pipe fully consumed), which the
            # core re-asserts via _require_barrier.
            conn.send(("ok", core.extract_keys(msg[1])))
        elif op == "absorb":
            conn.send(("ok", core.absorb_keys(msg[1], msg[2])))
        elif op == "sibling":
            conn.send(
                (
                    "ok",
                    pickle.dumps(
                        core.spawn_sibling(),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                )
            )
        elif op == "remnant":
            conn.send(("ok", core.extract_remnant()))
        elif op == "absorb_remnant":
            conn.send(("ok", core.absorb_remnant(msg[1])))
        elif op == "snapshot":
            # The coordinator broadcasts this after publishing all
            # pending data, so the stream position of this command IS
            # the consistent cut (pipe FIFO; the shm worker drains its
            # ring first) — no lockstep pause needed.
            conn.send(
                ("ok", pickle.dumps(core, protocol=pickle.HIGHEST_PROTOCOL))
            )
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"unknown shard command {msg[0]!r}")
    except Exception:
        err = traceback.format_exc()
        if op in _REPLY_OPS:
            conn.send(("error", err))
        else:  # pragma: no cover - defensive (no reply is owed)
            return err
    return pending_error


def _shard_worker(conn, config: ShardConfig) -> None:
    """One shard's command loop: a :class:`SessionCore` behind a pipe.

    Data-plane errors (from fire-and-forget ``feed``/``advance``) are
    parked and surfaced on the next synchronous command, so the
    coordinator never desyncs on the reply stream.  An unhandled crash
    of the loop itself ships its traceback as a ``fatal`` message
    before the process dies.
    """
    try:
        _shard_worker_loop(conn, config)
    except BaseException:  # noqa: BLE001 - last words, then die
        _send_fatal(conn)
        raise


def _shard_worker_loop(conn, config: ShardConfig) -> None:
    core = config.build()
    pending_error: "str | None" = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        op = msg[0]
        if op == "close":
            conn.close()
            return
        if op == "restore":
            # Recovery path: adopt a snapshotted core wholesale (the
            # coordinator replays post-snapshot input right after).
            core = pickle.loads(msg[1])
            pending_error = None
            conn.send(("ok", core.watermark))
        elif op in ("feed", "advance"):
            try:
                if op == "feed":
                    for ts, keys, values in msg[1]:
                        if ts.size:
                            core.buffer_arrays(ts, keys, values)
                else:
                    core.advance_to(msg[1])
            except Exception:
                pending_error = traceback.format_exc()
        else:
            pending_error = _apply_control(core, conn, msg, pending_error)


def _shm_shard_worker(conn, config: ShardConfig, spec, untrack: bool) -> None:
    """One shard's loop for the shared-memory backend: data plane from
    the ring, control plane from the pipe.

    The coordinator publishes every data/advance record *before* it
    sends a control command and then blocks for the reply, so draining
    the ring to empty right before executing a control command applies
    that command at exactly its position in the stream — the same FIFO
    the single-pipe worker gets for free.
    """
    try:
        _shm_shard_worker_loop(conn, config, spec, untrack)
    except BaseException:  # noqa: BLE001 - last words, then die
        _send_fatal(conn)
        raise


def _shm_shard_worker_loop(
    conn, config: ShardConfig, spec, untrack: bool
) -> None:
    from .shm_ring import ShmRing

    ring = ShmRing.attach(spec, untrack=untrack)
    core = config.build()
    pending_error: "str | None" = None
    # Zero-copy consume: data records are *borrowed* (slot views go
    # straight into the core's chunk buffer; no per-column memcpy) and
    # their slots are released in bulk once a flush has absorbed the
    # views.  The budget keeps two slots available to the producer so
    # it can always publish the advance record that triggers that
    # flush; hitting the budget localizes the buffer (one bounded
    # copy) and releases, so a borrow can never deadlock the
    # coordinator or outlive a slot's reuse.
    borrow_budget = max(ring.spec.num_slots - 2, 0)

    def release_borrows() -> None:
        if ring.borrowed:
            if core.buffered_events:
                core.localize_buffer()
            ring.release()

    def drain() -> "tuple[bool, str | None]":
        progressed, error = False, None
        # A pop() failure (corrupt ring record) propagates and kills
        # the worker: the head never moves past a record that cannot
        # be parsed, so parking the error would wedge the ring and
        # deadlock the coordinator.  Application errors, by contrast,
        # are parked — the record was consumed, so draining continues
        # and the error surfaces on the next control reply.
        while True:
            if ring.borrowed >= borrow_budget:
                release_borrows()
            record = ring.pop(copy=False)
            if record is None:
                break
            progressed = True
            try:
                if record[0] == "data":
                    core.buffer_arrays(record[1], record[2], record[3])
                else:
                    core.advance_to(record[1])
            except Exception:
                error = error or traceback.format_exc()
            if ring.borrowed and not core.buffered_events:
                ring.release()
        core.bytes_copied += ring.bytes_copied
        core.copies_elided += ring.copies_elided
        ring.bytes_copied = 0
        ring.copies_elided = 0
        return progressed, error

    try:
        while True:
            progressed, error = drain()
            pending_error = pending_error or error
            if not conn.poll(0 if progressed else _IDLE_POLL_SECONDS):
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # pragma: no cover - parent died
                return
            if msg[0] == "close":
                conn.close()
                return
            if msg[0] == "restore":
                # The adopted core owns all of its buffered chunks
                # (views pickle by value), so any slots the discarded
                # core still borrowed can be freed outright.
                ring.release()
                core = pickle.loads(msg[1])
                pending_error = None
                conn.send(("ok", core.watermark))
                continue
            _, error = drain()
            pending_error = pending_error or error
            pending_error = _apply_control(core, conn, msg, pending_error)
    finally:
        ring.close()


class _WorkerShardBackend:
    """Shared machinery of the worker-process backends: one daemonic
    worker per shard, a control pipe each, broadcast/gather with
    drain-before-raise error collection.  Subclasses choose the data
    plane by implementing :meth:`feed` / :meth:`advance` and spawning
    their worker loop in :meth:`start`.

    **Durability** (DESIGN.md §9).  :meth:`configure` arms three
    orthogonal behaviours:

    * *crash diagnostics* — every control reply is awaited with a
      liveness poll, so a dead worker surfaces as an
      :class:`~repro.errors.ExecutionError` carrying the shard, the
      exit code, the worker's own traceback (its ``fatal`` last words,
      when the crash was a Python error), and the last watermark the
      worker provably acked — never a bare ``EOFError``;
    * *recovery* — the coordinator retains each shard's last core
      snapshot plus an ordered replay log of everything shipped since
      (feeds, advances, mutations, drain barriers).  A detected death
      respawns the worker, restores the snapshot, replays the log, and
      re-issues the in-flight command — results stay bit-identical to
      a crash-free run (invariant 12);
    * *fault injection* — a :class:`~repro.runtime.faults.FaultPlan`
      is consulted before every data-plane ship and control delivery,
      making chaos schedules deterministic and property-testable.
    """

    def __init__(self, context: "str | None" = None):
        self._ctx = multiprocessing.get_context(context)
        self._conns = []
        self._procs = []
        self._configs: "list[ShardConfig]" = []
        self._fault_plan = None
        self._retain = False
        self._control_timeout: "float | None" = DEFAULT_CONTROL_TIMEOUT
        self._base_states: "list[bytes | None]" = []
        self._logs: "list[list[tuple]]" = []
        self._last_advance = 0
        self._last_acked: "list[int]" = []
        self._fatal_tracebacks: "dict[int, str]" = {}
        self._migration_active = False
        self.recoveries = 0

    def configure(
        self,
        fault_plan=None,
        recovery: "bool | None" = None,
        control_timeout: "float | None" = _TIMEOUT_UNSET,
    ) -> None:
        """Arm fault injection, crash recovery, and/or a control-plane
        reply deadline (defaults to
        :data:`DEFAULT_CONTROL_TIMEOUT`; an explicit ``None`` waits on
        liveness alone — a lost control message then hangs rather than
        stalls out)."""
        if fault_plan is not None:
            self._fault_plan = fault_plan
        if recovery is not None:
            self._retain = recovery
        if control_timeout is not _TIMEOUT_UNSET:
            self._control_timeout = control_timeout

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, config: ShardConfig, target, extra_args=()) -> None:
        slot = len(self._configs)
        self._configs.append(config)
        self._conns.append(None)
        self._procs.append(None)
        self._base_states.append(None)
        self._logs.append([])
        self._last_acked.append(0)
        self._spawn_at(slot, target, extra_args)

    def _spawn_at(self, slot: int, target, extra_args=()) -> None:
        config = self._configs[slot]
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=target,
            args=(child, config, *extra_args),
            daemon=True,
            name=f"repro-shard-{config.shard}",
        )
        proc.start()
        child.close()
        old = self._conns[slot]
        if old is not None:
            try:
                old.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._conns[slot] = parent
        self._procs[slot] = proc

    def _kill_worker(self, slot: int) -> None:
        """SIGKILL one worker and wait for it to die (fault injection:
        the death must be visible before the next command ships)."""
        proc = self._procs[slot]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=10.0)

    def _reap(self, slot: int) -> None:
        """Ensure one worker is dead and its pipe closed (recovery
        pre-step; escalates terminate → kill)."""
        proc = self._procs[slot]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stubborn worker
                proc.kill()
                proc.join(timeout=10.0)
        conn = self._conns[slot]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    # Control plane: faulted send, liveness-aware receive
    # ------------------------------------------------------------------
    def _send_control(self, slot: int, msg) -> None:
        op = msg[0]
        plan = self._fault_plan
        if plan is not None:
            for fault in plan.take(
                "control", slot, watermark=self._last_advance, op=op
            ):
                if fault.kind == "kill":
                    self._kill_worker(slot)
                elif fault.kind == "drop_control":
                    return  # command never delivered
                elif fault.kind == "delay_control":
                    time.sleep(fault.delay_seconds)
                elif fault.kind == "kill_mid_op":
                    try:
                        self._conns[slot].send(msg)
                    except (BrokenPipeError, OSError):
                        pass
                    self._kill_worker(slot)
                    return
                else:  # pragma: no cover - poison handled on data plane
                    raise ExecutionError(
                        f"fault kind {fault.kind!r} cannot fire on the "
                        "control plane"
                    )
        self._conns[slot].send(msg)

    def _recv_reply(self, slot: int) -> "tuple[str, object, str | None]":
        """Await one control reply with liveness: returns ``(kind,
        payload, cause)`` where kind is ``ok``/``error`` (worker
        replied), ``dead`` (worker died), or ``stall`` (alive but past
        the control timeout)."""
        conn, proc = self._conns[slot], self._procs[slot]
        timeout = self._control_timeout
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            try:
                if conn.poll(_CONTROL_POLL_SECONDS):
                    msg = conn.recv()
                    if msg[0] == "fatal":
                        self._fatal_tracebacks[slot] = msg[1]
                        return ("dead", None, "worker crashed")
                    return (msg[0], msg[1], None)
            except (EOFError, OSError):
                return ("dead", None, "control connection lost")
            if not proc.is_alive():
                # One last poll: the dying worker may have flushed its
                # fatal traceback before the pipe closed.
                try:
                    if conn.poll(0):
                        msg = conn.recv()
                        if msg[0] == "fatal":
                            self._fatal_tracebacks[slot] = msg[1]
                            return ("dead", None, "worker crashed")
                        return (msg[0], msg[1], None)
                except (EOFError, OSError):
                    pass
                return (
                    "dead",
                    None,
                    f"worker exited (exitcode {proc.exitcode})",
                )
            if deadline is not None and time.monotonic() >= deadline:
                cause = (
                    f"no reply within {timeout:.1f}s (worker alive — "
                    "control message lost or worker wedged)"
                )
                if not self._retain:
                    # Match the crash path's actionable hint: a stall is
                    # recoverable the same way a crash is.
                    cause += (
                        "; worker_recovery=True would respawn and "
                        "replay the stalled worker instead of failing"
                    )
                return ("stall", None, cause)

    def _raise_worker_failure(
        self, slot: int, cause: str, context: str
    ) -> None:
        """Actionable crash diagnostics: shard identity, exit code,
        last-acked watermark, and the worker's own traceback when it
        had time to send one."""
        conn = self._conns[slot]
        if slot not in self._fatal_tracebacks and conn is not None:
            # A data-plane failure never reads the pipe — give the
            # dying worker a moment to flush its last words.
            try:
                while conn.poll(0.2):
                    last = conn.recv()
                    if last[0] == "fatal":
                        self._fatal_tracebacks[slot] = last[1]
                        break
            except (EOFError, OSError):
                pass
        proc = self._procs[slot]
        shard = self._configs[slot].shard
        exitcode = None if proc is None else proc.exitcode
        detail = (
            f"shard {shard} worker failed during {context!r}: {cause} "
            f"[exitcode={exitcode}, last-acked watermark "
            f"{self._last_acked[slot]}, last advance sent "
            f"{self._last_advance}]"
        )
        tb = self._fatal_tracebacks.get(slot)
        if tb:
            detail += f"\nworker traceback:\n{tb}"
        if not self._retain:
            detail += (
                "\n(no recovery snapshot retained — construct the "
                "session with worker_recovery=True to respawn and "
                "replay instead of failing)"
            )
        raise ExecutionError(detail)

    # ------------------------------------------------------------------
    # Broadcast commands with recovery
    # ------------------------------------------------------------------
    def _command(self, msg) -> list:
        """Broadcast one reply-bearing command, gather one reply per
        worker (drain-before-raise), and recover any worker that died
        along the way."""
        op = msg[0]
        count = len(self._conns)
        send_failure: "dict[int, str]" = {}
        for slot in range(count):
            try:
                self._send_control(slot, msg)
            except (BrokenPipeError, OSError) as exc:
                send_failure[slot] = f"control send failed ({exc})"
        replies: list = [None] * count
        errors: "list[tuple[int, str]]" = []
        failed: "list[tuple[int, str]]" = []
        for slot in range(count):
            if slot in send_failure:
                failed.append((slot, send_failure[slot]))
                continue
            kind, payload, cause = self._recv_reply(slot)
            if kind == "ok":
                replies[slot] = payload
                self._last_acked[slot] = self._last_advance
            elif kind == "error":
                errors.append((slot, payload))
            else:  # dead or stall
                failed.append((slot, cause))
        for slot, cause in failed:
            if self._migration_active:
                # Per-slot replay recovery is invalid mid-epoch: the
                # replay base predates the (unlogged) migration ops.
                # Escalate so the coordinator rolls the epoch back.
                raise _MigrationDisrupted(slot, op, cause)
            if not self._retain:
                self._raise_worker_failure(slot, cause, op)
            replies[slot] = self._recover_slot(slot, cause, inflight=msg)
        if errors:
            detail = "\n".join(
                f"shard {self._configs[slot].shard}: {payload}"
                for slot, payload in errors
            )
            raise ExecutionError(f"shard worker(s) failed:\n{detail}")
        if self._retain:
            if op in _LOGGED_OPS:
                for slot in range(count):
                    self._logs[slot].append(("cmd", msg))
            elif op == "collect" and msg[1]:
                # drain=True consumes subscription state: replay must
                # reproduce the consumption (and discard the output).
                for slot in range(count):
                    self._logs[slot].append(("drain",))
        return replies

    # ------------------------------------------------------------------
    # Crash recovery: respawn + restore + replay
    # ------------------------------------------------------------------
    def _recover_slot(self, slot: int, cause: str, inflight):
        """Bring one crashed shard back: reap the dead worker, respawn
        it (fresh data plane), restore the last retained core snapshot,
        replay the retained post-snapshot input in order, and re-issue
        the in-flight command (returning its reply).

        The replay log and the in-flight command are disjoint by
        construction — mutations are logged only after every shard
        acked them — so nothing is ever applied twice.
        """
        shard = self._configs[slot].shard
        self._reap(slot)
        self._fatal_tracebacks.pop(slot, None)
        self._respawn_slot(slot)
        self.recoveries += 1
        conn = self._conns[slot]
        base = self._base_states[slot]
        if base is not None:
            conn.send(("restore", base))
            self._expect_ok(slot, "restore", cause)
        for entry in self._logs[slot]:
            kind = entry[0]
            if kind == "feed":
                self._replay_feed(slot, entry[1])
            elif kind == "advance":
                self._replay_advance(slot, entry[1])
            elif kind == "cmd":
                conn.send(entry[1])
                self._expect_ok(slot, entry[1][0], cause)
            elif kind == "drain":
                conn.send(("collect", True))
                self._expect_ok(slot, "collect", cause)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown replay entry {kind!r}")
        if inflight is not None:
            conn.send(inflight)
            return self._expect_ok(slot, inflight[0], cause)
        return None

    def _expect_ok(self, slot: int, op: str, original_cause: str):
        kind, payload, cause = self._recv_reply(slot)
        if kind == "ok":
            return payload
        detail = payload if kind == "error" else cause
        self._raise_worker_failure(
            slot,
            f"recovery replay of {op!r} failed ({detail}); original "
            f"failure: {original_cause}",
            op,
        )

    def _data_plane_failure(self, slot: int, cause: str, op: str) -> None:
        """A fire-and-forget ship failed.  The entry was logged before
        the attempt, so recovery replays it — nothing to re-send here."""
        proc = self._procs[slot]
        dead = proc is None or not proc.is_alive()
        if self._migration_active:  # pragma: no cover - defensive
            raise _MigrationDisrupted(slot, op, cause)
        if self._retain and dead:
            self._recover_slot(slot, cause, inflight=None)
        else:
            self._raise_worker_failure(slot, cause, op)

    # ------------------------------------------------------------------
    # Elastic-shard protocol (DESIGN.md §12)
    # ------------------------------------------------------------------
    # Migration ops are single-slot, synchronous, and — unlike every
    # other command — NOT individually recoverable: a transplant
    # bundle extracted from a core that then crashed and was restored
    # from its base would be applied twice.  A failure mid-plan raises
    # :class:`_MigrationDisrupted` instead; the coordinator rolls the
    # whole topology back to the epoch snapshot and redoes the plan.
    @property
    def slot_count(self) -> int:
        return len(self._conns)

    @property
    def recovery_armed(self) -> bool:
        return self._retain

    def _migration_command(self, slot: int, msg):
        op = msg[0]
        try:
            self._send_control(slot, msg)
        except (BrokenPipeError, OSError) as exc:
            self._migration_failure(slot, op, f"control send failed ({exc})")
        kind, payload, cause = self._recv_reply(slot)
        if kind == "ok":
            self._last_acked[slot] = self._last_advance
            return payload
        if kind == "error":
            raise ExecutionError(
                f"shard {self._configs[slot].shard} rejected migration "
                f"op {op!r}:\n{payload}"
            )
        self._migration_failure(slot, op, cause)

    def _migration_failure(self, slot: int, op: str, cause: str) -> None:
        if self._retain:
            raise _MigrationDisrupted(slot, op, cause)
        self._raise_worker_failure(slot, cause, op)

    def migrate_extract(self, slot: int, local_ids) -> object:
        return self._migration_command(slot, ("extract", local_ids))

    def migrate_absorb(self, slot: int, bundle, positions) -> None:
        self._migration_command(slot, ("absorb", bundle, positions))

    def absorb_remnant(self, slot: int, remnant) -> None:
        self._migration_command(slot, ("absorb_remnant", remnant))

    def spawn_sibling(self, src_slot: int, config: ShardConfig) -> None:
        """Shard split: clone the donor core into a fresh worker.

        The donor serializes a keyless sibling (workload history and
        barrier cursors intact, per-key state stripped, counters
        zeroed); a new worker is spawned at the end of the slot list
        and restores the sibling blob."""
        blob = self._migration_command(src_slot, ("sibling",))
        self._spawn_worker(config)
        slot = len(self._conns) - 1
        try:
            self._conns[slot].send(("restore", blob))
        except (BrokenPipeError, OSError) as exc:
            self._migration_failure(
                slot, "sibling", f"restore send failed ({exc})"
            )
        kind, payload, cause = self._recv_reply(slot)
        if kind != "ok":
            self._migration_failure(
                slot,
                "sibling",
                cause or f"sibling restore rejected:\n{payload}",
            )

    def retire_shard(self, slot: int) -> object:
        """Shard merge: collect the keyless core's cross-key remnant,
        shut its worker down, and drop the slot from the topology."""
        remnant = self._migration_command(slot, ("remnant",))
        conn = self._conns[slot]
        try:
            conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        proc = self._procs[slot]
        if proc is not None:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stubborn worker
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stubborn worker
                proc.kill()
                proc.join(timeout=10.0)
        self._drop_slot(slot)
        return remnant

    def _drop_slot(self, slot: int) -> None:
        for seq in (
            self._conns,
            self._procs,
            self._configs,
            self._base_states,
            self._logs,
            self._last_acked,
        ):
            del seq[slot]
        self._fatal_tracebacks = {
            (s - 1 if s > slot else s): tb
            for s, tb in self._fatal_tracebacks.items()
            if s != slot
        }

    def migration_epoch_begin(self) -> None:
        """Open a migration epoch: snapshot every core (the rollback
        point) and remember the pre-plan topology."""
        if not self._retain:
            raise ExecutionError(
                "migration epochs require worker_recovery=True"
            )
        self.snapshot()
        self._epoch_configs = list(self._configs)
        self._epoch_bases = list(self._base_states)
        # From here until epoch_end's snapshot lands, a worker death
        # cannot be repaired per-slot (migration ops are unlogged) —
        # _command escalates failures to _MigrationDisrupted instead.
        self._migration_active = True

    def migration_rollback(self) -> None:
        """Discard a half-run migration plan: tear down whatever
        topology it left behind and rebuild the epoch's workers from
        their pre-plan snapshots.  Counts as one recovery."""
        for slot in range(len(self._conns)):
            self._reap(slot)
        self._conns, self._procs = [], []
        self._configs = []
        self._base_states, self._logs = [], []
        self._last_acked = []
        self._fatal_tracebacks = {}
        self._release_data_plane()
        for config, base in zip(self._epoch_configs, self._epoch_bases):
            self._spawn_worker(config)
            slot = len(self._conns) - 1
            if base is None:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"no rollback snapshot for shard {config.shard}"
                )
            self._conns[slot].send(("restore", base))
            kind, payload, cause = self._recv_reply(slot)
            if kind != "ok":
                self._raise_worker_failure(
                    slot,
                    cause or f"rollback restore rejected:\n{payload}",
                    "restore",
                )
            self._base_states[slot] = base
        self.recoveries += 1

    def migration_epoch_end(self) -> None:
        """Close a migration epoch: re-snapshot the (possibly resized)
        topology so ordinary per-worker crash recovery resumes from the
        post-migration layout."""
        self.snapshot()
        self._migration_active = False
        self._epoch_configs = []
        self._epoch_bases = []

    def _spawn_worker(self, config: ShardConfig) -> None:  # pragma: no cover
        raise NotImplementedError

    # Subclass hooks -----------------------------------------------------
    def _respawn_slot(self, slot: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _replay_feed(self, slot, chunks) -> None:  # pragma: no cover
        raise NotImplementedError

    def _replay_advance(self, slot, watermark) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Data-plane shared helpers
    # ------------------------------------------------------------------
    def _log(self, slot: int, entry: tuple) -> None:
        if self._retain:
            self._logs[slot].append(entry)

    def _inject_data_faults(self, slot: int, watermark: int) -> None:
        plan = self._fault_plan
        if plan is None:
            return
        for fault in plan.take("advance", slot, watermark=watermark):
            if fault.kind == "kill":
                self._kill_worker(slot)
            elif fault.kind == "poison_ring":
                self._poison_slot(slot)
            else:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"fault kind {fault.kind!r} cannot fire on the "
                    "data plane"
                )

    def _poison_slot(self, slot: int) -> None:
        raise ExecutionError(
            "poison_ring faults require the shm backend (there is no "
            "ring to poison on this data plane)"
        )

    # ------------------------------------------------------------------
    # Backend surface (ShardedSession contract)
    # ------------------------------------------------------------------
    def register(self, query: Query, at: int, scope: str) -> RegisterAck:
        return _merge_acks(self._command(("register", query, at, scope)))

    def deregister(self, name: str, at: int) -> RegisterAck:
        return _merge_acks(self._command(("deregister", name, at)))

    def set_rate(self, event_rate: int, at: int) -> RegisterAck:
        return _merge_acks(self._command(("rate", event_rate, at)))

    def collect(self, drain: bool) -> "list[ShardReport]":
        return self._command(("collect", drain))

    def _status(self) -> list:
        return self._command(("stats",))

    def stats(self) -> "list[ExecutionStats]":
        return [status[0] for status in self._status()]

    def switches(self) -> "list[list[PlanSwitchRecord]]":
        return [status[1] for status in self._status()]

    def watermarks(self) -> "list[int]":
        return [status[2] for status in self._status()]

    def max_retained_state(self) -> int:
        return max(self._command(("retained",)), default=0)

    def snapshot(self) -> "list[bytes]":
        """One consistent cut across every shard: the broadcast rides
        the same FIFO as the data plane, so each worker serializes its
        core at exactly the coordinator's stream position.  When
        recovery is armed the new snapshot becomes the respawn base and
        the replay logs truncate."""
        states = self._command(("snapshot",))
        if self._retain:
            self._base_states = list(states)
            self._logs = [[] for _ in states]
        return states

    def restore(self, states: "list[bytes]") -> None:
        """Load one snapshotted core per worker (session restore)."""
        if len(states) != len(self._conns):
            raise ExecutionError(
                f"snapshot has {len(states)} shard cores, backend has "
                f"{len(self._conns)}"
            )
        for slot, state in enumerate(states):
            self._send_control(slot, ("restore", state))
        for slot in range(len(states)):
            kind, _, cause = self._recv_reply(slot)
            if kind != "ok":
                self._raise_worker_failure(
                    slot, cause or "restore rejected", "restore"
                )
        if self._retain:
            self._base_states = list(states)
            self._logs = [[] for _ in states]

    def close(self) -> None:
        """Shut every worker down, robust to workers that are already
        dead: bounded join with terminate → kill escalation, and the
        data plane (shm segments included) released on every path."""
        try:
            for conn in self._conns:
                if conn is None:
                    continue
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            deadline = time.monotonic() + 5.0
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stubborn worker
                    proc.kill()
                    proc.join(timeout=10.0)
        finally:
            self._conns, self._procs = [], []
            self._configs = []
            self._base_states, self._logs = [], []
            self._last_acked = []
            self._release_data_plane()

    def _release_data_plane(self) -> None:
        """Subclass hook: tear down data-plane resources after the
        workers have exited."""


class ProcessShardBackend(_WorkerShardBackend):
    """One worker process per shard, fed columnar slices over a pipe.

    Pipes give per-worker FIFO command streams; only commands in
    ``_REPLY_OPS`` produce replies, so the coordinator can pipeline
    data-plane traffic without round trips.  Workers are daemonic —
    they die with the coordinator process.
    """

    name = "process"

    def start(self, configs: "list[ShardConfig]") -> None:
        for config in configs:
            self._spawn(config, _shard_worker)

    def feed(self, slices) -> None:
        for slot, chunks in enumerate(slices):
            if not chunks:
                continue
            self._log(slot, ("feed", chunks))
            try:
                self._conns[slot].send(("feed", chunks))
            except (BrokenPipeError, OSError) as exc:
                self._data_plane_failure(
                    slot, f"feed pipe failed ({exc})", "feed"
                )

    def advance(self, watermark: int) -> None:
        self._last_advance = watermark
        for slot in range(len(self._conns)):
            self._log(slot, ("advance", watermark))
            self._inject_data_faults(slot, watermark)
            try:
                self._conns[slot].send(("advance", watermark))
            except (BrokenPipeError, OSError) as exc:
                self._data_plane_failure(
                    slot, f"advance pipe failed ({exc})", "advance"
                )

    def _respawn_slot(self, slot: int) -> None:
        self._spawn_at(slot, _shard_worker)

    def _spawn_worker(self, config: ShardConfig) -> None:
        self._spawn(config, _shard_worker)

    def _replay_feed(self, slot, chunks) -> None:
        self._conns[slot].send(("feed", chunks))

    def _replay_advance(self, slot, watermark) -> None:
        self._conns[slot].send(("advance", watermark))


class SharedMemoryShardBackend(_WorkerShardBackend):
    """One worker per shard with a shared-memory ring data plane.

    Same worker topology as :class:`ProcessShardBackend`, but the data
    plane — event slices *and* watermark advances — flows through one
    :class:`~repro.runtime.shm_ring.ShmRing` per shard: columnar
    blocks are written directly into fixed-capacity shared-memory
    slots (no pickling, no pipe syscalls per chunk) and consumed as
    numpy views on the worker side.  Control-plane commands stay on
    the pipe; the worker drains its ring before executing one, which
    restores the single-pipe FIFO ordering (DESIGN.md §8).

    Flow control is the ring itself: a full ring blocks the
    coordinator (bounded, lossless backpressure) until the worker
    frees slots, raising only if the worker dies or stalls beyond
    ``feed_timeout`` seconds.

    Parameters
    ----------
    slot_events:
        Event capacity of one ring slot (larger slices split across
        slots).  Slot bytes are ``slot_events *``
        :data:`~repro.engine.events.EVENT_BYTES`.
    num_slots:
        Slots per ring; ``slot_events * num_slots`` bounds the
        coordinator→worker in-flight event count per shard.
    """

    name = "shm"

    def __init__(
        self,
        context: "str | None" = None,
        slot_events: int = 8192,
        num_slots: int = 16,
        feed_timeout: float = 60.0,
    ):
        super().__init__(context)
        self._slot_events = slot_events
        self._num_slots = num_slots
        self._feed_timeout = feed_timeout
        self._rings = []

    def start(self, configs: "list[ShardConfig]") -> None:
        from .shm_ring import ShmRing

        # A fork-context worker shares the coordinator's resource
        # tracker (it must not untrack the segment); a spawn-context
        # worker runs its own and must untrack (see ShmRing.attach).
        untrack = self._ctx.get_start_method() != "fork"
        try:
            for config in configs:
                ring = ShmRing.create(
                    slot_events=self._slot_events, num_slots=self._num_slots
                )
                self._rings.append(ring)
                self._spawn(config, _shm_shard_worker, (ring.spec, untrack))
        except BaseException:
            # A mid-loop failure (ENOSPC on /dev/shm, spawn error)
            # would otherwise orphan the segments already created —
            # close() is unreachable because the session constructor
            # never returns.  Tear down what exists, then re-raise.
            self.close()
            raise

    def feed(self, slices) -> None:
        for slot, chunks in enumerate(slices):
            if not chunks:
                continue
            self._log(slot, ("feed", chunks))
            try:
                for ts, keys, values in chunks:
                    self._rings[slot].push_events(
                        ts,
                        keys,
                        values,
                        timeout=self._feed_timeout,
                        liveness=self._procs[slot].is_alive,
                    )
            except ExecutionError as exc:
                self._data_plane_failure(slot, str(exc), "feed")

    def advance(self, watermark: int) -> None:
        self._last_advance = watermark
        for slot in range(len(self._rings)):
            self._log(slot, ("advance", watermark))
            self._inject_data_faults(slot, watermark)
            try:
                self._rings[slot].push_advance(
                    watermark,
                    timeout=self._feed_timeout,
                    liveness=self._procs[slot].is_alive,
                )
            except ExecutionError as exc:
                self._data_plane_failure(slot, str(exc), "advance")

    def _respawn_slot(self, slot: int) -> None:
        from .shm_ring import ShmRing

        # The dead worker's ring may hold half-consumed slots; replay
        # re-ships everything, so start the respawn on a fresh segment.
        old = self._rings[slot]
        old.close_ring()
        old.close()
        ring = ShmRing.create(
            slot_events=self._slot_events, num_slots=self._num_slots
        )
        self._rings[slot] = ring
        untrack = self._ctx.get_start_method() != "fork"
        self._spawn_at(slot, _shm_shard_worker, (ring.spec, untrack))

    def _spawn_worker(self, config: ShardConfig) -> None:
        from .shm_ring import ShmRing

        ring = ShmRing.create(
            slot_events=self._slot_events, num_slots=self._num_slots
        )
        untrack = self._ctx.get_start_method() != "fork"
        try:
            self._spawn(config, _shm_shard_worker, (ring.spec, untrack))
        except BaseException:  # pragma: no cover - spawn failure
            ring.close_ring()
            ring.close()
            raise
        self._rings.append(ring)

    def _drop_slot(self, slot: int) -> None:
        ring = self._rings.pop(slot)
        ring.close_ring()
        ring.close()
        super()._drop_slot(slot)

    def _replay_feed(self, slot, chunks) -> None:
        for ts, keys, values in chunks:
            self._rings[slot].push_events(
                ts,
                keys,
                values,
                timeout=self._feed_timeout,
                liveness=self._procs[slot].is_alive,
            )

    def _replay_advance(self, slot, watermark) -> None:
        self._rings[slot].push_advance(
            watermark,
            timeout=self._feed_timeout,
            liveness=self._procs[slot].is_alive,
        )

    def _poison_slot(self, slot: int) -> None:
        self._rings[slot].poison_slot()

    def _release_data_plane(self) -> None:
        for ring in self._rings:
            ring.close_ring()
            ring.close()
        self._rings = []


def _resolve_backend(backend):
    if isinstance(backend, str):
        if backend == "serial":
            return SerialShardBackend()
        if backend in ("process", "multiprocessing"):
            return ProcessShardBackend()
        if backend in ("shm", "shared_memory", "shared-memory"):
            return SharedMemoryShardBackend()
        raise ExecutionError(
            f"unknown shard backend {backend!r}; "
            "expected 'serial', 'process', or 'shm'"
        )
    return backend


def _configure_durability(
    backend, fault_plan, worker_recovery: bool, control_timeout
) -> None:
    """Arm a backend's durability knobs.

    Fault injection and worker recovery fail loudly on backends without
    a ``configure`` hook (serial cores cannot crash independently — a
    chaos schedule against them would silently test nothing).  The
    control timeout is passed through only where it means something:
    in-process calls cannot stall, so it is ignored — not rejected — on
    such backends (it carries a finite default, so rejecting it would
    break every serial construction)."""
    if not hasattr(backend, "configure"):
        if fault_plan is not None or worker_recovery:
            raise ExecutionError(
                f"backend {getattr(backend, 'name', backend)!r} does not "
                "support fault injection / worker recovery — use the "
                "'process' or 'shm' backend"
            )
        return
    backend.configure(
        fault_plan=fault_plan,
        recovery=worker_recovery,
        control_timeout=control_timeout,
    )


class ShardedSession(AsyncIngestFrontDoor):
    """A live multi-query session hash-partitioned over the key space.

    Drop-in surface of :class:`~repro.runtime.QuerySession` (push /
    register / deregister / results / finish) plus:

    * ``num_shards`` / ``backend`` — the partition width and where the
      shard cores run (``"serial"`` in-process, ``"process"`` one
      worker per shard over pipes, ``"shm"`` one worker per shard over
      shared-memory rings);
    * ``async_ingest=True`` — a bounded queue + pump thread in front
      of the coordinator (:mod:`repro.runtime.ingest`): pushes return
      immediately, backpressure at ``ingest_high_watermark`` queued
      events, identical results (DESIGN.md §8, invariant 11);
    * :meth:`push_batch` — the vectorized sorted fast path: whole
      columnar batches are partitioned per chunk and shipped as
      slices, bypassing per-event Python dispatch;
    * ``scope="global"`` registrations — cross-key aggregates merged
      at the coordinator (partials for mergeable aggregates, raw
      forwarding for holistic ones);
    * durability — :meth:`snapshot` / :meth:`restore` capture and
      resume the whole session bit-identically (invariant 12), and
      ``worker_recovery=True`` arms transparent respawn-and-replay of
      crashed shard workers (DESIGN.md §9, ``docs/durability.md``).

    Invariant 10: results are identical at every shard count, enforced
    by ``tests/runtime/test_sharding_properties.py``.

    Parameters (durability)
    -----------------------
    worker_recovery:
        Retain per-shard core snapshots plus a replay log of
        everything shipped since, so a crashed worker is respawned and
        replayed instead of failing the session.  Worker backends
        only.
    fault_plan:
        A :class:`~repro.runtime.faults.FaultPlan` of deterministic
        injected faults (chaos testing).  Worker backends only.
    control_timeout:
        Seconds to wait for a control-plane reply from a live worker
        before declaring it wedged (default
        :data:`DEFAULT_CONTROL_TIMEOUT`; ``None`` waits on process
        liveness alone — a lost control message then hangs rather than
        raises).  Ignored by the serial backend, whose in-process
        calls cannot stall.
    auto_checkpoint / checkpoint_meta / on_checkpoint:
        In-session checkpoint cadence, identical to
        :class:`~repro.runtime.QuerySession`'s: a
        :class:`~repro.runtime.checkpoint.CheckpointStore` built with
        ``every=<ticks>`` is consulted after every applied push and
        saves a rotating coordinator-consistent snapshot when due;
        ``checkpoint_meta()`` supplies each checkpoint's ``meta`` and
        ``on_checkpoint(snapshot, path)`` fires after each save.
    """

    def __init__(
        self,
        num_keys: int = 1,
        num_shards: "int | str" = 1,
        backend: "str | object" = "serial",
        num_slots: int = DEFAULT_NUM_SLOTS,
        max_lateness: int = 0,
        chunk_ticks: "int | None" = None,
        event_rate: int = 1,
        hysteresis: "float | None" = 0.25,
        alpha: float = 0.3,
        enable_factor_windows: bool = True,
        max_retired_results: "int | None" = DEFAULT_RETIRED_RESULT_CAP,
        async_ingest: bool = False,
        ingest_high_watermark: int = DEFAULT_INGEST_HIGH_WATERMARK,
        ingest_low_watermark: "int | None" = None,
        fault_plan=None,
        worker_recovery: bool = False,
        control_timeout: "float | None" = DEFAULT_CONTROL_TIMEOUT,
        auto_checkpoint: "CheckpointStore | None" = None,
        checkpoint_meta=None,
        on_checkpoint=None,
    ):
        if num_keys < 1:
            raise ExecutionError(f"num_keys must be >= 1, got {num_keys}")
        if num_shards == "auto":
            # One shard per CPU, never more than one per slot — the
            # elastic APIs (rebalance / split / merge) then adapt the
            # layout to the observed load.
            num_shards = max(1, min(os.cpu_count() or 1, num_slots))
        elif isinstance(num_shards, str):
            raise ExecutionError(
                f"num_shards must be an int or 'auto', got {num_shards!r}"
            )
        if num_shards < 1:
            raise ExecutionError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_keys = num_keys
        self.num_shards = num_shards
        self.partitioner = KeyPartitioner(
            num_keys, num_shards, num_slots=num_slots
        )
        self.num_slots = self.partitioner.num_slots
        # Decayed per-slot load counters (events and bytes) — the
        # signal the rebalance policy reads (DESIGN.md §12).
        self._slot_events = np.zeros(self.num_slots, dtype=np.float64)
        self._slot_bytes = np.zeros(self.num_slots, dtype=np.float64)
        # Only shards that own keys get a core: a key-less core would
        # still close (dummy-key) instances forever — wasted work that
        # would also inflate the logical pair counters sharding must
        # leave untouched.
        self.active_shards = [
            shard
            for shard in range(num_shards)
            if self.partitioner.owned[shard].size
        ]
        self._slot_of_shard = np.full(num_shards, -1, dtype=np.int64)
        for slot, shard in enumerate(self.active_shards):
            self._slot_of_shard[shard] = slot
        self.backend = _resolve_backend(backend)
        _configure_durability(
            self.backend, fault_plan, worker_recovery, control_timeout
        )
        self.backend.start(
            [
                ShardConfig(
                    shard=shard,
                    num_keys=self.partitioner.local_num_keys(shard),
                    chunk_ticks=chunk_ticks,
                    event_rate=event_rate,
                    enable_factor_windows=enable_factor_windows,
                    max_retired_results=max_retired_results,
                )
                for shard in self.active_shards
            ]
        )
        self.controller = (
            None
            if hysteresis is None
            else RateController(
                hysteresis=hysteresis, alpha=alpha, initial_rate=event_rate
            )
        )
        self._reorder = ReorderBuffer(max_lateness)
        self._fixed_chunk = chunk_ticks
        self._chunk_ticks = chunk_ticks or 1
        self._chunk_end = self._chunk_ticks
        self._enable_factor_windows = enable_factor_windows
        self._max_retired_results = max_retired_results
        self._event_rate = event_rate
        self._rate_observer = EpochRateObserver(self.controller)
        self._watermark = 0
        self._max_event_ts = -1
        self._pending_events = 0
        active = len(self.active_shards)
        self._scalar_buf = [([], [], []) for _ in range(active)]
        self._array_buf: "list[list[tuple]]" = [[] for _ in range(active)]
        self._queries: "dict[str, tuple[Query, str]]" = {}
        self._modes: dict[str, str] = {}
        self._forward: "SessionCore | None" = None
        self._forward_names: set[str] = set()
        self._fwd_scalar: "tuple[list, list]" = ([], [])
        self._fwd_arrays: "list[tuple]" = []
        self._auto_names = 0
        self._generation = 0
        self._closed = False
        self._released = False
        self.wall_seconds = 0.0
        self._auto_store = require_cadence(auto_checkpoint)
        self._checkpoint_meta = checkpoint_meta
        self._on_checkpoint = on_checkpoint
        self._pump = (
            IngestPump(
                push=self._push_now,
                push_batch=self._push_batch_now,
                high_watermark=ingest_high_watermark,
                low_watermark=ingest_low_watermark,
            )
            if async_ingest
            else None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """The coordinator clock — every shard is at or behind this,
        and at it after every flush (see :meth:`shard_watermarks`)."""
        return self._watermark

    @property
    def queries(self) -> tuple[str, ...]:
        return tuple(self._queries)

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def reorder_stats(self):
        return self._reorder.stats

    @property
    def worker_recoveries(self) -> int:
        """How many shard workers have been respawned after a crash
        (always 0 on backends without recovery support)."""
        return getattr(self.backend, "recoveries", 0)

    @property
    def switches(self) -> "list[PlanSwitchRecord]":
        """Shard 0's switch log (every shard applies the identical
        schedule; see :meth:`shard_switches` for all of them).  In
        async mode a synchronization point, like every method that
        talks to the backend."""
        return self._via_pump(self._switches_now)

    def _switches_now(self) -> "list[PlanSwitchRecord]":
        self._require_backend()
        logs = self.backend.switches()
        merged = list(logs[0]) if logs else []
        if self._forward is not None:
            merged.extend(self._forward.switches)
        return merged

    def shard_switches(self) -> "list[list[PlanSwitchRecord]]":
        return self._via_pump(self._shard_switches_now)

    def _shard_switches_now(self) -> "list[list[PlanSwitchRecord]]":
        self._require_backend()
        return self.backend.switches()

    def shard_watermarks(self) -> "list[int]":
        """Per-shard core watermarks (the min is the aligned session
        watermark; after any flush all entries are equal)."""
        return self._via_pump(self._shard_watermarks_now)

    def _shard_watermarks_now(self) -> "list[int]":
        self._require_backend()
        marks = list(self.backend.watermarks())
        if self._forward is not None:
            marks.append(self._forward.watermark)
        return marks

    def stats(self) -> ExecutionStats:
        """Merged execution counters across every shard (plus the
        forwarding core).  ``wall_seconds`` is the *coordinator's* wall
        time — the serialized cost of routing, feeding, and merging —
        not the sum of shard-local compute, which overlaps under the
        worker backends (process and shm)."""
        return self._via_pump(self._stats_now)

    def _stats_now(self) -> ExecutionStats:
        self._require_backend()
        merged = ExecutionStats()
        for stats in self.backend.stats():
            merged.merge(stats)
        if self._forward is not None:
            merged.merge(self._forward.stats())
        merged.wall_seconds = self.wall_seconds
        if self.partitioner.slot_map is not None:
            merged.shard_loads = self._shard_loads_now()
        return merged

    def max_retained_state(self) -> int:
        return self._via_pump(self._max_retained_state_now)

    def _max_retained_state_now(self) -> int:
        self._require_backend()
        retained = self.backend.max_retained_state()
        if self._forward is not None:
            retained = max(retained, self._forward.max_retained_state())
        return retained

    # ------------------------------------------------------------------
    # Workload mutations
    # ------------------------------------------------------------------
    def _next_auto_name(self) -> str:
        self._auto_names += 1
        return f"q{self._auto_names}"

    def _safe_watermark(self) -> int:
        return max(self._watermark, self._reorder.watermark, 0)

    @staticmethod
    def _merge_mode(query: Query, scope: str) -> str:
        if scope == "per_key":
            return "concat"
        if scope == "global":
            return "partial" if query.aggregate.mergeable else "forward"
        raise ExecutionError(
            f"unknown scope {scope!r}; expected 'per_key' or 'global'"
        )

    def register(
        self, query: "str | Query", name: str = "", scope: str = "per_key"
    ) -> str:
        """Register one query on every shard at the same safe
        watermark; returns its name.

        ``scope="global"`` merges across all keys at the coordinator:
        vectorized partial ``combine`` for distributive/algebraic
        aggregates, raw forwarding for holistic ones."""
        return self._via_pump(self._register_now, query, name, scope)

    def _register_now(
        self, query: "str | Query", name: str, scope: str
    ) -> str:
        self._require_open()
        query = resolve_registration_query(query, name, self._next_auto_name)
        if query.name in self._queries:
            raise ExecutionError(
                f"query name {query.name!r} is already registered"
            )
        mode = self._merge_mode(query, scope)
        previous = self._modes.get(query.name)
        if previous is not None and (previous == "forward") != (
            mode == "forward"
        ):
            raise ExecutionError(
                f"name {query.name!r} was previously registered with an "
                "incompatible scope; its archive lives on a different "
                "core set — pick a fresh name"
            )
        at = self._safe_watermark()
        self._sync(at)
        if mode == "forward":
            core = self._ensure_forward_core(at)
            core.register(query, at=at, scope="per_key")
            self._forward_names.add(query.name)
        else:
            self.backend.register(
                query, at, "per_key" if mode == "concat" else "global"
            )
        self._queries[query.name] = (query, mode)
        self._note_mode(query.name, mode)
        self._generation += 1
        self._refresh_chunk_ticks()
        return query.name

    def _note_mode(self, name: str, mode: str) -> None:
        """Remember which core set a name's results live on — bounded.

        The map only exists to protect *archived* results from a
        cross-core-set name collision, and the archives themselves are
        capped (``max_retired_results`` per core), so this memory is
        capped to the same budget: oldest non-live names age out along
        with the archives they guarded."""
        self._modes.pop(name, None)
        self._modes[name] = mode
        cap = self._max_retired_results
        if cap is None:
            return
        while len(self._modes) > cap:
            stale = next(
                (n for n in self._modes if n not in self._queries), None
            )
            if stale is None:
                break
            self._modes.pop(stale)

    def deregister(self, name: str) -> None:
        """Remove one query from every shard at the same safe
        watermark.  Its emitted results stay readable (within the
        retention cap)."""
        self._via_pump(self._deregister_now, name)

    def _deregister_now(self, name: str) -> None:
        self._require_open()
        entry = self._queries.pop(name, None)
        if entry is None:
            raise ExecutionError(f"no registered query named {name!r}")
        _, mode = entry
        at = self._safe_watermark()
        self._sync(at)
        if mode == "forward":
            self._forward.deregister(name, at=at)
            self._forward_names.discard(name)
        else:
            self.backend.deregister(name, at)
        self._generation += 1
        self._refresh_chunk_ticks()

    def _ensure_forward_core(self, at: int) -> SessionCore:
        if self._forward is None:
            self._forward = SessionCore(
                num_keys=1,
                chunk_ticks=self._fixed_chunk,
                event_rate=self._event_rate,
                enable_factor_windows=self._enable_factor_windows,
                max_retired_results=self._max_retired_results,
            )
            if at > 0:
                self._forward.advance_to(at)
        return self._forward

    def _refresh_chunk_ticks(self) -> None:
        if self._fixed_chunk is not None:
            return
        ranges = [
            w.range
            for query, _ in self._queries.values()
            for w in query.windows
        ]
        self._chunk_ticks = max(ranges, default=1)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, ts: int, key: int, value: float) -> None:
        """Ingest one (possibly out-of-order) event.

        In async mode this enqueues and returns immediately, blocking
        only under backpressure (see :mod:`repro.runtime.ingest`)."""
        if not self._route_event(ts, key, value):
            self._push_now(ts, key, value)

    def _push_now(self, ts: int, key: int, value: float) -> None:
        self._require_open()
        if not 0 <= key < self.num_keys:
            raise ExecutionError(
                f"key {key} outside dense id space [0, {self.num_keys})"
            )
        for event in self._reorder.push(ts, int(key), float(value)):
            self._route(event)
        # Deferred exactly like QuerySession: the release iterator must
        # fully drain before a switch advances the watermark.
        if self._rate_observer.pending_rate is not None:
            self._apply_rate(self._rate_observer.take_pending())
        self._maybe_auto_checkpoint()

    def _maybe_auto_checkpoint(self) -> None:
        """Cadence-driven checkpointing inside the ingest path (same
        contract as :meth:`QuerySession._maybe_auto_checkpoint`): runs
        on the thread applying pushes, so each saved cut is
        prefix-consistent with the command stream."""
        store = self._auto_store
        if store is None or not store.due(self._watermark):
            return
        meta = (
            {} if self._checkpoint_meta is None else self._checkpoint_meta()
        )
        snap = self._snapshot_now(meta)
        path = store.save(snap)
        if self._on_checkpoint is not None:
            self._on_checkpoint(snap, path)

    def push_many(self, events) -> None:
        """Ingest an iterable of ``(ts, key, value)`` events.

        Sync mode routes the whole iterable through the vectorized
        reorder front door (:meth:`ReorderBuffer.push_batch`): one
        columnar heap pass and per-chunk array routing instead of
        per-event Python dispatch, with identical results, identical
        late-drop decisions, and identical reorder counters.  Async
        mode enqueues per event, as before."""
        if self._pump is not None and self._pump.accepting:
            for ts, key, value in events:
                self.push(ts, key, value)
            return
        self._push_many_now(events)

    def _push_many_now(self, events) -> None:
        self._require_open()
        rows = events if isinstance(events, np.ndarray) else list(events)
        if len(rows) == 0:
            return
        arr = np.asarray(rows, dtype=np.float64)
        ts = arr[:, 0].astype(np.int64)
        keys = arr[:, 1].astype(np.int64)
        values = np.ascontiguousarray(arr[:, 2])
        if int(keys.min()) < 0 or int(keys.max()) >= self.num_keys:
            raise ExecutionError(
                f"key outside dense id space [0, {self.num_keys})"
            )
        released = self._reorder.push_batch(ts, keys, values)
        self._route_arrays(*released)
        if self._rate_observer.pending_rate is not None:
            self._apply_rate(self._rate_observer.take_pending())
        self._maybe_auto_checkpoint()

    def _route_arrays(self, ts, keys, values) -> None:
        """Buffer a *released* (timestamp-sorted) columnar run,
        flushing at every chunk boundary — the vectorized twin of
        looping :meth:`_route`."""
        n = int(ts.size)
        pos = 0
        while pos < n:
            cut = int(np.searchsorted(ts, self._chunk_end, side="left"))
            if cut >= n:
                self._buffer_arrays(ts[pos:], keys[pos:], values[pos:])
                break
            cut += 1
            self._buffer_arrays(ts[pos:cut], keys[pos:cut], values[pos:cut])
            pos = cut
            last = int(ts[cut - 1])
            while last >= self._chunk_end:
                self._flush(self._chunk_end)

    def push_batch(self, batch: EventBatch) -> None:
        """Vectorized sorted fast path: partition a whole columnar
        batch per chunk and ship slices — no per-event Python dispatch.

        Requires an in-order session (``max_lateness == 0``) with
        nothing buffered in the front door, and a batch starting at or
        after the newest seen timestamp; results are identical to
        pushing the same events one at a time.

        In async mode the batch enqueues without waiting for flushes;
        batches larger than the backpressure high watermark are split
        into watermark-sized slices (column views, no copies) so the
        queue's event bound stays meaningful — the backlog never
        exceeds twice the high watermark.
        """
        if self._pump is not None and self._pump.accepting:
            high = self._pump.queue.high_watermark
            n = batch.num_events
            if n <= high:
                self._pump.submit_batch(batch)
                return
            for lo in range(0, n, high):
                hi = min(lo + high, n)
                self._pump.submit_batch(
                    EventBatch(
                        timestamps=batch.timestamps[lo:hi],
                        keys=batch.keys[lo:hi],
                        values=batch.values[lo:hi],
                        horizon=batch.horizon,
                        num_keys=batch.num_keys,
                    )
                )
            return
        self._push_batch_now(batch)

    def _push_batch_now(self, batch: EventBatch) -> None:
        self._require_open()
        if batch.num_keys != self.num_keys:
            raise ExecutionError(
                f"batch has {batch.num_keys} keys, session has "
                f"{self.num_keys}"
            )
        ts = batch.timestamps
        n = int(ts.size)
        if n == 0:
            return
        # The front door validates the bypass (in-order session, batch
        # at or after the newest seen timestamp — *not* merely the
        # chunk-clock watermark, which can trail buffered events) and
        # keeps its exact counters coherent with push().
        self._reorder.accept_sorted(n, int(ts[0]), int(ts[-1]))
        pos = 0
        while pos < n:
            cut = int(np.searchsorted(ts, self._chunk_end, side="left"))
            if cut >= n:
                self._buffer_slice(batch, pos, n)
                break
            # The chunk-crossing event rides along, exactly as in the
            # per-event path (it is buffered before its flush fires).
            cut += 1
            self._buffer_slice(batch, pos, cut)
            pos = cut
            last = int(ts[cut - 1])
            while last >= self._chunk_end:
                self._flush(self._chunk_end)
        if self._rate_observer.pending_rate is not None:
            self._apply_rate(self._rate_observer.take_pending())
        self._maybe_auto_checkpoint()

    def _buffer_slice(self, batch: EventBatch, lo: int, hi: int) -> None:
        self._buffer_arrays(
            batch.timestamps[lo:hi], batch.keys[lo:hi], batch.values[lo:hi]
        )

    def _buffer_arrays(self, ts, keys, values) -> None:
        slices = self.partitioner.split_arrays(ts, keys, values)
        for slot, shard in enumerate(self.active_shards):
            sts, skeys, svalues, _ = slices[shard]
            if sts.size:
                self._array_buf[slot].append((sts, skeys, svalues))
        if self._forward_names:
            self._fwd_arrays.append((ts, values))
        if self.partitioner.slot_of_key is not None:
            counts = np.bincount(
                self.partitioner.slot_of_key[keys],
                minlength=self.num_slots,
            )
            self._slot_events += counts
            self._slot_bytes += counts * float(EVENT_BYTES)
        self._pending_events += int(ts.size)
        last = int(ts[-1])
        if last > self._max_event_ts:
            self._max_event_ts = last

    def _route(self, event) -> None:
        ts, key, value = event
        slot = int(self._slot_of_shard[self.partitioner.shard_of[key]])
        buf_ts, buf_keys, buf_values = self._scalar_buf[slot]
        buf_ts.append(ts)
        buf_keys.append(int(self.partitioner.local_id[key]))
        buf_values.append(value)
        if self._forward_names:
            self._fwd_scalar[0].append(ts)
            self._fwd_scalar[1].append(value)
        if self.partitioner.slot_of_key is not None:
            vslot = int(self.partitioner.slot_of_key[key])
            self._slot_events[vslot] += 1.0
            self._slot_bytes[vslot] += float(EVENT_BYTES)
        self._pending_events += 1
        if ts > self._max_event_ts:
            self._max_event_ts = ts
        while ts >= self._chunk_end:
            self._flush(self._chunk_end)

    def _feed_buffers(self) -> None:
        # Ship per-shard chunk *runs*, never concatenating here: the
        # shard core re-contiguates once per flush (into its reused
        # arena), so a coordinator-side concatenate would be a second
        # copy of every event.  Chunk order is preserved end-to-end,
        # which keeps the flushed block bit-identical to the old
        # concatenate-then-ship plane.
        slices = []
        for slot in range(len(self.active_shards)):
            chunks = self._array_buf[slot]
            buf_ts, buf_keys, buf_values = self._scalar_buf[slot]
            if buf_ts:
                chunks.append(
                    (
                        np.asarray(buf_ts, dtype=np.int64),
                        np.asarray(buf_keys, dtype=np.int64),
                        np.asarray(buf_values, dtype=np.float64),
                    )
                )
                self._scalar_buf[slot] = ([], [], [])
            slices.append(chunks)
            self._array_buf[slot] = []
        self.backend.feed(slices)
        if self._forward is not None:
            if self._fwd_scalar[0]:
                self._fwd_arrays.append(
                    (
                        np.asarray(self._fwd_scalar[0], dtype=np.int64),
                        np.asarray(self._fwd_scalar[1], dtype=np.float64),
                    )
                )
                self._fwd_scalar = ([], [])
            for ts, values in self._fwd_arrays:
                self._forward.buffer_arrays(
                    ts, np.zeros(ts.size, dtype=np.int64), values
                )
            self._fwd_arrays = []

    def _flush(self, to_watermark: int) -> None:
        started = time.perf_counter()
        count = self._pending_events
        self._pending_events = 0
        self._feed_buffers()
        self.backend.advance(to_watermark)
        if self._forward is not None:
            self._forward.advance_to(to_watermark)
        self._watermark = to_watermark
        self._chunk_end = to_watermark + self._chunk_ticks
        self.wall_seconds += time.perf_counter() - started
        self._rate_observer.observe_flush(
            to_watermark, count, self._chunk_ticks, bool(self._queries)
        )
        self._slot_events *= LOAD_DECAY
        self._slot_bytes *= LOAD_DECAY

    def _sync(self, target: int) -> None:
        """Advance every core to the same safe watermark (the
        broadcast-mutation entry point) — absorbs at most the buffered
        partial chunk, never history."""
        target = max(self._watermark, target)
        if self._pending_events or target > self._watermark:
            self._flush(target)

    def _apply_rate(self, rate: int) -> None:
        at = self._safe_watermark()
        self._sync(at)
        self.backend.set_rate(rate, at)
        if self._forward is not None:
            self._forward.set_event_rate(rate, at=at)
        self._event_rate = rate
        self._generation += 1

    # ------------------------------------------------------------------
    # Elastic sharding (DESIGN.md §12): slot migration, split, merge
    # ------------------------------------------------------------------
    @property
    def slot_map(self) -> np.ndarray:
        """The live slot → shard map (a copy)."""
        self._require_slots()
        return self.partitioner.slot_map.copy()

    def slot_loads(self) -> "tuple[np.ndarray, np.ndarray]":
        """Decayed per-slot ``(events, bytes)`` load counters."""
        return self._via_pump(
            lambda: (self._slot_events.copy(), self._slot_bytes.copy())
        )

    def shard_loads(self) -> "dict[int, dict[str, float]]":
        """Decayed per-shard load totals, folded over the slot map:
        ``{shard: {"events", "bytes", "slots", "keys"}}`` — the skew
        signal :meth:`rebalance` acts on."""
        return self._via_pump(self._shard_loads_now)

    def _shard_loads_now(self) -> "dict[int, dict[str, float]]":
        self._require_slots()
        slot_map = self.partitioner.slot_map
        events = np.bincount(
            slot_map, weights=self._slot_events, minlength=self.num_shards
        )
        volume = np.bincount(
            slot_map, weights=self._slot_bytes, minlength=self.num_shards
        )
        slots = np.bincount(slot_map, minlength=self.num_shards)
        return {
            shard: {
                "events": float(events[shard]),
                "bytes": float(volume[shard]),
                "slots": int(slots[shard]),
                "keys": int(self.partitioner.owned[shard].size),
            }
            for shard in range(self.num_shards)
        }

    def move_slots(self, slots, dest: int) -> None:
        """Migrate virtual slots to shard ``dest`` at a safe watermark.

        ``dest`` may be ``num_shards`` to grow the shard count by one
        (an explicit split).  The transplant runs as a stream barrier:
        every shard drains to the same watermark, the moving slots'
        per-key state ships core-to-core, and the slot map flips
        atomically — results stay bit-identical to a run that never
        moved anything (extended invariant 10)."""
        self._via_pump(self._move_slots_now, slots, dest)

    def _move_slots_now(self, slots, dest: int) -> None:
        self._require_open()
        slot_map = self._require_slots().copy()
        slots = np.atleast_1d(np.asarray(slots, dtype=np.int64))
        if slots.size == 0:
            return
        if int(slots.min()) < 0 or int(slots.max()) >= self.num_slots:
            raise ExecutionError(
                f"slot ids must lie in [0, {self.num_slots})"
            )
        if not 0 <= dest <= self.num_shards:
            raise ExecutionError(
                f"destination shard {dest} outside [0, {self.num_shards}] "
                "(num_shards grows by at most one per move)"
            )
        slot_map[slots] = dest
        self._apply_slot_map(slot_map, max(self.num_shards, dest + 1))

    def rebalance(self, max_moves: "int | None" = None) -> int:
        """Greedy hot-slot migration: repeatedly move the hottest
        movable slot of the most loaded shard to the least loaded one,
        while that strictly shrinks the hot/cold load gap.  Returns the
        number of slots moved (0 when already balanced — including the
        single-hot-key case, where no slot move can help)."""
        return self._via_pump(self._rebalance_now, max_moves)

    def _rebalance_now(self, max_moves: "int | None") -> int:
        self._require_open()
        self._require_slots()
        if self.num_shards < 2:
            return 0
        load = self._slot_events
        new_map = self.partitioner.slot_map.copy()
        limit = 8 if max_moves is None else int(max_moves)
        moved = 0
        while moved < limit:
            shard_load = np.bincount(
                new_map, weights=load, minlength=self.num_shards
            )
            hot = int(np.argmax(shard_load))
            cold = int(np.argmin(shard_load))
            gap = float(shard_load[hot] - shard_load[cold])
            if gap <= 0.0:
                break
            candidates = np.flatnonzero(new_map == hot)
            # Largest slot whose move strictly improves the gap: after
            # moving s, the new gap is |gap - 2*load[s]| < gap iff
            # 0 < load[s] < gap.
            candidates = candidates[
                (load[candidates] > 0.0) & (load[candidates] < gap)
            ]
            if candidates.size == 0:
                break
            order = np.argsort(-load[candidates], kind="stable")
            new_map[int(candidates[order[0]])] = cold
            moved += 1
        if moved:
            self._apply_slot_map(new_map, self.num_shards)
        return moved

    def split_shard(self, source: "int | None" = None) -> int:
        """Grow the shard count by one: spawn a sibling worker and move
        half of ``source``'s slots (alternating by load, so the split
        halves the observed traffic) onto it.  ``source`` defaults to
        the most loaded shard.  Returns the new shard id."""
        return self._via_pump(self._split_shard_now, source)

    def _split_shard_now(self, source: "int | None") -> int:
        self._require_open()
        slot_map = self._require_slots().copy()
        load = self._slot_events
        if source is None:
            shard_load = np.bincount(
                slot_map, weights=load, minlength=self.num_shards
            )
            counts = np.bincount(slot_map, minlength=self.num_shards)
            source = max(
                range(self.num_shards),
                key=lambda s: (shard_load[s], counts[s], -s),
            )
        if not 0 <= source < self.num_shards:
            raise ExecutionError(
                f"source shard {source} outside [0, {self.num_shards})"
            )
        slots = np.flatnonzero(slot_map == source)
        if slots.size < 2:
            raise ExecutionError(
                f"shard {source} owns {slots.size} slot(s) — nothing "
                "to split"
            )
        new_shard = self.num_shards
        order = slots[np.argsort(-load[slots], kind="stable")]
        slot_map[order[1::2]] = new_shard
        self._apply_slot_map(slot_map, new_shard + 1)
        return new_shard

    def merge_shard(self, shard: int, into: "int | None" = None) -> int:
        """Shrink the live worker count: move every slot of ``shard``
        onto ``into`` (default: the least loaded other shard) and
        retire ``shard``'s core, folding its cross-key residue into a
        survivor.  Merging the highest shard id also shrinks
        ``num_shards``; merging a middle id leaves that id inactive
        (ids are never renumbered — key hashes must stay stable).
        Returns the absorbing shard id."""
        return self._via_pump(self._merge_shard_now, shard, into)

    def _merge_shard_now(self, shard: int, into: "int | None") -> int:
        self._require_open()
        slot_map = self._require_slots().copy()
        if self.num_shards < 2:
            raise ExecutionError("cannot merge the only shard")
        if not 0 <= shard < self.num_shards:
            raise ExecutionError(
                f"shard {shard} outside [0, {self.num_shards})"
            )
        if into is None:
            shard_load = np.bincount(
                slot_map, weights=self._slot_events,
                minlength=self.num_shards,
            )
            into = min(
                (s for s in range(self.num_shards) if s != shard),
                key=lambda s: (shard_load[s], s),
            )
        if not 0 <= into < self.num_shards or into == shard:
            raise ExecutionError(
                f"cannot merge shard {shard} into {into}"
            )
        slot_map[slot_map == shard] = into
        num_shards = self.num_shards
        while num_shards > 1 and not np.any(slot_map == num_shards - 1):
            num_shards -= 1
        self._apply_slot_map(slot_map, num_shards)
        return into

    def _require_slots(self) -> np.ndarray:
        if self.partitioner.slot_map is None:
            raise ExecutionError(
                "this session was built with an explicit key assignment "
                "— it has no slot layer to migrate"
            )
        return self.partitioner.slot_map

    def _shard_config(self, shard: int, num_keys: int) -> ShardConfig:
        return ShardConfig(
            shard=shard,
            num_keys=max(1, num_keys),
            chunk_ticks=self._fixed_chunk,
            event_rate=self._event_rate,
            enable_factor_windows=self._enable_factor_windows,
            max_retired_results=self._max_retired_results,
        )

    def _apply_slot_map(self, slot_map, num_shards: int) -> None:
        """Atomically migrate to a new slot → shard map at a barrier.

        The migration plan is a pure function of the (old, new)
        partitioner pair, built from the five backend migration ops:
        per-(source, destination) key extracts, sibling spawns for
        newly active shards, ordered absorbs, and descending-slot
        retires with remnant folds.  On worker backends with recovery
        armed, the plan runs inside a migration epoch: a crash rolls
        every worker back to the pre-plan snapshot and the whole plan
        is redone, so a migration is all-or-nothing (invariant 12
        meets invariant 10)."""
        old = self.partitioner
        self._require_slots()
        slot_map = np.asarray(slot_map, dtype=np.int64)
        new = old.with_slot_map(slot_map, num_shards)
        old_active = list(self.active_shards)
        new_active = {
            shard for shard in range(num_shards) if new.owned[shard].size
        }
        survivors = [s for s in old_active if s in new_active]
        spawned = sorted(s for s in new_active if s not in old_active)
        retiring = [s for s in old_active if s not in new_active]
        if np.array_equal(new.shard_of, old.shard_of) and not spawned:
            # Pure relabel of keyless slots: no state moves, no
            # barrier — and the ingest buffers (indexed by unchanged
            # backend slots) stay untouched.
            self.partitioner = new
            self.num_shards = num_shards
            self._slot_of_shard = np.full(num_shards, -1, dtype=np.int64)
            for slot, shard in enumerate(self.active_shards):
                self._slot_of_shard[shard] = slot
            return
        at = self._safe_watermark()
        self._sync(at)

        def plan() -> None:
            backend = self.backend
            slot_of = {shard: i for i, shard in enumerate(old_active)}
            owned_now = {shard: old.owned[shard] for shard in old_active}
            moves: "list[tuple[int, object, np.ndarray]]" = []
            for src in old_active:
                mine = owned_now[src]
                outgoing = mine[new.shard_of[mine] != src]
                if not outgoing.size:
                    continue
                for dst in np.unique(new.shard_of[outgoing]):
                    dst = int(dst)
                    keys = outgoing[new.shard_of[outgoing] == dst]
                    local = np.searchsorted(owned_now[src], keys)
                    bundle = backend.migrate_extract(slot_of[src], local)
                    owned_now[src] = np.setdiff1d(
                        owned_now[src], keys, assume_unique=True
                    )
                    moves.append((dst, bundle, keys))
            # Spawn before any retire, so backend slot 0 (the donor)
            # is always a live original.
            next_slot = len(old_active)
            for dst in spawned:
                backend.spawn_sibling(
                    0, self._shard_config(dst, int(new.owned[dst].size))
                )
                slot_of[dst] = next_slot
                next_slot += 1
                owned_now[dst] = np.empty(0, dtype=np.int64)
            for dst, bundle, keys in moves:
                combined = np.union1d(owned_now[dst], keys)
                positions = np.searchsorted(combined, keys)
                backend.migrate_absorb(slot_of[dst], bundle, positions)
                owned_now[dst] = combined
            # Retire emptied shards in descending backend-slot order
            # (removals never shift a slot still to be visited), then
            # fold their cross-key remnants into the first slot of the
            # final layout.
            remnants = [
                backend.retire_shard(slot_of[src])
                for src in sorted(retiring, key=lambda s: -slot_of[s])
            ]
            for remnant in remnants:
                backend.absorb_remnant(0, remnant)

        self._run_migration(plan)
        self.partitioner = new
        self.num_shards = num_shards
        self.active_shards = survivors + spawned
        self._rebuild_shard_tables()

    def _rebuild_shard_tables(self) -> None:
        self._slot_of_shard = np.full(self.num_shards, -1, dtype=np.int64)
        for slot, shard in enumerate(self.active_shards):
            self._slot_of_shard[shard] = slot
        active = len(self.active_shards)
        self._scalar_buf = [([], [], []) for _ in range(active)]
        self._array_buf = [[] for _ in range(active)]

    def _run_migration(self, plan) -> None:
        backend = self.backend
        if getattr(backend, "recovery_armed", False):
            backend.migration_epoch_begin()
            try:
                plan()
                # epoch_end's snapshot is inside the protected region:
                # a worker that acked its migration op but died before
                # this snapshot lands must roll the epoch back too —
                # per-slot replay would resurrect its pre-plan state.
                backend.migration_epoch_end()
            except _MigrationDisrupted:
                # Roll every worker back to the pre-plan snapshot and
                # redo the plan from scratch.  A second disruption
                # escapes as an ordinary ExecutionError.
                backend.migration_rollback()
                plan()
                backend.migration_epoch_end()
        else:
            plan()

    # ------------------------------------------------------------------
    # Durability (DESIGN.md §9, invariant 12)
    # ------------------------------------------------------------------
    def snapshot(
        self, path: "str | None" = None, meta: "dict | None" = None
    ) -> Snapshot:
        """Capture the whole sharded session at one consistent
        watermark.

        The coordinator first ships its buffered partial chunk down to
        the shard cores *without advancing the watermark* (so taking a
        snapshot never perturbs the stream's flush positions — results
        are bit-identical whether or not, and however often, the
        session checkpoints), then broadcasts a ``snapshot`` control
        op.  The op rides the same FIFO as the data plane — pipe
        ordering on the process backend, drain-ring-before-control on
        shm — so each worker serializes its core at exactly the
        coordinator's stream position: the N shard cores (including
        the just-fed in-chunk events), the coordinator-local
        forwarding core, the reorder buffer, the rate controller, and
        the async ingest residue form one mutually consistent cut,
        with no lockstep pause.

        Pass ``path`` to also persist the snapshot via
        :func:`~repro.runtime.checkpoint.write_checkpoint`.
        """
        snap = self._via_pump(self._snapshot_now, meta)
        if path is not None:
            write_checkpoint(snap, path)
        return snap

    def _snapshot_now(self, meta: "dict | None") -> Snapshot:
        self._require_backend()
        if not self._closed:
            # Ship the buffered partial chunk down to the shard cores
            # WITHOUT advancing the watermark: the cores then hold the
            # full event prefix at the coordinator's clock, so the cut
            # is consistent while the stream's flush positions — and
            # therefore its results — stay bit-identical to a run that
            # never snapshotted (results must not depend on checkpoint
            # cadence; invariant 10 meets invariant 12).
            self._feed_buffers()
        residue = [] if self._pump is None else self._pump.pending_data()
        shard_states = self.backend.snapshot()
        coordinator = {
            "reorder": self._reorder,
            "controller": self.controller,
            "observer": self._rate_observer,
            "queries": self._queries,
            "modes": self._modes,
            "forward": self._forward,
            "forward_names": self._forward_names,
            "auto_names": self._auto_names,
            "generation": self._generation,
            "watermark": self._watermark,
            "chunk_end": self._chunk_end,
            "chunk_ticks": self._chunk_ticks,
            "max_event_ts": self._max_event_ts,
            "event_rate": self._event_rate,
            "num_keys": self.num_keys,
            "num_shards": self.num_shards,
            # The elastic layout (DESIGN.md §12): the slot map and the
            # backend slot order are mutated by migrations, so a
            # restore must replay them, not recompute defaults.
            "slot_map": (
                None
                if self.partitioner.slot_map is None
                else self.partitioner.slot_map.copy()
            ),
            "active_shards": list(self.active_shards),
            "slot_events": self._slot_events.copy(),
            "slot_bytes": self._slot_bytes.copy(),
            "fixed_chunk": self._fixed_chunk,
            "enable_factor_windows": self._enable_factor_windows,
            "max_retired_results": self._max_retired_results,
            "closed": self._closed,
            "wall_seconds": self.wall_seconds,
            # The partial-chunk event count lives in the shard cores
            # after the pre-snapshot feed; the rate observer still owes
            # it to the next observe_flush, so a restored session must
            # report the same flush count the uninterrupted one would.
            "pending_events": self._pending_events,
        }
        graph = {
            "coordinator": coordinator,
            "shards": shard_states,
            "residue": residue,
        }
        # One dumps over the coordinator graph: shared references (the
        # controller inside the observer) survive, and the snapshot is
        # isolated from further mutation of the live session.  Shard
        # cores were already serialized inside their workers.
        return Snapshot(
            kind="sharded",
            watermark=self._watermark,
            generation=self._generation,
            queries=tuple(self._queries),
            payload={
                "state": pickle.dumps(
                    graph, protocol=pickle.HIGHEST_PROTOCOL
                )
            },
            meta=dict(meta or {}),
        )

    @classmethod
    def restore(
        cls,
        source: "Snapshot | str",
        backend: "str | object" = "serial",
        async_ingest: bool = False,
        ingest_high_watermark: int = DEFAULT_INGEST_HIGH_WATERMARK,
        ingest_low_watermark: "int | None" = None,
        fault_plan=None,
        worker_recovery: bool = False,
        control_timeout: "float | None" = DEFAULT_CONTROL_TIMEOUT,
        auto_checkpoint: "CheckpointStore | None" = None,
        checkpoint_meta=None,
        on_checkpoint=None,
    ) -> "ShardedSession":
        """Rebuild a sharded session from a :class:`Snapshot` or a
        checkpoint file and resume exactly where it left off.

        The execution backend and ingest mode are overrides, not part
        of the snapshot — invariants 10 and 11 make both
        observationally invisible, so a session snapshotted on the shm
        backend may restore on serial (handy for post-mortem
        inspection) and vice versa.  The shard *layout* — slot map and
        backend slot order, however many migrations produced it — is
        restored bit-identically from the snapshot; use the elastic
        APIs (:meth:`rebalance` / :meth:`split_shard` /
        :meth:`merge_shard`) to reshape it afterwards.  Captured
        ingest-queue residue is
        replayed through the restored front door first, so the
        restored timeline has applied exactly the events the original
        had accepted.
        """
        snap = (
            source
            if isinstance(source, Snapshot)
            else read_checkpoint(source)
        )
        if snap.kind != "sharded":
            raise ExecutionError(
                f"checkpoint kind {snap.kind!r} is not a ShardedSession "
                "snapshot (QuerySession.restore reads 'query' "
                "checkpoints)"
            )
        graph = pickle.loads(snap.payload["state"])
        coord = graph["coordinator"]
        self = cls.__new__(cls)
        self.num_keys = coord["num_keys"]
        self.num_shards = coord["num_shards"]
        # The elastic layout travels with the checkpoint: migrations
        # mutate the slot map and the backend slot order, so both are
        # replayed verbatim.  (Pre-elastic snapshots carry neither —
        # their partition was the pure default of (num_keys,
        # num_shards), so recomputing it is exact.)
        slot_map = coord.get("slot_map")
        self.partitioner = (
            KeyPartitioner(self.num_keys, self.num_shards)
            if slot_map is None
            else KeyPartitioner(
                self.num_keys, self.num_shards, slot_map=slot_map
            )
        )
        self.num_slots = self.partitioner.num_slots
        self.active_shards = list(
            coord.get("active_shards")
            or (
                shard
                for shard in range(self.num_shards)
                if self.partitioner.owned[shard].size
            )
        )
        self._slot_events = coord.get(
            "slot_events", np.zeros(self.num_slots, dtype=np.float64)
        )
        self._slot_bytes = coord.get(
            "slot_bytes", np.zeros(self.num_slots, dtype=np.float64)
        )
        self._slot_of_shard = np.full(self.num_shards, -1, dtype=np.int64)
        for slot, shard in enumerate(self.active_shards):
            self._slot_of_shard[shard] = slot
        self.backend = _resolve_backend(backend)
        _configure_durability(
            self.backend, fault_plan, worker_recovery, control_timeout
        )
        self.backend.start(
            [
                ShardConfig(
                    shard=shard,
                    num_keys=self.partitioner.local_num_keys(shard),
                    chunk_ticks=coord["fixed_chunk"],
                    event_rate=coord["event_rate"],
                    enable_factor_windows=coord["enable_factor_windows"],
                    max_retired_results=coord["max_retired_results"],
                )
                for shard in self.active_shards
            ]
        )
        self.backend.restore(graph["shards"])
        self.controller = coord["controller"]
        self._reorder = coord["reorder"]
        self._fixed_chunk = coord["fixed_chunk"]
        self._chunk_ticks = coord["chunk_ticks"]
        self._chunk_end = coord["chunk_end"]
        self._enable_factor_windows = coord["enable_factor_windows"]
        self._max_retired_results = coord["max_retired_results"]
        self._event_rate = coord["event_rate"]
        self._rate_observer = coord["observer"]
        self._watermark = coord["watermark"]
        self._max_event_ts = coord["max_event_ts"]
        self._pending_events = coord.get("pending_events", 0)
        active = len(self.active_shards)
        self._scalar_buf = [([], [], []) for _ in range(active)]
        self._array_buf = [[] for _ in range(active)]
        self._queries = coord["queries"]
        self._modes = coord["modes"]
        self._forward = coord["forward"]
        self._forward_names = coord["forward_names"]
        self._fwd_scalar = ([], [])
        self._fwd_arrays = []
        self._auto_names = coord["auto_names"]
        self._generation = coord["generation"]
        self._closed = coord["closed"]
        self._released = False
        self.wall_seconds = coord["wall_seconds"]
        self._auto_store = require_cadence(auto_checkpoint)
        self._checkpoint_meta = checkpoint_meta
        self._on_checkpoint = on_checkpoint
        self._pump = (
            IngestPump(
                push=self._push_now,
                push_batch=self._push_batch_now,
                high_watermark=ingest_high_watermark,
                low_watermark=ingest_low_watermark,
            )
            if async_ingest
            else None
        )
        for item in graph["residue"]:
            if item[0] == _EVENT:
                self.push(item[1], item[2], item[3])
            else:
                self.push_batch(item[1])
        return self

    # ------------------------------------------------------------------
    # Termination and results
    # ------------------------------------------------------------------
    def finish(self, horizon: "int | None" = None):
        """Drain the reorder buffer, close every instance ending at or
        before ``horizon`` on every shard, and return :meth:`results`.
        The session accepts no events afterwards (in async mode the
        pump thread is stopped; the backend stays up for result reads
        until :meth:`close`)."""
        results = self._via_pump(self._finish_now, horizon)
        self._stop_pump()
        return results

    def _finish_now(self, horizon: "int | None"):
        self._require_open()
        for event in self._reorder.flush():
            self._route(event)
        if horizon is None:
            horizon = max(self._watermark, self._max_event_ts + 1)
        if horizon < self._watermark:
            raise ExecutionError(
                f"horizon {horizon} is behind the watermark "
                f"{self._watermark}"
            )
        self._flush(horizon)
        self._closed = True
        return self._collect(drain=False)

    def results(self) -> "dict[str, dict[Window, WindowResults]]":
        """Coordinator-merged per-query results (live and retired):
        per-key rows scattered back to the global key space, global
        partials combined and finalized, forwarded holistics passed
        through as single rows."""
        return self._via_pump(self._collect, False)

    def drain_results(self) -> "dict[str, dict[Window, WindowResults]]":
        """Consuming read: every shard drains its subscriptions and the
        coordinator merges the released blocks — the bounded-memory
        service read path."""
        return self._via_pump(self._collect, True)

    def _collect(self, drain: bool):
        self._require_backend()
        started = time.perf_counter()
        reports = self.backend.collect(drain)
        out: dict[str, dict[Window, WindowResults]] = {}
        names: set[str] = set()
        for report in reports:
            names.update(report.results)
        for name in sorted(names):
            windows: set[Window] = set()
            for report in reports:
                windows.update(report.results.get(name, {}))
            for window in windows:
                parts = [
                    report.results[name][window] for report in reports
                ]
                out.setdefault(name, {})[window] = self._scatter(parts)
        partial_slots: set[tuple[str, Window]] = set()
        for report in reports:
            partial_slots.update(report.partials)
        for name, window in sorted(
            partial_slots, key=lambda slot: (slot[0], slot[1])
        ):
            parts = [report.partials[(name, window)] for report in reports]
            aggregate = get_aggregate(parts[0].aggregate)
            out.setdefault(name, {})[window] = finalize_partials(
                aggregate, parts
            )
        if self._forward is not None:
            forwarded = self._forward.report(drain=drain)
            for name, by_window in forwarded.results.items():
                for window, result in by_window.items():
                    out.setdefault(name, {})[window] = result
        self.wall_seconds += time.perf_counter() - started
        return out

    def _scatter(self, parts: "list[WindowResults]") -> WindowResults:
        """Disjoint-key concatenation: permute shard rows back into the
        global key space (no arithmetic — each key has one owner)."""
        first = parts[0]
        for part in parts[1:]:
            if (
                part.start_instance != first.start_instance
                or part.frontier != first.frontier
            ):
                raise ExecutionError(
                    f"{first.query}/{first.window}: shard emission ranges "
                    f"disagree — [{first.start_instance}, {first.frontier}) "
                    f"vs [{part.start_instance}, {part.frontier})"
                )
        span = first.frontier - first.start_instance
        values = np.empty((self.num_keys, span), dtype=np.float64)
        for slot, part in enumerate(parts):
            owned = self.partitioner.owned[self.active_shards[slot]]
            values[owned, :] = part.values
        return WindowResults(
            query=first.query,
            window=first.window,
            start_instance=first.start_instance,
            frontier=first.frontier,
            values=values,
        )

    def close(self) -> None:
        """Shut the backend down (worker processes exit).  The session
        accepts no further calls — results must be read before
        closing.  In async mode the pump is stopped first (queued
        events are still applied, so nothing in flight is lost).

        Robust to crashed workers: the backend teardown always runs —
        bounded join with terminate → kill escalation, shared-memory
        segments unlinked on every path — even when the pump raises a
        parked ingest error (drain-or-raise: events the pump could not
        apply surface here as an :class:`~repro.errors.ExecutionError`
        with an exact discarded count, never silently dropped)."""
        if self._released:
            return
        try:
            self._stop_pump()
        finally:
            self._released = True
            self._closed = True
            self.backend.close()

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ExecutionError("session is finished")

    def _require_backend(self) -> None:
        if self._released:
            raise ExecutionError(
                "session is closed: shard backends are shut down and "
                "their results are no longer reachable — read results "
                "before close()"
            )
