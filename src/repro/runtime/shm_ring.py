"""Single-producer/single-consumer columnar ring over shared memory.

The data plane of the :class:`~repro.runtime.sharding.ShardedSession`'s
``shm`` backend (DESIGN.md §8).  One ring connects the coordinator
(producer) to one shard worker (consumer): a fixed number of
fixed-capacity slots in a ``multiprocessing.shared_memory`` segment,
each slot holding one *record* — either a columnar event block
(timestamp / key / value columns, laid out from the event schema in
:data:`~repro.engine.events.EVENT_COLUMN_DTYPES`) or a watermark
advance.  Writing a record is three ``np.copyto`` calls into
pre-built numpy views over the segment; nothing on the data plane is
ever pickled.

Publication is seqlock-style: ``tail`` (producer-owned) and ``head``
(consumer-owned) are monotonically increasing 8-byte counters in
separate cache lines of the segment header.  The producer fills a
slot's payload first and publishes it by storing ``tail + 1``; the
consumer reads a slot only when ``head < tail`` and releases it by
storing ``head + 1``.  Each counter has exactly one writer, every
store is an aligned single word, and CPython emits the payload writes
and the counter store as separate C-level operations in program order
— the standard SPSC publication protocol on total-store-order
hardware.

Both sides map the same pages, so the producer's column writes are
**zero-copy** into the slot and the consumer reads them back through
numpy views over the same memory.  By default the consumer performs
one bounded ``memcpy`` per column (``np.array(view[:count])``) to own
the data beyond the slot's reuse.  The zero-copy consume path
(``pop(copy=False)``) skips even that: it hands out the slot views
directly and *borrows* the slot — ``head`` is not advanced, so the
producer cannot reuse it — until the consumer calls :meth:`release`
after it has finished reducing the data into its own state.  The
aliasing contract is strict: borrowed views are read-only and die at
:meth:`release`; any consumer that must retain event data past the
release point copies it explicitly.  Per-column copy traffic is
tracked in :attr:`bytes_copied` / :attr:`copies_elided` so the
benchmark harness can gate bytes-copied-per-event end-to-end.

Flow control is blocking-with-deadline on the producer side (a full
ring means the consumer is behind; the coordinator's backpressure
policy decides how long to wait) and non-blocking on the consumer side
(:meth:`ShmRing.pop` returns ``None`` on an empty ring so the worker
loop can interleave control-plane polling).
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass

import numpy as np

from ..engine.events import EVENT_BYTES, EVENT_COLUMN_DTYPES
from ..errors import ExecutionError

try:  # pragma: no cover - exercised only where shm is unavailable
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = [
    "RECORD_ADVANCE",
    "RECORD_DATA",
    "RingSpec",
    "ShmRing",
]

#: Record kinds (slot header ``kind`` field).
RECORD_DATA = 1
RECORD_ADVANCE = 2

#: Kind word written by :meth:`ShmRing.poison_slot` — intentionally
#: outside the valid record set so the consumer fails integrity checks.
_POISON_KIND = 99

#: Header layout: three producer/consumer/flag words in separate
#: 64-byte cache lines (tail, head, closed).
_TAIL_OFFSET = 0
_HEAD_OFFSET = 64
_CLOSED_OFFSET = 128
_HEADER_BYTES = 192

#: Per-slot header: ``kind``, ``count``, ``watermark`` (int64 each),
#: padded to keep the column blocks 8-byte aligned.
_SLOT_HEADER = struct.Struct("<qqq")
_SLOT_HEADER_BYTES = 32

_WORD = struct.Struct("<q")

#: Columnar slot payload layout — one block per event column, straight
#: from the event schema (timestamp int64, key int64, value float64).
#: Offsets are derived from each dtype's itemsize, so the layout tracks
#: schema changes; the 8-byte-alignment assertion is what the aligned
#: single-word counter stores (and x86 store atomicity) rely on.
_COLUMN_DTYPES = tuple(dtype for _, dtype in EVENT_COLUMN_DTYPES)
assert all(
    dtype.itemsize % 8 == 0 for dtype in _COLUMN_DTYPES
), "event columns must stay 8-byte aligned for the ring layout"

#: Producer-side wait step while the ring is full (the consumer is a
#: live process crunching the previous chunks; spin gently).
_FULL_RING_SLEEP = 100e-6


@dataclass(frozen=True)
class RingSpec:
    """Geometry + identity of one ring, shareable across processes.

    The spec is tiny and picklable: the coordinator creates the
    segment, then passes the spec (not the mapping) to the worker,
    which re-attaches by name.
    """

    name: str
    slot_events: int
    num_slots: int

    @property
    def slot_bytes(self) -> int:
        return _SLOT_HEADER_BYTES + self.slot_events * EVENT_BYTES

    @property
    def total_bytes(self) -> int:
        return _HEADER_BYTES + self.num_slots * self.slot_bytes

    def __post_init__(self) -> None:
        if self.slot_events < 1:
            raise ExecutionError(
                f"slot_events must be >= 1, got {self.slot_events}"
            )
        if self.num_slots < 2:
            raise ExecutionError(
                f"num_slots must be >= 2, got {self.num_slots}"
            )


class ShmRing:
    """One SPSC ring mapped into this process.

    Create with :meth:`create` (producer side, owns the segment) or
    :meth:`attach` (consumer side).  The producer/consumer split is a
    protocol, not an enforcement: exactly one process may call the
    producer methods (:meth:`push_events` / :meth:`push_advance` /
    :meth:`close_ring`) and exactly one the consumer methods
    (:meth:`pop`).
    """

    def __init__(self, spec: RingSpec, shm, owner: bool):
        self.spec = spec
        self._shm = shm
        self._owner = owner
        buf = shm.buf
        self._buf = buf
        # Pre-built zero-copy views: one (ts, keys, values) triple per
        # slot, directly over the shared pages.
        self._columns: list[tuple[np.ndarray, ...]] = []
        for slot in range(spec.num_slots):
            base = _HEADER_BYTES + slot * spec.slot_bytes
            offset = base + _SLOT_HEADER_BYTES
            views = []
            for dtype in _COLUMN_DTYPES:
                views.append(
                    np.ndarray(
                        (spec.slot_events,),
                        dtype=dtype,
                        buffer=buf,
                        offset=offset,
                    )
                )
                offset += spec.slot_events * dtype.itemsize
            self._columns.append(tuple(views))
        # Consumer-side borrow bookkeeping (zero-copy consume path):
        # records read past ``head`` but not yet released.  Purely
        # local to the consumer process — the producer never sees it
        # except through the delayed ``head`` advance.
        self._pending = 0
        #: Consumer-side copy accounting (see module docstring).
        self.bytes_copied = 0
        self.copies_elided = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, slot_events: int, num_slots: int, name: "str | None" = None
    ) -> "ShmRing":
        """Allocate a fresh zeroed segment and map it (producer side)."""
        if shared_memory is None:  # pragma: no cover
            raise ExecutionError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use the 'process' shard backend instead"
            )
        probe = RingSpec(name="", slot_events=slot_events, num_slots=num_slots)
        shm = shared_memory.SharedMemory(
            create=True, size=probe.total_bytes, name=name
        )
        spec = RingSpec(
            name=shm.name, slot_events=slot_events, num_slots=num_slots
        )
        shm.buf[:_HEADER_BYTES] = b"\x00" * _HEADER_BYTES
        return cls(spec, shm, owner=True)

    @classmethod
    def attach(cls, spec: RingSpec, untrack: bool = False) -> "ShmRing":
        """Map an existing segment by name (consumer side).

        ``untrack=True`` unregisters the mapping from this process's
        ``resource_tracker``.  The creating (coordinator) process owns
        the unlink, so a *spawn*-context worker — which runs its own
        tracker — must untrack or its tracker destroys the segment at
        worker exit (bpo-38119).  A *fork*-context worker shares the
        coordinator's tracker and must NOT untrack, or it would erase
        the coordinator's own registration.
        """
        if shared_memory is None:  # pragma: no cover
            raise ExecutionError("multiprocessing.shared_memory unavailable")
        shm = shared_memory.SharedMemory(name=spec.name)
        if untrack:
            try:  # pragma: no cover - depends on stdlib internals
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(spec, shm, owner=False)

    # ------------------------------------------------------------------
    # Counter access
    # ------------------------------------------------------------------
    def _load(self, offset: int) -> int:
        return _WORD.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _WORD.pack_into(self._buf, offset, value)

    @property
    def depth(self) -> int:
        """Published-but-unconsumed records (racy but monotone-safe:
        each counter has one writer)."""
        return self._load(_TAIL_OFFSET) - self._load(_HEAD_OFFSET)

    @property
    def closed(self) -> bool:
        return bool(self._load(_CLOSED_OFFSET))

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def _acquire_slot(self, timeout: float, liveness=None) -> int:
        tail = self._load(_TAIL_OFFSET)
        deadline = None
        while tail - self._load(_HEAD_OFFSET) >= self.spec.num_slots:
            if self.closed:
                raise ExecutionError("ring is closed")
            if liveness is not None and not liveness():
                raise ExecutionError(
                    "ring consumer died with the ring full"
                )
            now = time.monotonic()
            if deadline is None:
                deadline = now + timeout
            elif now >= deadline:
                raise ExecutionError(
                    f"ring full for {timeout:.1f}s — consumer stalled "
                    f"(depth {self.spec.num_slots})"
                )
            time.sleep(_FULL_RING_SLEEP)
        return tail

    def _publish(self, tail: int) -> None:
        # The payload stores above this line happen-before the counter
        # store in program order; the consumer only dereferences the
        # slot after observing the new tail.
        self._store(_TAIL_OFFSET, tail + 1)

    def push_events(
        self,
        ts: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        timeout: float = 60.0,
        liveness=None,
    ) -> int:
        """Write one columnar event block, split across as many slots
        as its length requires.  Returns the number of records used.

        Blocks while the ring is full (the consumer owns the pace);
        raises after ``timeout`` seconds without progress or as soon
        as ``liveness()`` reports the consumer dead.
        """
        n = int(ts.size)
        capacity = self.spec.slot_events
        records = 0
        pos = 0
        while pos < n:
            take = min(n - pos, capacity)
            tail = self._acquire_slot(timeout, liveness)
            slot = tail % self.spec.num_slots
            slot_ts, slot_keys, slot_values = self._columns[slot]
            np.copyto(slot_ts[:take], ts[pos : pos + take], casting="same_kind")
            np.copyto(
                slot_keys[:take], keys[pos : pos + take], casting="same_kind"
            )
            np.copyto(
                slot_values[:take],
                values[pos : pos + take],
                casting="same_kind",
            )
            _SLOT_HEADER.pack_into(
                self._buf,
                _HEADER_BYTES + slot * self.spec.slot_bytes,
                RECORD_DATA,
                take,
                0,
            )
            self._publish(tail)
            pos += take
            records += 1
        return records

    def push_advance(
        self, watermark: int, timeout: float = 60.0, liveness=None
    ) -> None:
        """Write one watermark-advance record."""
        tail = self._acquire_slot(timeout, liveness)
        slot = tail % self.spec.num_slots
        _SLOT_HEADER.pack_into(
            self._buf,
            _HEADER_BYTES + slot * self.spec.slot_bytes,
            RECORD_ADVANCE,
            0,
            watermark,
        )
        self._publish(tail)

    def poison_slot(self, timeout: float = 5.0) -> None:
        """Test support (fault injection): publish one record with an
        invalid kind word, as left by a corrupting writer.  The
        consumer's next :meth:`pop` must fail loudly — corrupt shared
        memory is an integrity error, never silently skipped."""
        tail = self._acquire_slot(timeout)
        slot = tail % self.spec.num_slots
        _SLOT_HEADER.pack_into(
            self._buf,
            _HEADER_BYTES + slot * self.spec.slot_bytes,
            _POISON_KIND,
            0,
            0,
        )
        self._publish(tail)

    def close_ring(self) -> None:
        """Set the closed flag (consumers drain what is published and
        producers stop blocking on a full ring)."""
        self._store(_CLOSED_OFFSET, 1)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def pop(self, copy: bool = True):
        """Consume one record, or return ``None`` on an empty ring.

        Data records come back as ``("data", ts, keys, values)``;
        advance records as ``("advance", watermark)``.

        With ``copy=True`` (default) the data arrays are freshly owned
        (one bounded copy per column) and the slot is freed
        immediately — unless earlier borrowed records are still
        outstanding, in which case freeing is deferred to
        :meth:`release` (``head`` may never overtake a borrowed slot).

        With ``copy=False`` the data arrays are **views over the slot
        itself** — zero copies — and the record is *borrowed*: the
        slot stays unavailable to the producer until :meth:`release`.
        Borrowed views are read-only and must not be retained past the
        release; consumers that need longevity copy explicitly.
        """
        head = self._load(_HEAD_OFFSET) + self._pending
        if head >= self._load(_TAIL_OFFSET):
            return None
        slot = head % self.spec.num_slots
        kind, count, watermark = _SLOT_HEADER.unpack_from(
            self._buf, _HEADER_BYTES + slot * self.spec.slot_bytes
        )
        if kind == RECORD_ADVANCE:
            record = ("advance", watermark)
        elif kind == RECORD_DATA:
            slot_ts, slot_keys, slot_values = self._columns[slot]
            if copy:
                record = (
                    "data",
                    np.array(slot_ts[:count]),
                    np.array(slot_keys[:count]),
                    np.array(slot_values[:count]),
                )
                self.bytes_copied += count * EVENT_BYTES
            else:
                record = (
                    "data",
                    slot_ts[:count],
                    slot_keys[:count],
                    slot_values[:count],
                )
                self.copies_elided += count
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"corrupt ring record kind {kind}")
        if kind == RECORD_DATA and not copy:
            self._pending += 1
        elif self._pending:
            # Fully-owned record behind an outstanding borrow: its slot
            # cannot be freed until the borrow releases, so it joins
            # the pending run and frees with it.
            self._pending += 1
        else:
            self._store(_HEAD_OFFSET, head + 1)
        return record

    @property
    def borrowed(self) -> int:
        """Records consumed via ``pop(copy=False)`` (plus any records
        consumed behind them) whose slots are still held."""
        return self._pending

    def release(self) -> None:
        """Free every borrowed slot back to the producer.

        All views handed out by ``pop(copy=False)`` since the last
        release become invalid — the producer may overwrite those
        slots immediately.
        """
        if self._pending:
            self._store(
                _HEAD_OFFSET, self._load(_HEAD_OFFSET) + self._pending
            )
            self._pending = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment (and unlink it when this side created it).

        Numpy views over the buffer are dropped first — ``SharedMemory``
        refuses to close while exported views are alive.
        """
        self._columns = []
        self._buf = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
