"""The non-blocking async ingest front door (DESIGN.md §8).

A live session's ``push`` is synchronous: the producer thread pays for
routing, partitioning, and — on chunk boundaries — the whole flush
before the call returns.  With ``async_ingest=True`` a session puts a
bounded :class:`IngestQueue` and one background :class:`IngestPump`
thread in front of that machinery instead:

* ``push`` / ``push_batch`` enqueue and return immediately — the
  producer never waits on a flush;
* the pump thread dequeues in FIFO order and applies each command
  through the session's *synchronous* path, so the coordinator clock,
  the reorder buffer, and every shard see exactly the command stream
  they would have seen without the queue — watermark-lockstep
  semantics are inherited, not re-implemented, which is what keeps
  shard invariance (invariant 10) and switch invisibility (invariant
  9) intact in async mode (invariant 11 ties the two modes together);
* workload mutations and reads (``register`` / ``deregister`` /
  ``results`` / ``drain_results`` / ``finish``) enqueue a *call*
  command and wait for the pump to execute it, making them
  synchronization points: a registration lands after every previously
  pushed event, exactly as in sync mode.

**Backpressure, not loss.**  The queue is bounded in *events* (a batch
weighs its length): once the backlog reaches ``high_watermark`` the
gate closes and data producers block until the pump drains it to
``low_watermark`` (hysteresis, so producers wake to a usefully empty
queue instead of thrashing at the boundary).  Nothing is ever dropped
or reordered — a slow consumer slows the producer down, it never
corrupts results (``tests/runtime/test_ingest.py`` holds this as a
property).  Waits and the backlog high-water mark are counted exactly
in :class:`IngestStats`.

**Multi-producer, single-consumer.**  The queue is MPSC: any number
of threads may ``feed`` one session concurrently — every producer-side
entry point (``put_data`` / ``put_control`` and the pump's ``submit_*``
wrappers) runs under one lock, so admissions are atomic and the pump
still sees one totally-ordered command stream.  What the queue cannot
restore is an order the producers never had: events from different
threads interleave in admission order, so cross-thread timestamp
ordering is the producers' problem (give the session ``max_lateness``
slack, or keep each key's events on one thread).  The multi-tenant
service (:mod:`repro.service`) leans on exactly this: N connection
handlers feed one tenant's session concurrently
(``tests/runtime/test_ingest.py`` holds N-producers ≡ serial-oracle as
a property).

**Errors.**  The pump applies data commands fire-and-forget, so a
failure (e.g. a key outside the dense id space) is parked and raised
on the *next* front-door call — the same park-and-surface discipline
the shard workers use for their fire-and-forget data plane.  After an
error the front door is poisoned: data commands are discarded and
every submission raises.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..errors import ExecutionError

__all__ = [
    "AsyncIngestFrontDoor",
    "DEFAULT_INGEST_HIGH_WATERMARK",
    "IngestPump",
    "IngestQueue",
    "IngestStats",
]

#: Default backlog bound, in events.  At the benchmark's ~1-3M ev/s
#: single-shard drain rate this is tens of milliseconds of slack —
#: deep enough to absorb producer bursts, shallow enough that a
#: stalled consumer surfaces as backpressure almost immediately.
DEFAULT_INGEST_HIGH_WATERMARK = 65_536


@dataclass
class IngestStats:
    """Exact counters of one session's async front door."""

    enqueued_events: int = 0  # events accepted (push + push_batch)
    enqueued_calls: int = 0  # synchronous commands routed through
    backpressure_waits: int = 0  # producer blocks on a closed gate
    max_depth_events: int = 0  # backlog high-water mark, in events


class _Call:
    """One synchronous command in flight through the queue."""

    __slots__ = ("fn", "args", "kwargs", "done", "result", "error")

    def __init__(self, fn, args, kwargs):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.done = threading.Event()
        self.result = None
        self.error: "BaseException | None" = None

    def run(self) -> None:
        try:
            self.result = self.fn(*self.args, **self.kwargs)
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            self.error = exc
        finally:
            self.done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()

    def wait(self):
        self.done.wait()
        if self.error is not None:
            raise self.error
        return self.result


class IngestQueue:
    """A bounded FIFO of ingest commands, weighed in events.

    Data items (events, batches) respect the high/low-watermark gate;
    call and stop items bypass it (they are control plane — blocking a
    ``register`` behind the very backlog it is meant to synchronize
    with would invert its priority).

    Multi-producer safe: every entry point takes the one internal
    lock, so concurrent ``put_data``/``put_control`` callers admit
    atomically in lock-acquisition order and blocked producers wake
    fairly off the same gate condition.  There is exactly one
    consumer (the pump thread) — ``get`` is not designed for more.
    """

    def __init__(
        self,
        high_watermark: int = DEFAULT_INGEST_HIGH_WATERMARK,
        low_watermark: "int | None" = None,
    ):
        if high_watermark < 1:
            raise ExecutionError(
                f"high_watermark must be >= 1, got {high_watermark}"
            )
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if not 0 <= low_watermark < high_watermark:
            raise ExecutionError(
                f"low_watermark must lie in [0, {high_watermark}), "
                f"got {low_watermark}"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.stats = IngestStats()
        self._items: deque = deque()
        self._depth_events = 0
        self._gate_open = True
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._gate = threading.Condition(self._lock)

    @property
    def depth_events(self) -> int:
        """Events currently queued (racy snapshot outside the pump)."""
        return self._depth_events

    def _admit(self, item, weight: int) -> None:
        self._items.append((item, weight))
        self._depth_events += weight
        if self._depth_events > self.stats.max_depth_events:
            self.stats.max_depth_events = self._depth_events
        if self._depth_events >= self.high_watermark:
            self._gate_open = False
        self._not_empty.notify()

    def put_data(self, item, weight: int) -> None:
        """Enqueue one data command, blocking while the gate is shut."""
        with self._lock:
            if self._closed:
                raise ExecutionError("ingest queue is closed")
            if not self._gate_open:
                self.stats.backpressure_waits += 1
                while not self._gate_open and not self._closed:
                    self._gate.wait()
                if self._closed:
                    raise ExecutionError("ingest queue is closed")
            self.stats.enqueued_events += weight
            self._admit(item, weight)

    def put_control(self, item, counted: bool = True) -> None:
        """Enqueue one control command (bypasses the gate)."""
        with self._lock:
            if self._closed:
                raise ExecutionError("ingest queue is closed")
            if counted:
                self.stats.enqueued_calls += 1
            self._admit(item, 0)

    def get(self):
        """Dequeue the next command (pump side; blocks when empty)."""
        with self._lock:
            while not self._items:
                self._not_empty.wait()
            item, weight = self._items.popleft()
            self._depth_events -= weight
            if not self._gate_open and self._depth_events <= self.low_watermark:
                self._gate_open = True
                self._gate.notify_all()
            return item

    def peek_data(self) -> list:
        """The queued *data* items, in order, without consuming them —
        the ingest-queue residue a session snapshot captures so queued
        but not-yet-applied events survive a restore (DESIGN.md §9)."""
        with self._lock:
            return [
                item
                for item, _ in self._items
                if item[0] in (_EVENT, _BATCH)
            ]

    def close(self) -> list:
        """Refuse further puts; wake blocked producers; return the
        still-queued ``(item, weight)`` pairs (the pump fails their
        calls and counts discarded data exactly — never silently)."""
        with self._lock:
            self._closed = True
            self._gate_open = True
            self._gate.notify_all()
            leftovers = list(self._items)
            self._items.clear()
            self._depth_events = 0
            return leftovers


#: Queue item kinds.
_EVENT, _BATCH, _CALL, _STOP = range(4)


class AsyncIngestFrontDoor:
    """Mixin: the session-side routing half of the async front door.

    A session using it sets ``self._pump`` (an :class:`IngestPump` or
    ``None``) and routes every public entry point through the helpers
    below.  Keeping the routing in one place matters beyond tidiness:
    *every* call that touches session or backend state — including
    introspection like ``stats()`` — must serialize through the pump
    while it runs, because the pump thread may be mid-flush inside the
    backend (two threads writing one worker pipe interleave their
    bytes and corrupt the stream).  Reads that only load a coordinator
    local scalar (``watermark``, ``reorder_stats``) are exempt.
    """

    _pump: "IngestPump | None" = None

    @property
    def ingest_stats(self) -> "IngestStats | None":
        """Front-door counters (``None`` when ``async_ingest=False``)."""
        return None if self._pump is None else self._pump.stats

    def _via_pump(self, fn, *args, **kwargs):
        """Run ``fn`` at its position in the async command stream (a
        synchronization point), or directly in sync mode."""
        pump = self._pump
        if pump is not None and pump.accepting and not pump.in_pump_thread():
            return pump.submit_call(fn, *args, **kwargs)
        return fn(*args, **kwargs)

    def _route_event(self, ts: int, key: int, value: float) -> bool:
        """Enqueue one event in async mode; ``False`` means the caller
        should run its synchronous path."""
        pump = self._pump
        if pump is not None and pump.accepting:
            pump.submit_event(ts, key, value)
            return True
        return False

    def _stop_pump(self) -> None:
        """Drain and stop the pump (idempotent; no-op in sync mode)."""
        if self._pump is not None:
            self._pump.stop()


class IngestPump:
    """The background thread draining an :class:`IngestQueue` into a
    session's synchronous ingest path.

    ``push`` / ``push_batch`` are the session's *synchronous*
    single-threaded entry points — the pump is their only caller while
    it runs, which is the whole concurrency story: one producer-facing
    bounded MPSC queue (any number of submitting threads), one
    consumer thread, zero shared mutable session state across
    threads.
    """

    def __init__(
        self,
        push,
        push_batch=None,
        high_watermark: int = DEFAULT_INGEST_HIGH_WATERMARK,
        low_watermark: "int | None" = None,
        name: str = "repro-ingest-pump",
    ):
        self._push = push
        self._push_batch = push_batch
        self.queue = IngestQueue(high_watermark, low_watermark)
        self._error: "BaseException | None" = None
        self._error_seen = False
        self._discarded_events = 0
        self._stopped = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer-side API
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IngestStats:
        return self.queue.stats

    @property
    def accepting(self) -> bool:
        return not self._stopped

    def in_pump_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def _raise_pending(self) -> None:
        if self._error is not None:
            self._error_seen = True
            raise ExecutionError(
                f"async ingest failed: {self._error}"
            ) from self._error

    def pending_data(self) -> list:
        """The queued-but-unapplied data items (snapshot residue)."""
        return self.queue.peek_data()

    def submit_event(self, ts: int, key: int, value: float) -> None:
        self._raise_pending()
        self.queue.put_data((_EVENT, ts, key, value), 1)

    def submit_batch(self, batch) -> None:
        if self._push_batch is None:  # pragma: no cover - defensive
            raise ExecutionError("this session has no batch ingest path")
        self._raise_pending()
        self.queue.put_data((_BATCH, batch), max(1, batch.num_events))

    def submit_call(self, fn, *args, **kwargs):
        """Enqueue ``fn(*args, **kwargs)`` and wait for the pump to
        execute it at its position in the command stream."""
        self._raise_pending()
        call = _Call(fn, args, kwargs)
        self.queue.put_control((_CALL, call))
        result = call.wait()
        self._raise_pending()
        return result

    def stop(self) -> None:
        """Drain everything already queued, then stop the pump.  Safe
        to call more than once; later submissions raise.

        **Drain-or-raise**: queued data either flushes through the
        pump (the stop sentinel queues FIFO behind it) or — when the
        pump is poisoned by a parked error — the error is raised here
        with an exact count of the discarded events, so pending input
        is never silently dropped.  A parked error that already
        surfaced on an earlier front-door call is not raised twice.
        """
        if self._stopped and not self._thread.is_alive():
            return
        try:
            self.queue.put_control((_STOP,), counted=False)
        except ExecutionError:  # already closed by a crashed pump
            pass
        self._thread.join()
        self._stopped = True
        if self._error is not None and not self._error_seen:
            self._error_seen = True
            dropped = (
                f"; {self._discarded_events} queued event(s) were "
                "discarded, not applied"
                if self._discarded_events
                else ""
            )
            raise ExecutionError(
                f"async ingest failed: {self._error}{dropped}"
            ) from self._error

    # ------------------------------------------------------------------
    # Pump side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                item = self.queue.get()
                kind = item[0]
                if kind == _STOP:
                    break
                if kind == _CALL:
                    call = item[1]
                    if self._error is not None:
                        # Failing the call surfaces the parked error to
                        # the producer blocked in submit_call(); mark it
                        # seen so stop() does not raise it a second time.
                        self._error_seen = True
                        call.fail(
                            ExecutionError(
                                f"async ingest failed: {self._error}"
                            )
                        )
                    else:
                        call.run()
                    continue
                if self._error is not None:
                    # Poisoned: discard data (counted — stop() raises
                    # with the exact tally), surface on submit.
                    self._discarded_events += (
                        1 if kind == _EVENT else max(1, item[1].num_events)
                    )
                    continue
                try:
                    if kind == _EVENT:
                        self._push(item[1], item[2], item[3])
                    else:
                        self._push_batch(item[1])
                except BaseException as exc:  # noqa: BLE001 - parked
                    self._error = exc
        finally:
            self._stopped = True
            for item, weight in self.queue.close():
                if item[0] == _CALL:
                    item[1].fail(
                        ExecutionError("ingest pump stopped")
                    )
                elif item[0] in (_EVENT, _BATCH):
                    self._discarded_events += max(1, weight)
