"""Deterministic fault injection for the worker shard backends.

Chaos testing a multiprocess runtime is only useful if a failing
schedule *reproduces*: a fault that fires "sometime around chunk 40"
on one run and never on the next cannot anchor a property test.  So
faults here are not random signals from outside — they are injected by
the **coordinator itself**, at exact points of its own deterministic
command stream (:class:`~repro.runtime.sharding._WorkerShardBackend`
consults the plan before every data-plane send and every control-plane
command).  Given the same stream and schedule, a
:class:`FaultPlan` fires at the same instruction on every run, which
is what lets ``tests/runtime/test_checkpoint.py`` assert bit-identical
recovery under hypothesis-chosen crash points seeded from
``REPRO_TEST_SEED``.

Fault kinds
-----------
``kill``
    SIGKILL the shard's worker process.  With ``at_watermark=W`` it
    fires just before the coordinator ships the first watermark
    advance ≥ W to that shard (the advance itself is retained and
    replayed); with ``op="register"`` (or any control op) it fires
    just before that command is delivered.
``kill_mid_op``
    Deliver the control command, then SIGKILL the worker before it can
    reply — the crash-mid-``snapshot`` case: the coordinator must
    treat a command with no reply exactly like a crash before it.
``drop_control``
    Silently skip delivering one control command to one shard — a
    lost control message.  The worker stays alive but desyncs; the
    coordinator detects the missing reply via its control timeout and
    either recovers (respawn + replay) or raises with diagnostics.
``delay_control``
    Sleep ``delay_seconds`` before delivering one control command
    (scheduling jitter; must be observationally invisible).
``poison_ring``
    Write a corrupt record into the shard's shared-memory ring
    (``shm`` backend only): the worker must die loudly on the next
    pop (a record that cannot be parsed can never be consumed, so
    anything else would wedge the ring).  Corrupt data never reaches
    results: without recovery the session raises an integrity error
    carrying the worker's traceback; with recovery the worker is
    respawned onto a *fresh* ring and replayed from the coordinator's
    clean retained log — the poisoned segment is discarded whole.

Faults fire at most once each; :attr:`FaultPlan.fired` records the
order they actually hit, so tests can assert a schedule fully played
out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError

__all__ = ["Fault", "FaultPlan"]

#: Injection kinds a :class:`Fault` may carry.
FAULT_KINDS = (
    "kill",
    "kill_mid_op",
    "drop_control",
    "delay_control",
    "poison_ring",
)


@dataclass
class Fault:
    """One scheduled fault against one shard slot.

    ``slot`` indexes the backend's worker list (the session's
    ``active_shards`` order).  A data-plane trigger sets
    ``at_watermark`` (fires at the first advance ≥ it); a control-plane
    trigger sets ``op`` (fires at the next delivery of that command).
    Setting both restricts the control trigger to commands issued at or
    after the watermark.
    """

    kind: str
    slot: int
    at_watermark: "int | None" = None
    op: "str | None" = None
    delay_seconds: float = 0.0
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.slot < 0:
            raise ExecutionError(f"fault slot must be >= 0, got {self.slot}")
        if self.at_watermark is None and self.op is None:
            raise ExecutionError(
                "a fault needs a trigger: at_watermark, op, or both"
            )
        if self.kind in ("kill_mid_op", "drop_control", "delay_control") and (
            self.op is None
        ):
            raise ExecutionError(
                f"{self.kind} is a control-plane fault and needs op=..."
            )


class FaultPlan:
    """An ordered chaos schedule, consumed by the worker backends.

    The backends call :meth:`take` at their injection points; each
    fault fires at most once.  The plan is plain data — construct it
    from a seeded RNG for property tests.
    """

    def __init__(self, *faults: Fault):
        self.faults: "list[Fault]" = list(faults)
        self.fired: "list[Fault]" = []

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        return all(fault.fired for fault in self.faults)

    def take(
        self,
        point: str,
        slot: int,
        watermark: "int | None" = None,
        op: "str | None" = None,
    ) -> "list[Fault]":
        """Claim the faults due at one injection point (marks them
        fired).  ``point`` is ``"advance"`` (just before a data-plane
        watermark ship) or ``"control"`` (just before a control-plane
        command delivery)."""
        due = []
        for fault in self.faults:
            if fault.fired or fault.slot != slot:
                continue
            if point == "advance":
                if fault.op is not None or fault.at_watermark is None:
                    continue
                if watermark is None or watermark < fault.at_watermark:
                    continue
            elif point == "control":
                if fault.op is None or fault.op != op:
                    continue
                if fault.at_watermark is not None and (
                    watermark is None or watermark < fault.at_watermark
                ):
                    continue
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown injection point {point!r}")
            fault.fired = True
            self.fired.append(fault)
            due.append(fault)
        return due
