"""Deterministic fault injection for the worker shard backends.

Chaos testing a multiprocess runtime is only useful if a failing
schedule *reproduces*: a fault that fires "sometime around chunk 40"
on one run and never on the next cannot anchor a property test.  So
faults here are not random signals from outside — they are injected by
the **coordinator itself**, at exact points of its own deterministic
command stream (:class:`~repro.runtime.sharding._WorkerShardBackend`
consults the plan before every data-plane send and every control-plane
command).  Given the same stream and schedule, a
:class:`FaultPlan` fires at the same instruction on every run, which
is what lets ``tests/runtime/test_checkpoint.py`` assert bit-identical
recovery under hypothesis-chosen crash points seeded from
``REPRO_TEST_SEED``.

Fault kinds
-----------
``kill``
    SIGKILL the shard's worker process.  With ``at_watermark=W`` it
    fires just before the coordinator ships the first watermark
    advance ≥ W to that shard (the advance itself is retained and
    replayed); with ``op="register"`` (or any control op) it fires
    just before that command is delivered.
``kill_mid_op``
    Deliver the control command, then SIGKILL the worker before it can
    reply — the crash-mid-``snapshot`` case: the coordinator must
    treat a command with no reply exactly like a crash before it.
``drop_control``
    Silently skip delivering one control command to one shard — a
    lost control message.  The worker stays alive but desyncs; the
    coordinator detects the missing reply via its control timeout and
    either recovers (respawn + replay) or raises with diagnostics.
``delay_control``
    Sleep ``delay_seconds`` before delivering one control command
    (scheduling jitter; must be observationally invisible).
``poison_ring``
    Write a corrupt record into the shard's shared-memory ring
    (``shm`` backend only): the worker must die loudly on the next
    pop (a record that cannot be parsed can never be consumed, so
    anything else would wedge the ring).  Corrupt data never reaches
    results: without recovery the session raises an integrity error
    carrying the worker's traceback; with recovery the worker is
    respawned onto a *fresh* ring and replayed from the coordinator's
    clean retained log — the poisoned segment is discarded whole.

Service-level fault kinds (DESIGN.md §10)
-----------------------------------------
The multi-tenant service layer (:mod:`repro.service`) consults the
same plan at its own deterministic injection point — the top of every
tenant request (``point="service"``).  Service faults target a
*tenant* (by name) instead of a shard slot, and fire at the first
request of the matching ``op`` once that tenant's session watermark
has reached ``at_watermark`` (when set):

``kill_session``
    Hard-kill the tenant's whole session mid-request (the live
    session is closed and replaced by a dead stub, so the in-flight
    request fails exactly like a real session death).  The supervisor
    must restore from the newest checkpoint and replay the retained
    tail — invariant 13's bounded-downtime path.
``stall_client``
    Sleep ``delay_seconds`` while holding the tenant's session lock —
    a wedged client/connection.  Must stall only that tenant; every
    co-tenant keeps streaming (tenant isolation).
``flood_tenant``
    Drain the tenant's admission token bucket in one gulp — a traffic
    flood compressed into an instant.  Subsequent requests must be
    *shed* with an explicit ``overloaded``/``retry_after`` reply,
    never queued unboundedly.

Faults fire at most once each; :attr:`FaultPlan.fired` records the
order they actually hit, so tests can assert a schedule fully played
out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError

__all__ = ["Fault", "FaultPlan"]

#: Worker-level injection kinds (consumed by the shard backends).
WORKER_FAULT_KINDS = (
    "kill",
    "kill_mid_op",
    "drop_control",
    "delay_control",
    "poison_ring",
)

#: Service-level injection kinds (consumed by the session service,
#: DESIGN.md §10) — they target a tenant, not a shard slot.
SERVICE_FAULT_KINDS = (
    "kill_session",
    "stall_client",
    "flood_tenant",
)

#: Injection kinds a :class:`Fault` may carry.
FAULT_KINDS = WORKER_FAULT_KINDS + SERVICE_FAULT_KINDS


@dataclass
class Fault:
    """One scheduled fault against one shard slot or one tenant.

    For worker-level kinds ``slot`` indexes the backend's worker list
    (the session's ``active_shards`` order).  A data-plane trigger
    sets ``at_watermark`` (fires at the first advance ≥ it); a
    control-plane trigger sets ``op`` (fires at the next delivery of
    that command).  Setting both restricts the control trigger to
    commands issued at or after the watermark.

    Service-level kinds set ``tenant`` (and leave ``slot`` at 0): the
    fault fires at the first request of the matching ``op`` (e.g.
    ``"ingest"``) for that tenant, once the tenant's session watermark
    has reached ``at_watermark`` (when set).
    """

    kind: str
    slot: int = 0
    at_watermark: "int | None" = None
    op: "str | None" = None
    delay_seconds: float = 0.0
    tenant: "str | None" = None
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.slot < 0:
            raise ExecutionError(f"fault slot must be >= 0, got {self.slot}")
        if self.kind in SERVICE_FAULT_KINDS:
            if self.tenant is None:
                raise ExecutionError(
                    f"{self.kind} is a service-level fault and needs "
                    "tenant=..."
                )
            if self.op is None:
                raise ExecutionError(
                    f"{self.kind} needs op=... (the tenant request kind "
                    "it fires on, e.g. 'ingest')"
                )
            if self.kind == "stall_client" and self.delay_seconds <= 0:
                raise ExecutionError(
                    "stall_client needs delay_seconds > 0"
                )
            return
        if self.tenant is not None:
            raise ExecutionError(
                f"{self.kind} is a worker-level fault; tenant= only "
                "applies to service-level kinds"
            )
        if self.at_watermark is None and self.op is None:
            raise ExecutionError(
                "a fault needs a trigger: at_watermark, op, or both"
            )
        if self.kind in ("kill_mid_op", "drop_control", "delay_control") and (
            self.op is None
        ):
            raise ExecutionError(
                f"{self.kind} is a control-plane fault and needs op=..."
            )


class FaultPlan:
    """An ordered chaos schedule, consumed by the worker backends.

    The backends call :meth:`take` at their injection points; each
    fault fires at most once.  The plan is plain data — construct it
    from a seeded RNG for property tests.
    """

    def __init__(self, *faults: Fault):
        self.faults: "list[Fault]" = list(faults)
        self.fired: "list[Fault]" = []

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        return all(fault.fired for fault in self.faults)

    def take(
        self,
        point: str,
        slot: int = 0,
        watermark: "int | None" = None,
        op: "str | None" = None,
        tenant: "str | None" = None,
    ) -> "list[Fault]":
        """Claim the faults due at one injection point (marks them
        fired).  ``point`` is ``"advance"`` (just before a data-plane
        watermark ship), ``"control"`` (just before a control-plane
        command delivery), or ``"service"`` (the top of one tenant
        request in the session service, DESIGN.md §10)."""
        if point not in ("advance", "control", "service"):
            raise ExecutionError(f"unknown injection point {point!r}")
        due = []
        for fault in self.faults:
            if fault.fired:
                continue
            service_kind = fault.kind in SERVICE_FAULT_KINDS
            if point == "service":
                if not service_kind or fault.tenant != tenant:
                    continue
                if fault.op != op:
                    continue
                if fault.at_watermark is not None and (
                    watermark is None or watermark < fault.at_watermark
                ):
                    continue
            elif service_kind or fault.slot != slot:
                continue
            elif point == "advance":
                if fault.op is not None or fault.at_watermark is None:
                    continue
                if watermark is None or watermark < fault.at_watermark:
                    continue
            else:  # control
                if fault.op is None or fault.op != op:
                    continue
                if fault.at_watermark is not None and (
                    watermark is None or watermark < fault.at_watermark
                ):
                    continue
            fault.fired = True
            self.fired.append(fault)
            due.append(fault)
        return due
