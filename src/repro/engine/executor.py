"""Plan execution facade.

``execute_plan(plan, batch)`` runs a logical plan on a finite event
batch with either engine and returns an :class:`ExecutionResult`
bundling per-window result arrays with execution statistics.  This is
the function the benchmark harness, the examples, and the equivalence
tests all call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan
from ..plans.validate import validate_plan
from ..windows.window import Window
from .columnar import (
    WindowState,
    aggregate_from_provider,
    aggregate_raw,
    aggregate_raw_holistic,
)
from .events import EventBatch
from .stats import ExecutionStats
from .streaming import StreamingExecutor

Record = tuple[str, int, int, float]  # (window label, key, instance, value)


@dataclass
class ExecutionResult:
    """Results and statistics from executing one plan on one batch."""

    plan: LogicalPlan
    results: dict[Window, np.ndarray]
    stats: ExecutionStats
    engine: str

    @property
    def throughput(self) -> float:
        return self.stats.throughput

    def to_records(self, drop_empty: bool = False) -> list[Record]:
        """Flatten results into sorted, comparable records.

        With ``drop_empty=True``, NaN results (empty instances) are
        omitted — useful when comparing against engines that do not
        emit empty instances.
        """
        records: list[Record] = []
        for window in sorted(self.results, key=lambda w: (w.range, w.slide)):
            array = self.results[window]
            label = f"W({window.range},{window.slide})"
            for key in range(array.shape[0]):
                for instance in range(array.shape[1]):
                    value = float(array[key, instance])
                    if drop_empty and np.isnan(value):
                        continue
                    records.append((label, key, instance, value))
        return records


def execute_plan(
    plan: LogicalPlan,
    batch: EventBatch,
    engine: str = "columnar",
    validate: bool = True,
) -> ExecutionResult:
    """Execute ``plan`` over ``batch``.

    ``engine`` is ``"columnar"`` (vectorized, the default) or
    ``"streaming"`` (row-at-a-time reference).
    """
    if validate:
        validate_plan(plan)
    if engine == "columnar":
        return _execute_columnar(plan, batch)
    if engine == "streaming":
        executor = StreamingExecutor(plan, batch)
        results = executor.run()
        executor.stats.events = batch.num_events
        return ExecutionResult(
            plan=plan, results=results, stats=executor.stats, engine=engine
        )
    raise ExecutionError(f"unknown engine {engine!r}")


def _execute_columnar(plan: LogicalPlan, batch: EventBatch) -> ExecutionResult:
    stats = ExecutionStats(events=batch.num_events)
    started = time.perf_counter()
    states: dict[Window, WindowState] = {}
    results: dict[Window, np.ndarray] = {}

    for node in plan.topological_window_order():
        aggregate = node.aggregate
        if node.provider is None:
            if aggregate.mergeable:
                state = aggregate_raw(batch, node.window, aggregate, stats)
                states[node.window] = state
                if not node.is_factor:
                    results[node.window] = state.finalized(aggregate)
            else:
                if node.is_factor:
                    raise ExecutionError(
                        "holistic aggregates cannot be factor windows"
                    )
                results[node.window] = aggregate_raw_holistic(
                    batch, node.window, aggregate, stats
                )
        else:
            provider_state = states.get(node.provider)
            if provider_state is None:
                raise ExecutionError(
                    f"provider {node.provider} has no state for {node.window}"
                )
            state = aggregate_from_provider(
                provider_state, node.window, aggregate, batch.horizon, stats
            )
            states[node.window] = state
            if not node.is_factor:
                results[node.window] = state.finalized(aggregate)

    stats.wall_seconds = time.perf_counter() - started
    return ExecutionResult(
        plan=plan, results=results, stats=stats, engine="columnar"
    )


def results_equal(
    left: ExecutionResult,
    right: ExecutionResult,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> bool:
    """Compare two execution results window-by-window (NaN == NaN)."""
    if set(left.results) != set(right.results):
        return False
    for window, array in left.results.items():
        other = right.results[window]
        if array.shape != other.shape:
            return False
        if not np.allclose(array, other, rtol=rtol, atol=atol, equal_nan=True):
            return False
    return True
