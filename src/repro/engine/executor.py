"""Plan execution facade and the engine/path registry.

``execute_plan(plan, batch, engine=...)`` runs a logical plan on a
finite event batch with any registered execution path and returns an
:class:`ExecutionResult` bundling per-window result arrays with
execution statistics.  This is the function the benchmark harness, the
examples, and the equivalence tests all call.

Registered paths (DESIGN.md §5):

``columnar``
    The original vectorized engine: every raw read materializes all
    ``N * k`` (event, instance) pairs.
``columnar-panes``
    The pane-partitioned fast path: bin events once per pane table,
    assemble instances with a vectorized gather+reduce.
``columnar-panes-native``
    The pane path with its grouping/holistic hot spots running in the
    optional compiled kernels (``repro._kernels``); bit-identical to
    ``columnar-panes``, and falls back to it transparently when no C
    compiler is available.
``streaming``
    Row-at-a-time reference interpreter (the semantic oracle).
``streaming-chunked``
    Streaming semantics in vectorized watermark blocks with bounded
    open state.

All paths produce identical results and identical *logical* pair
counts; they differ only in wall-clock and *physical* touches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan
from ..plans.validate import validate_plan
from ..windows.window import Window
from .columnar import (
    WindowState,
    aggregate_from_provider,
    aggregate_raw,
    aggregate_raw_holistic,
)
from .events import EventBatch
from .panes import execute_plan_panes
from .stats import ExecutionStats
from .streaming import ChunkedStreamingExecutor, StreamingExecutor

Record = tuple[str, int, int, float]  # (window label, key, instance, value)


@dataclass
class ExecutionResult:
    """Results and statistics from executing one plan on one batch."""

    plan: LogicalPlan
    results: dict[Window, np.ndarray]
    stats: ExecutionStats
    engine: str

    @property
    def throughput(self) -> float:
        return self.stats.throughput

    def to_records(self, drop_empty: bool = False) -> list[Record]:
        """Flatten results into sorted, comparable records.

        With ``drop_empty=True``, NaN results (empty instances) are
        omitted — useful when comparing against engines that do not
        emit empty instances.  Built columnar-first: key/instance
        columns come from NumPy and tuples materialize once at the end.
        """
        records: list[Record] = []
        for window in sorted(self.results, key=lambda w: (w.range, w.slide)):
            array = self.results[window]
            label = f"W({window.range},{window.slide})"
            num_keys, num_instances = array.shape
            flat = array.reshape(-1)
            keys = np.repeat(np.arange(num_keys), num_instances)
            instances = np.tile(np.arange(num_instances), num_keys)
            if drop_empty:
                mask = ~np.isnan(flat)
                flat, keys, instances = flat[mask], keys[mask], instances[mask]
            records.extend(
                zip(
                    [label] * len(flat),
                    keys.tolist(),
                    instances.tolist(),
                    flat.tolist(),
                )
            )
        return records


EngineFn = Callable[..., ExecutionResult]

_ENGINES: dict[str, EngineFn] = {}


def register_engine(name: str) -> "Callable[[EngineFn], EngineFn]":
    """Register an execution path under ``name`` (decorator).

    The registered callable receives ``(plan, batch, **engine_kwargs)``
    and must return an :class:`ExecutionResult`.  Registering an
    existing name replaces the path — the hook third-party backends use
    to shadow a built-in.
    """

    def decorator(fn: EngineFn) -> EngineFn:
        _ENGINES[name] = fn
        return fn

    return decorator


def available_engines() -> tuple[str, ...]:
    """Names of all registered execution paths, sorted."""
    return tuple(sorted(_ENGINES))


def execute_plan(
    plan: LogicalPlan,
    batch: EventBatch,
    engine: str = "columnar",
    validate: bool = True,
    **engine_kwargs,
) -> ExecutionResult:
    """Execute ``plan`` over ``batch`` on the ``engine`` path.

    ``engine`` is any name in :func:`available_engines`; extra keyword
    arguments are forwarded to the path (e.g. ``chunk_ticks`` for
    ``streaming-chunked``).
    """
    if validate:
        validate_plan(plan)
    fn = _ENGINES.get(engine)
    if fn is None:
        raise ExecutionError(
            f"unknown engine {engine!r}; available: "
            + ", ".join(available_engines())
        )
    return fn(plan, batch, **engine_kwargs)


@register_engine("columnar")
def _execute_columnar(plan: LogicalPlan, batch: EventBatch) -> ExecutionResult:
    stats = ExecutionStats(events=batch.num_events)
    started = time.perf_counter()
    states: dict[Window, WindowState] = {}
    results: dict[Window, np.ndarray] = {}

    for node in plan.topological_window_order():
        aggregate = node.aggregate
        if node.provider is None:
            if aggregate.mergeable:
                state = aggregate_raw(batch, node.window, aggregate, stats)
                states[node.window] = state
                if not node.is_factor:
                    results[node.window] = state.finalized(aggregate)
            else:
                if node.is_factor:
                    raise ExecutionError(
                        "holistic aggregates cannot be factor windows"
                    )
                results[node.window] = aggregate_raw_holistic(
                    batch, node.window, aggregate, stats
                )
        else:
            provider_state = states.get(node.provider)
            if provider_state is None:
                raise ExecutionError(
                    f"provider {node.provider} has no state for {node.window}"
                )
            state = aggregate_from_provider(
                provider_state, node.window, aggregate, batch.horizon, stats
            )
            states[node.window] = state
            if not node.is_factor:
                results[node.window] = state.finalized(aggregate)

    stats.wall_seconds = time.perf_counter() - started
    return ExecutionResult(
        plan=plan, results=results, stats=stats, engine="columnar"
    )


@register_engine("columnar-panes")
def _execute_columnar_panes(
    plan: LogicalPlan, batch: EventBatch
) -> ExecutionResult:
    results, stats = execute_plan_panes(plan, batch)
    return ExecutionResult(
        plan=plan, results=results, stats=stats, engine="columnar-panes"
    )


@register_engine("columnar-panes-native")
def _execute_columnar_panes_native(
    plan: LogicalPlan, batch: EventBatch
) -> ExecutionResult:
    results, stats = execute_plan_panes(plan, batch, native=True)
    return ExecutionResult(
        plan=plan,
        results=results,
        stats=stats,
        engine="columnar-panes-native",
    )


@register_engine("streaming")
def _execute_streaming(plan: LogicalPlan, batch: EventBatch) -> ExecutionResult:
    executor = StreamingExecutor(plan, batch)
    results = executor.run()
    executor.stats.events = batch.num_events
    return ExecutionResult(
        plan=plan, results=results, stats=executor.stats, engine="streaming"
    )


@register_engine("streaming-chunked")
def _execute_streaming_chunked(
    plan: LogicalPlan,
    batch: EventBatch,
    chunk_ticks: "int | None" = None,
) -> ExecutionResult:
    executor = ChunkedStreamingExecutor(plan, batch, chunk_ticks=chunk_ticks)
    results = executor.run()
    return ExecutionResult(
        plan=plan,
        results=results,
        stats=executor.stats,
        engine="streaming-chunked",
    )


def results_equal(
    left: ExecutionResult,
    right: ExecutionResult,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> bool:
    """Compare two execution results window-by-window (NaN == NaN)."""
    if set(left.results) != set(right.results):
        return False
    for window, array in left.results.items():
        other = right.results[window]
        if array.shape != other.shape:
            return False
        if not np.allclose(array, other, rtol=rtol, atol=atol, equal_nan=True):
            return False
    return True
