"""Columnar event batches — the engines' input representation.

An :class:`EventBatch` is a finite, timestamp-sorted slice of a stream
held as NumPy columns (timestamp, key, value).  Keys are dense integer
ids (``0 .. num_keys-1``); :func:`encode_keys` remaps arbitrary key
values.  ``horizon`` marks the end of observed time: only window
instances that close at or before the horizon are emitted, so all plans
agree on which instances exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ExecutionError


@dataclass(frozen=True)
class EventBatch:
    """A finite, sorted, columnar batch of stream events."""

    timestamps: np.ndarray
    keys: np.ndarray
    values: np.ndarray
    horizon: int
    num_keys: int

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        if len(self.keys) != n or len(self.values) != n:
            raise ExecutionError("event columns must have equal length")
        if n:
            if self.timestamps[0] < 0:
                raise ExecutionError("timestamps must be non-negative")
            if np.any(np.diff(self.timestamps) < 0):
                raise ExecutionError("timestamps must be sorted ascending")
            if int(self.timestamps[-1]) >= self.horizon:
                raise ExecutionError(
                    "horizon must exceed the last event timestamp"
                )
            if self.keys.min() < 0 or self.keys.max() >= self.num_keys:
                raise ExecutionError("keys must be dense ids in [0, num_keys)")
        if self.num_keys < 1:
            raise ExecutionError("num_keys must be >= 1")

    @property
    def num_events(self) -> int:
        return len(self.timestamps)

    def __len__(self) -> int:
        return self.num_events

    def rows(self) -> Iterable[tuple[int, int, float]]:
        """Iterate events as ``(timestamp, key, value)`` rows."""
        for i in range(self.num_events):
            yield (
                int(self.timestamps[i]),
                int(self.keys[i]),
                float(self.values[i]),
            )

    def iter_time_chunks(
        self, chunk_ticks: int
    ) -> Iterable[tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]:
        """Iterate ``(start, end, timestamps, keys, values)`` chunks.

        Chunks tile ``[0, horizon)`` in ``chunk_ticks``-wide blocks (the
        last one is clipped to the horizon).  Column slices are views,
        not copies — this is the input iterator of the chunked streaming
        executor, which advances its watermark one block at a time.
        """
        if chunk_ticks < 1:
            raise ExecutionError(
                f"chunk_ticks must be >= 1, got {chunk_ticks}"
            )
        lo = 0
        for start in range(0, self.horizon, chunk_ticks):
            end = min(start + chunk_ticks, self.horizon)
            hi = int(np.searchsorted(self.timestamps, end, side="left"))
            yield (
                start,
                end,
                self.timestamps[lo:hi],
                self.keys[lo:hi],
                self.values[lo:hi],
            )
            lo = hi

    def slice_time(self, start: int, end: int) -> "EventBatch":
        """Events with ``start <= ts < end`` as a new batch."""
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="left"))
        return EventBatch(
            timestamps=self.timestamps[lo:hi],
            keys=self.keys[lo:hi],
            values=self.values[lo:hi],
            horizon=min(self.horizon, end),
            num_keys=self.num_keys,
        )


def make_batch(
    timestamps: Sequence[int],
    values: Sequence[float],
    keys: "Sequence[int] | None" = None,
    horizon: "int | None" = None,
    num_keys: "int | None" = None,
) -> EventBatch:
    """Build an :class:`EventBatch` from Python sequences (sorting if
    needed)."""
    ts = np.asarray(timestamps, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    if keys is None:
        key_arr = np.zeros(len(ts), dtype=np.int64)
    else:
        key_arr = np.asarray(keys, dtype=np.int64)
    if len(ts) and np.any(np.diff(ts) < 0):
        order = np.argsort(ts, kind="stable")
        ts, vals, key_arr = ts[order], vals[order], key_arr[order]
    if num_keys is None:
        num_keys = int(key_arr.max()) + 1 if len(key_arr) else 1
    if horizon is None:
        horizon = int(ts[-1]) + 1 if len(ts) else 1
    return EventBatch(
        timestamps=ts,
        keys=key_arr,
        values=vals,
        horizon=horizon,
        num_keys=num_keys,
    )


def encode_keys(raw_keys: Sequence) -> tuple[np.ndarray, dict]:
    """Remap arbitrary key values to dense ids.

    Returns ``(ids, mapping)`` where ``mapping`` goes original → id,
    assigned in order of first appearance.
    """
    mapping: dict = {}
    ids = np.empty(len(raw_keys), dtype=np.int64)
    for i, key in enumerate(raw_keys):
        if key not in mapping:
            mapping[key] = len(mapping)
        ids[i] = mapping[key]
    return ids, mapping
