"""Columnar event batches — the engines' input representation.

An :class:`EventBatch` is a finite, timestamp-sorted slice of a stream
held as NumPy columns (timestamp, key, value).  Keys are dense integer
ids (``0 .. num_keys-1``); :func:`encode_keys` remaps arbitrary key
values.  ``horizon`` marks the end of observed time: only window
instances that close at or before the horizon are emitted, so all plans
agree on which instances exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ExecutionError

#: The stream event schema, column by column — the single source of
#: truth every data plane lays events out from: `EventBatch` columns,
#: the per-shard slices of :meth:`KeyPartitioner.split_arrays`, and the
#: shared-memory ring slots of :mod:`repro.runtime.shm_ring` (which
#: sizes its fixed-capacity slots as ``slot_events * EVENT_BYTES``).
EVENT_COLUMN_DTYPES = (
    ("timestamp", np.dtype(np.int64)),
    ("key", np.dtype(np.int64)),
    ("value", np.dtype(np.float64)),
)

#: Bytes one event occupies across all columns.
EVENT_BYTES = sum(dtype.itemsize for _, dtype in EVENT_COLUMN_DTYPES)


@dataclass(frozen=True)
class EventBatch:
    """A finite, sorted, columnar batch of stream events."""

    timestamps: np.ndarray
    keys: np.ndarray
    values: np.ndarray
    horizon: int
    num_keys: int

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        if len(self.keys) != n or len(self.values) != n:
            raise ExecutionError("event columns must have equal length")
        if n:
            if self.timestamps[0] < 0:
                raise ExecutionError("timestamps must be non-negative")
            if np.any(np.diff(self.timestamps) < 0):
                raise ExecutionError("timestamps must be sorted ascending")
            if int(self.timestamps[-1]) >= self.horizon:
                raise ExecutionError(
                    "horizon must exceed the last event timestamp"
                )
            if self.keys.min() < 0 or self.keys.max() >= self.num_keys:
                raise ExecutionError("keys must be dense ids in [0, num_keys)")
        if self.num_keys < 1:
            raise ExecutionError("num_keys must be >= 1")

    @property
    def num_events(self) -> int:
        return len(self.timestamps)

    def __len__(self) -> int:
        return self.num_events

    def rows(self) -> Iterable[tuple[int, int, float]]:
        """Iterate events as ``(timestamp, key, value)`` rows."""
        for i in range(self.num_events):
            yield (
                int(self.timestamps[i]),
                int(self.keys[i]),
                float(self.values[i]),
            )

    def iter_time_chunks(
        self, chunk_ticks: int
    ) -> Iterable[tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]:
        """Iterate ``(start, end, timestamps, keys, values)`` chunks.

        Chunks tile ``[0, horizon)`` in ``chunk_ticks``-wide blocks (the
        last one is clipped to the horizon).  Column slices are views,
        not copies — this is the input iterator of the chunked streaming
        executor, which advances its watermark one block at a time.
        """
        if chunk_ticks < 1:
            raise ExecutionError(
                f"chunk_ticks must be >= 1, got {chunk_ticks}"
            )
        lo = 0
        for start in range(0, self.horizon, chunk_ticks):
            end = min(start + chunk_ticks, self.horizon)
            hi = int(np.searchsorted(self.timestamps, end, side="left"))
            yield (
                start,
                end,
                self.timestamps[lo:hi],
                self.keys[lo:hi],
                self.values[lo:hi],
            )
            lo = hi

    def slice_time(self, start: int, end: int) -> "EventBatch":
        """Events with ``start <= ts < end`` as a new batch."""
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="left"))
        return EventBatch(
            timestamps=self.timestamps[lo:hi],
            keys=self.keys[lo:hi],
            values=self.values[lo:hi],
            horizon=min(self.horizon, end),
            num_keys=self.num_keys,
        )


def make_batch(
    timestamps: Sequence[int],
    values: Sequence[float],
    keys: "Sequence[int] | None" = None,
    horizon: "int | None" = None,
    num_keys: "int | None" = None,
) -> EventBatch:
    """Build an :class:`EventBatch` from Python sequences (sorting if
    needed)."""
    ts = np.asarray(timestamps, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    if keys is None:
        key_arr = np.zeros(len(ts), dtype=np.int64)
    else:
        key_arr = np.asarray(keys, dtype=np.int64)
    if len(ts) and np.any(np.diff(ts) < 0):
        order = np.argsort(ts, kind="stable")
        ts, vals, key_arr = ts[order], vals[order], key_arr[order]
    if num_keys is None:
        num_keys = int(key_arr.max()) + 1 if len(key_arr) else 1
    if horizon is None:
        horizon = int(ts[-1]) + 1 if len(ts) else 1
    return EventBatch(
        timestamps=ts,
        keys=key_arr,
        values=vals,
        horizon=horizon,
        num_keys=num_keys,
    )


def encode_keys(raw_keys: Sequence) -> tuple[np.ndarray, dict]:
    """Remap arbitrary key values to dense ids.

    Returns ``(ids, mapping)`` where ``mapping`` goes original → id,
    assigned in order of first appearance.
    """
    mapping: dict = {}
    ids = np.empty(len(raw_keys), dtype=np.int64)
    for i, key in enumerate(raw_keys):
        if key not in mapping:
            mapping[key] = len(mapping)
        ids[i] = mapping[key]
    return ids, mapping


# ----------------------------------------------------------------------
# Key-sharded partitioning (DESIGN.md §7, §12)
# ----------------------------------------------------------------------
#: Fibonacci-hashing multiplier (2^64 / φ): consecutive dense key ids
#: spread low-discrepancy across slots, so round-robin slots stay
#: balanced at any shard count.
_FIB_MIX = np.uint64(0x9E3779B97F4A7C15)

#: Size of the virtual-slot pool keys hash into.  A shard owns a set of
#: slots, not a set of keys — migrating load relabels slots in the
#: slot → shard map instead of rehashing the key space (DESIGN.md §12).
DEFAULT_NUM_SLOTS = 256


def key_slots(
    num_keys: int, num_slots: int = DEFAULT_NUM_SLOTS
) -> np.ndarray:
    """Deterministic key → virtual-slot map for a dense id space.

    Returns an ``(num_keys,)`` int64 array with entries in
    ``[0, num_slots)``.  The map is a pure function of its arguments —
    every participant (coordinator, workers, tests) derives the same
    hash without communicating — and never changes during a session:
    elasticity lives entirely in the slot → shard map.
    """
    if num_keys < 1:
        raise ExecutionError(f"num_keys must be >= 1, got {num_keys}")
    if num_slots < 1:
        raise ExecutionError(f"num_slots must be >= 1, got {num_slots}")
    keys = np.arange(num_keys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        hashed = (keys * _FIB_MIX) >> np.uint64(32)
    return (hashed % np.uint64(num_slots)).astype(np.int64)


def default_slot_map(
    num_slots: int, num_shards: int
) -> np.ndarray:
    """Round-robin slot → shard map: slot ``s`` starts on shard
    ``s % num_shards``.  Composed with :func:`key_slots` this is the
    layout every fresh :class:`KeyPartitioner` boots with."""
    if num_slots < 1:
        raise ExecutionError(f"num_slots must be >= 1, got {num_slots}")
    if num_shards < 1:
        raise ExecutionError(f"num_shards must be >= 1, got {num_shards}")
    return (np.arange(num_slots, dtype=np.int64) % num_shards)


def shard_assignment(
    num_keys: int,
    num_shards: int,
    num_slots: int = DEFAULT_NUM_SLOTS,
) -> np.ndarray:
    """Deterministic key → shard map for a dense id space.

    Returns an ``(num_keys,)`` int64 array with entries in
    ``[0, num_shards)``: the composition of :func:`key_slots` with the
    :func:`default_slot_map` — i.e. the slot layout before any
    migration has relabelled a slot.
    """
    return default_slot_map(num_slots, num_shards)[
        key_slots(num_keys, num_slots)
    ]


@dataclass(frozen=True)
class BatchShard:
    """One shard's slice of a partitioned :class:`EventBatch`.

    ``batch`` re-encodes keys into the shard's *local* dense id space
    (``0 .. len(global_keys) - 1``, ascending global order); shards that
    own no keys carry an empty batch with one dummy local key.
    ``indices`` are the events' positions in the source batch, so
    :func:`merge_batch_shards` can reassemble the original bit-exactly
    (including arrival order among equal timestamps).
    """

    shard: int
    batch: EventBatch
    global_keys: np.ndarray  # (local_num_keys,) local id -> global id
    indices: np.ndarray  # (num_events,) positions in the source batch


class KeyPartitioner:
    """Vectorized key-space partitioner shared by all sharding layers.

    Keys hash once into a fixed pool of virtual slots
    (:func:`key_slots`); a mutable slot → shard map assigns slots to
    shards.  The partitioner precomputes the composed key → shard map,
    each shard's owned-key list, and the global → local dense
    re-encoding.  Partitioning preserves the batch invariants: column
    slices stay timestamp-sorted (stable mask selection), the horizon
    is inherited unchanged, and local key ids are dense.

    Elasticity: :meth:`with_slot_map` derives a sibling partitioner for
    a relabelled slot map (a migration / split / merge) without
    rehashing keys — the key → slot hash is immutable for the life of
    the stream.  A legacy explicit ``assignment`` (key → shard) is
    still accepted for tests; such a partitioner carries no slot
    structure and cannot migrate.
    """

    def __init__(
        self,
        num_keys: int,
        num_shards: int,
        assignment: "np.ndarray | None" = None,
        slot_map: "np.ndarray | None" = None,
        num_slots: int = DEFAULT_NUM_SLOTS,
    ):
        if assignment is not None and slot_map is not None:
            raise ExecutionError(
                "pass either assignment (key → shard) or slot_map "
                "(slot → shard), not both"
            )
        if assignment is None:
            if slot_map is None:
                slot_map = default_slot_map(num_slots, num_shards)
            slot_map = np.asarray(slot_map, dtype=np.int64)
            if slot_map.ndim != 1 or slot_map.size < 1:
                raise ExecutionError("slot_map must be a 1-d array")
            if slot_map.min() < 0 or slot_map.max() >= num_shards:
                raise ExecutionError(
                    f"slot_map entries must lie in [0, {num_shards})"
                )
            self.num_slots = int(slot_map.size)
            self.slot_map = slot_map
            self.slot_of_key = key_slots(num_keys, self.num_slots)
            assignment = slot_map[self.slot_of_key]
        else:
            assignment = np.asarray(assignment, dtype=np.int64)
            if assignment.shape != (num_keys,):
                raise ExecutionError(
                    f"assignment must have shape ({num_keys},), "
                    f"got {assignment.shape}"
                )
            if num_keys and (
                assignment.min() < 0 or assignment.max() >= num_shards
            ):
                raise ExecutionError(
                    f"assignment entries must lie in [0, {num_shards})"
                )
            self.num_slots = 0
            self.slot_map = None
            self.slot_of_key = None
        self.num_keys = num_keys
        self.num_shards = num_shards
        self.shard_of = assignment
        self.owned = [
            np.flatnonzero(assignment == shard) for shard in range(num_shards)
        ]
        # Global key -> local dense id within its owning shard.
        self.local_id = np.empty(num_keys, dtype=np.int64)
        for owned in self.owned:
            self.local_id[owned] = np.arange(owned.size, dtype=np.int64)

    def local_num_keys(self, shard: int) -> int:
        """Local dense-id space size (>= 1 even for empty shards)."""
        return max(1, int(self.owned[shard].size))

    def keys_in_slots(self, slots: "Sequence[int]") -> np.ndarray:
        """Global key ids hashing into any of ``slots`` (ascending)."""
        if self.slot_of_key is None:
            raise ExecutionError(
                "partitioner built from an explicit assignment has no "
                "slot structure"
            )
        return np.flatnonzero(
            np.isin(self.slot_of_key, np.asarray(slots, dtype=np.int64))
        )

    def with_slot_map(
        self, slot_map: np.ndarray, num_shards: "int | None" = None
    ) -> "KeyPartitioner":
        """Sibling partitioner for a relabelled slot map (same keys,
        same key → slot hash).  ``num_shards`` may grow or shrink for
        splits/merges."""
        if self.slot_of_key is None:
            raise ExecutionError(
                "partitioner built from an explicit assignment has no "
                "slot structure"
            )
        return KeyPartitioner(
            self.num_keys,
            self.num_shards if num_shards is None else num_shards,
            slot_map=np.asarray(slot_map, dtype=np.int64),
        )

    def split_arrays(
        self, ts: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
        """Split sorted columns into per-shard ``(ts, local_keys,
        values, indices)`` slices (the live session's hot path)."""
        shards = self.shard_of[keys]
        local = self.local_id[keys]
        out = []
        for shard in range(self.num_shards):
            mask = shards == shard
            idx = np.flatnonzero(mask)
            out.append((ts[idx], local[idx], values[idx], idx))
        return out

    def partition(self, batch: EventBatch) -> "list[BatchShard]":
        """Partition ``batch`` into one :class:`BatchShard` per shard."""
        if batch.num_keys != self.num_keys:
            raise ExecutionError(
                f"batch has {batch.num_keys} keys, partitioner expects "
                f"{self.num_keys}"
            )
        out = []
        for shard, (ts, local, values, idx) in enumerate(
            self.split_arrays(batch.timestamps, batch.keys, batch.values)
        ):
            out.append(
                BatchShard(
                    shard=shard,
                    batch=EventBatch(
                        timestamps=ts,
                        keys=local,
                        values=values,
                        horizon=batch.horizon,
                        num_keys=self.local_num_keys(shard),
                    ),
                    global_keys=self.owned[shard],
                    indices=idx,
                )
            )
        return out


def partition_batch(
    batch: EventBatch,
    num_shards: int,
    assignment: "np.ndarray | None" = None,
) -> "list[BatchShard]":
    """Hash-partition ``batch`` by key into ``num_shards`` slices.

    Each slice is timestamp-sorted with the parent's horizon and a
    local dense key space — a valid :class:`EventBatch` any engine or
    session core can consume directly.  The union of slices is exactly
    the input: :func:`merge_batch_shards` reassembles it bit-for-bit.
    """
    return KeyPartitioner(
        batch.num_keys, num_shards, assignment=assignment
    ).partition(batch)


def merge_batch_shards(
    shards: Sequence[BatchShard],
    num_keys: "int | None" = None,
    horizon: "int | None" = None,
) -> EventBatch:
    """Inverse of :func:`partition_batch`: scatter shard slices back to
    source positions, restoring the original batch exactly."""
    if not shards:
        raise ExecutionError("cannot merge zero shards")
    total = sum(s.batch.num_events for s in shards)
    ts = np.empty(total, dtype=np.int64)
    keys = np.empty(total, dtype=np.int64)
    values = np.empty(total, dtype=np.float64)
    for shard in shards:
        if shard.batch.num_events == 0:
            continue
        ts[shard.indices] = shard.batch.timestamps
        keys[shard.indices] = shard.global_keys[shard.batch.keys]
        values[shard.indices] = shard.batch.values
    if num_keys is None:
        num_keys = max(
            (int(s.global_keys.max()) + 1 for s in shards if s.global_keys.size),
            default=1,
        )
    if horizon is None:
        horizon = max(s.batch.horizon for s in shards)
    return EventBatch(
        timestamps=ts,
        keys=keys,
        values=values,
        horizon=horizon,
        num_keys=num_keys,
    )
