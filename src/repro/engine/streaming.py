"""The row-at-a-time streaming engine (reference semantics).

A deliberately simple, stateful, event-at-a-time interpreter of logical
plans.  It exists to demonstrate — and let tests verify — that the
rewritten plans are *streaming-executable*: operators keep bounded
state (only open window instances), emit each instance's partial the
moment the watermark passes its end, and downstream windows consume
those partials incrementally, exactly like the paper's Trill plans.

The columnar engine is the fast path; this engine is the semantic
oracle.  Both must produce identical results and identical processed-
pair counts (DESIGN.md invariants 5 and 6).
"""

from __future__ import annotations

import time

import numpy as np

from ..aggregates.base import AggregateFunction
from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan, WindowAggregateNode
from ..windows.coverage import covering_multiplier
from ..windows.window import Window
from .columnar import num_complete_instances
from .events import EventBatch
from .stats import ExecutionStats


class _StreamingWindowOperator:
    """Shared machinery: open-instance state and watermark-driven close."""

    def __init__(
        self,
        window: Window,
        aggregate: AggregateFunction,
        num_keys: int,
        num_instances: int,
        stats: ExecutionStats,
    ):
        self.window = window
        self.aggregate = aggregate
        self.num_keys = num_keys
        self.num_instances = num_instances
        self.stats = stats
        self.consumers: list[_SubAggWindowOperator] = []
        self.results: "np.ndarray | None" = None
        self._partials: dict[tuple[int, int], tuple] = {}
        self._next_close = 0

    def expose_results(self) -> None:
        """Allocate the finalized-result sink (user windows only)."""
        self.results = np.full(
            (self.num_keys, self.num_instances), np.nan, dtype=np.float64
        )

    def advance(self, watermark: int) -> None:
        """Close every instance whose interval ends at or before
        ``watermark`` and hand its partial downstream."""
        window = self.window
        while (
            self._next_close < self.num_instances
            and window.interval(self._next_close)[1] <= watermark
        ):
            self._close(self._next_close)
            self._next_close += 1

    def _close(self, instance: int) -> None:
        identity = self.aggregate.identity_components
        for key in range(self.num_keys):
            partial = self._partials.pop((key, instance), identity)
            if self.results is not None:
                self.results[key, instance] = float(
                    self.aggregate.finalize(partial)
                )
            for consumer in self.consumers:
                consumer.accept_partial(instance, key, partial)

    def _merge_into(self, key: int, instance: int, partial: tuple) -> None:
        slot = (key, instance)
        current = self._partials.get(slot)
        if current is None:
            self._partials[slot] = partial
        else:
            self._partials[slot] = self.aggregate.combine(current, partial)

    @property
    def open_instances(self) -> int:
        """Number of instances currently holding state (boundedness
        check for tests)."""
        return len({instance for (_, instance) in self._partials})


class _RawWindowOperator(_StreamingWindowOperator):
    """Aggregates raw events; one pair touch per covering instance."""

    def on_event(self, ts: int, key: int, value: float) -> None:
        lifted = self.aggregate.lift(value)
        for instance in self.window.instances_covering(ts):
            if instance >= self.num_instances:
                continue
            self.stats.record_pairs(self.window, 1)
            self._merge_into(key, instance, lifted)


class _HolisticWindowOperator(_StreamingWindowOperator):
    """Buffers raw values and evaluates the holistic aggregate at close."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._buffers: dict[tuple[int, int], list[float]] = {}

    def on_event(self, ts: int, key: int, value: float) -> None:
        for instance in self.window.instances_covering(ts):
            if instance >= self.num_instances:
                continue
            self.stats.record_pairs(self.window, 1)
            self._buffers.setdefault((key, instance), []).append(value)

    def _close(self, instance: int) -> None:
        for key in range(self.num_keys):
            values = self._buffers.pop((key, instance), [])
            if self.results is not None:
                self.results[key, instance] = self.aggregate.compute(values)
        if self.consumers:
            raise ExecutionError(
                f"holistic {self.aggregate.name} cannot feed downstream windows"
            )


class _SubAggWindowOperator(_StreamingWindowOperator):
    """Aggregates a provider's emitted partials (covering-set routing)."""

    def __init__(self, provider: Window, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.provider = provider
        self.multiplier = covering_multiplier(self.window, provider)

    def accept_partial(self, provider_instance: int, key: int, partial) -> None:
        """Route one provider partial to every consumer instance whose
        covering set contains it (Definition 2 inverted)."""
        start = provider_instance * self.provider.slide
        s1 = self.window.slide
        s2 = self.provider.slide
        for j in range(self.multiplier):
            anchor = start - j * s2
            if anchor < 0:
                break
            if anchor % s1 != 0:
                continue
            instance = anchor // s1
            if instance >= self.num_instances:
                continue
            self.stats.record_pairs(self.window, 1)
            self._merge_into(key, instance, partial)


class StreamingExecutor:
    """Executes a logical plan one event at a time.

    Build once per (plan, batch); ``run`` returns finalized result
    arrays per user window, shaped like the columnar engine's output.
    """

    def __init__(self, plan: LogicalPlan, batch: EventBatch):
        self.plan = plan
        self.batch = batch
        self.stats = ExecutionStats()
        self._operators: dict[Window, _StreamingWindowOperator] = {}
        self._raw_ops: list[_StreamingWindowOperator] = []
        self._topo: list[_StreamingWindowOperator] = []
        self._build()

    def _build(self) -> None:
        batch = self.batch
        for node in self.plan.topological_window_order():
            num_instances = num_complete_instances(node.window, batch.horizon)
            args = (
                node.window,
                node.aggregate,
                batch.num_keys,
                num_instances,
                self.stats,
            )
            operator: _StreamingWindowOperator
            if node.provider is None:
                if node.aggregate.mergeable:
                    operator = _RawWindowOperator(*args)
                else:
                    operator = _HolisticWindowOperator(*args)
                self._raw_ops.append(operator)
            else:
                provider_op = self._operators.get(node.provider)
                if provider_op is None:
                    raise ExecutionError(
                        f"provider {node.provider} not built before "
                        f"{node.window}"
                    )
                operator = _SubAggWindowOperator(node.provider, *args)
                provider_op.consumers.append(operator)
            if not node.is_factor:
                operator.expose_results()
            self._operators[node.window] = operator
            self._topo.append(operator)

    def run(self) -> "dict[Window, np.ndarray]":
        """Process the whole batch and return per-user-window results."""
        started = time.perf_counter()
        for ts, key, value in self.batch.rows():
            # Providers close (and propagate) before consumers observe
            # the new watermark: topological order guarantees it.
            for operator in self._topo:
                operator.advance(ts)
            for operator in self._raw_ops:
                operator.on_event(ts, key, value)
        for operator in self._topo:
            operator.advance(self.batch.horizon)
        self.stats.events = self.batch.num_events
        self.stats.wall_seconds = time.perf_counter() - started
        return {
            node.window: self._operators[node.window].results
            for node in self.plan.user_window_nodes()
        }

    def max_open_instances(self) -> int:
        """Largest per-operator open-instance count (state boundedness)."""
        return max(op.open_instances for op in self._topo)
