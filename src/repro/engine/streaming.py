"""The streaming engines: row-at-a-time (reference) and chunked.

:class:`StreamingExecutor` is a deliberately simple, stateful,
event-at-a-time interpreter of logical plans.  It exists to demonstrate
— and let tests verify — that the rewritten plans are
*streaming-executable*: operators keep bounded state (only open window
instances), emit each instance's partial the moment the watermark
passes its end, and downstream windows consume those partials
incrementally, exactly like the paper's Trill plans.

:class:`ChunkedStreamingExecutor` keeps those streaming semantics —
watermark-driven closes, bounded open state, partials flowing
provider → consumer — but advances the watermark in timestamp *blocks*
and applies the vectorized pane reduction of
:mod:`~repro.engine.panes` to each block, replacing the per-event
Python dispatch with NumPy kernels.  Its state per raw operator is a
rolling per-(key, pane) buffer covering only the open instances plus
the current block.

The columnar engine is the fast path; the row-at-a-time engine is the
semantic oracle.  All engines must produce identical results and
identical *logical* processed-pair counts (DESIGN.md invariants 5
and 6).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..aggregates.base import AggregateFunction
from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan, WindowAggregateNode
from ..windows.coverage import covering_multiplier
from ..windows.window import Window
from .columnar import holistic_segment_values, num_complete_instances
from .events import EventBatch
from .panes import logical_raw_pairs, pane_width
from .stats import ExecutionStats

#: Live emission callback: ``(window, m0, m1, finalized_block)`` where
#: the block is a fresh ``(num_keys, m1 - m0)`` float array.
EmitSink = Callable[[Window, int, int, np.ndarray], None]

#: Pre-finalize emission callback: ``(window, m0, m1, components)``
#: where each component is a ``(num_keys, m1 - m0)`` float array.  This
#: is the partial-merge tap of the sharded runtime (DESIGN.md §7): a
#: shard reduces the components over its local keys and a coordinator
#: ``combine``s the per-shard partials before finalizing — the only
#: sound way to assemble a cross-key algebraic aggregate from shards.
#: Holistic operators have no partial form and never call it.
PartialSink = Callable[[Window, int, int, tuple], None]


def _pad_columns(buf: np.ndarray, width: int, ident: float) -> np.ndarray:
    """Extend ``buf`` to ``width`` columns with identity fill.

    Pane spans are data-dependent (a chunk of far-future events grows
    the buffer), so two lockstep cores can retain different widths for
    the same operator; identity columns are exactly what
    ``_ensure_panes`` would have materialized, so padding is free of
    observable effect.
    """
    missing = width - buf.shape[1]
    if missing <= 0:
        return buf
    pad = np.full((buf.shape[0], missing), ident, dtype=np.float64)
    return np.concatenate((buf, pad), axis=1)


def _splice_rows(
    buf: np.ndarray, rows: np.ndarray, positions: np.ndarray, num_keys: int
) -> np.ndarray:
    """Insert ``rows`` at ``positions`` of a ``num_keys``-row result.

    Surviving rows of ``buf`` keep their relative order; ``positions``
    are the destination-local ids of the incoming keys after the key
    renumbering a migration implies (local id = rank in the sorted
    owned-key set).
    """
    out = np.empty((num_keys, buf.shape[1]), dtype=buf.dtype)
    keep = np.setdiff1d(
        np.arange(num_keys, dtype=np.int64), positions, assume_unique=True
    )
    out[keep] = buf
    out[positions] = rows
    return out


class _StreamingWindowOperator:
    """Shared machinery: open-instance state and watermark-driven close."""

    def __init__(
        self,
        window: Window,
        aggregate: AggregateFunction,
        num_keys: int,
        num_instances: int,
        stats: ExecutionStats,
    ):
        self.window = window
        self.aggregate = aggregate
        self.num_keys = num_keys
        self.num_instances = num_instances
        self.stats = stats
        self.consumers: list[_SubAggWindowOperator] = []
        self.results: "np.ndarray | None" = None
        self._partials: dict[tuple[int, int], tuple] = {}
        self._next_close = 0

    def expose_results(self) -> None:
        """Allocate the finalized-result sink (user windows only)."""
        self.results = np.full(
            (self.num_keys, self.num_instances), np.nan, dtype=np.float64
        )

    def advance(self, watermark: int) -> None:
        """Close every instance whose interval ends at or before
        ``watermark`` and hand its partial downstream."""
        window = self.window
        while (
            self._next_close < self.num_instances
            and window.interval(self._next_close)[1] <= watermark
        ):
            self._close(self._next_close)
            self._next_close += 1

    def _close(self, instance: int) -> None:
        identity = self.aggregate.identity_components
        for key in range(self.num_keys):
            partial = self._partials.pop((key, instance), identity)
            if self.results is not None:
                self.results[key, instance] = float(
                    self.aggregate.finalize(partial)
                )
            for consumer in self.consumers:
                consumer.accept_partial(instance, key, partial)

    def _merge_into(self, key: int, instance: int, partial: tuple) -> None:
        slot = (key, instance)
        current = self._partials.get(slot)
        if current is None:
            self._partials[slot] = partial
        else:
            self._partials[slot] = self.aggregate.combine(current, partial)

    @property
    def open_instances(self) -> int:
        """Number of instances currently holding state (boundedness
        check for tests)."""
        return len({instance for (_, instance) in self._partials})


class _RawWindowOperator(_StreamingWindowOperator):
    """Aggregates raw events; one pair touch per covering instance."""

    def on_event(self, ts: int, key: int, value: float) -> None:
        lifted = self.aggregate.lift(value)
        for instance in self.window.instances_covering(ts):
            if instance >= self.num_instances:
                continue
            self.stats.record_pairs(self.window, 1)
            self._merge_into(key, instance, lifted)


class _HolisticWindowOperator(_StreamingWindowOperator):
    """Buffers raw values and evaluates the holistic aggregate at close."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._buffers: dict[tuple[int, int], list[float]] = {}

    def on_event(self, ts: int, key: int, value: float) -> None:
        for instance in self.window.instances_covering(ts):
            if instance >= self.num_instances:
                continue
            self.stats.record_pairs(self.window, 1)
            self._buffers.setdefault((key, instance), []).append(value)

    def _close(self, instance: int) -> None:
        for key in range(self.num_keys):
            values = self._buffers.pop((key, instance), [])
            if self.results is not None:
                self.results[key, instance] = self.aggregate.compute(values)
        if self.consumers:
            raise ExecutionError(
                f"holistic {self.aggregate.name} cannot feed downstream windows"
            )


class _SubAggWindowOperator(_StreamingWindowOperator):
    """Aggregates a provider's emitted partials (covering-set routing)."""

    def __init__(self, provider: Window, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.provider = provider
        self.multiplier = covering_multiplier(self.window, provider)

    def accept_partial(self, provider_instance: int, key: int, partial) -> None:
        """Route one provider partial to every consumer instance whose
        covering set contains it (Definition 2 inverted)."""
        start = provider_instance * self.provider.slide
        s1 = self.window.slide
        s2 = self.provider.slide
        for j in range(self.multiplier):
            anchor = start - j * s2
            if anchor < 0:
                break
            if anchor % s1 != 0:
                continue
            instance = anchor // s1
            if instance >= self.num_instances:
                continue
            self.stats.record_pairs(self.window, 1)
            self._merge_into(key, instance, partial)


class StreamingExecutor:
    """Executes a logical plan one event at a time.

    Build once per (plan, batch); ``run`` returns finalized result
    arrays per user window, shaped like the columnar engine's output.
    """

    def __init__(self, plan: LogicalPlan, batch: EventBatch):
        self.plan = plan
        self.batch = batch
        self.stats = ExecutionStats()
        self._operators: dict[Window, _StreamingWindowOperator] = {}
        self._raw_ops: list[_StreamingWindowOperator] = []
        self._topo: list[_StreamingWindowOperator] = []
        self._build()

    def _build(self) -> None:
        batch = self.batch
        for node in self.plan.topological_window_order():
            num_instances = num_complete_instances(node.window, batch.horizon)
            args = (
                node.window,
                node.aggregate,
                batch.num_keys,
                num_instances,
                self.stats,
            )
            operator: _StreamingWindowOperator
            if node.provider is None:
                if node.aggregate.mergeable:
                    operator = _RawWindowOperator(*args)
                else:
                    operator = _HolisticWindowOperator(*args)
                self._raw_ops.append(operator)
            else:
                provider_op = self._operators.get(node.provider)
                if provider_op is None:
                    raise ExecutionError(
                        f"provider {node.provider} not built before "
                        f"{node.window}"
                    )
                operator = _SubAggWindowOperator(node.provider, *args)
                provider_op.consumers.append(operator)
            if not node.is_factor:
                operator.expose_results()
            self._operators[node.window] = operator
            self._topo.append(operator)

    def run(self) -> "dict[Window, np.ndarray]":
        """Process the whole batch and return per-user-window results."""
        started = time.perf_counter()
        for ts, key, value in self.batch.rows():
            # Providers close (and propagate) before consumers observe
            # the new watermark: topological order guarantees it.
            for operator in self._topo:
                operator.advance(ts)
            for operator in self._raw_ops:
                operator.on_event(ts, key, value)
        for operator in self._topo:
            operator.advance(self.batch.horizon)
        self.stats.events = self.batch.num_events
        self.stats.wall_seconds = time.perf_counter() - started
        return {
            node.window: self._operators[node.window].results
            for node in self.plan.user_window_nodes()
        }

    def max_open_instances(self) -> int:
        """Largest per-operator open-instance count (state boundedness)."""
        return max(op.open_instances for op in self._topo)


# ----------------------------------------------------------------------
# Chunked streaming: vectorized blocks, streaming semantics
# ----------------------------------------------------------------------
class _ChunkedOperator:
    """Shared chunked machinery: contiguous closes, block emission.

    Beyond the finite-batch mode the :class:`ChunkedStreamingExecutor`
    uses, operators support the live-session protocol (DESIGN.md §6):

    * ``num_instances=None`` runs unbounded — instances close purely by
      watermark, forever;
    * ``start_instance`` makes the operator own only instances at or
      after an aligned start (operators activated mid-stream never
      close — or emit — instances whose inputs predate activation);
    * ``sink`` receives every finalized block ``(window, m0, m1,
      values)`` so a session can route results to subscriptions instead
      of a preallocated array;
    * :meth:`handoff` / :meth:`adopt` transplant buffered state between
      plan generations when a plan switch keeps an operator's
      ``(window, aggregate, provider)`` shape;
    * :meth:`cap_instances` turns an operator into a *draining* one
      that finishes its already-open instances and then retires,
      handing all later instances to its replacement.
    """

    def __init__(
        self,
        window: Window,
        aggregate: AggregateFunction,
        num_keys: int,
        num_instances: "int | None",
        stats: ExecutionStats,
        *,
        start_instance: int = 0,
        sink: "EmitSink | None" = None,
        partial_sink: "PartialSink | None" = None,
    ):
        self.window = window
        self.aggregate = aggregate
        self.num_keys = num_keys
        self.num_instances = num_instances
        self.stats = stats
        self.start_instance = start_instance
        self.sink = sink
        self.partial_sink = partial_sink
        self.consumers: "list[_ChunkedSubAggOperator]" = []
        self.results: "np.ndarray | None" = None
        self.next_close = start_instance
        self.max_retained = 0

    def expose_results(self) -> None:
        if self.num_instances is None:
            raise ExecutionError(
                "unbounded operators emit through a sink, not a result array"
            )
        self.results = np.full(
            (self.num_keys, self.num_instances), np.nan, dtype=np.float64
        )

    def _close_bound(self, watermark: int) -> int:
        """Largest exclusive instance index closed at ``watermark``."""
        if watermark < self.window.range:
            return self.next_close
        closed = (watermark - self.window.range) // self.window.slide + 1
        if self.num_instances is not None:
            closed = min(self.num_instances, closed)
        return max(self.next_close, closed)

    def advance(self, watermark: int) -> None:
        m1 = self._close_bound(watermark)
        if m1 > self.next_close:
            self._close_range(self.next_close, m1)
            self.next_close = m1

    def _close_range(self, m0: int, m1: int) -> None:
        raise NotImplementedError

    def _emit(self, m0: int, m1: int, components: tuple) -> None:
        """Finalize a closed block into results and feed consumers."""
        if self.partial_sink is not None:
            self.partial_sink(self.window, m0, m1, components)
        if self.results is not None or self.sink is not None:
            block = np.asarray(
                self.aggregate.finalize(components), dtype=np.float64
            )
            if self.results is not None:
                self.results[:, m0:m1] = block
            if self.sink is not None:
                self.sink(self.window, m0, m1, block)
        for consumer in self.consumers:
            consumer.accept_block(m0, m1, components)

    def _note_retained(self, units: int) -> None:
        if units > self.max_retained:
            self.max_retained = units

    @property
    def retained_state(self) -> int:
        """Current buffered state units (panes / partials / events)."""
        return 0

    # ------------------------------------------------------------------
    # Live-session protocol: draining caps and state handoff
    # ------------------------------------------------------------------
    def cap_instances(self, bound: int) -> None:
        """Stop owning instances at or beyond ``bound`` (drain mode)."""
        bound = max(bound, self.next_close)
        if self.num_instances is None or bound < self.num_instances:
            self.num_instances = bound

    @property
    def drained(self) -> bool:
        """True once every owned instance has closed (safe to retire)."""
        return (
            self.num_instances is not None
            and self.next_close >= self.num_instances
        )

    @property
    def handoff_key(self) -> tuple:
        """Operators with equal keys hold transplant-compatible state."""
        provider = getattr(self, "provider", None)
        return (
            type(self).__name__,
            self.window,
            self.aggregate.name,
            provider,
            self.num_keys,
        )

    def handoff(self) -> dict:
        """Export transplantable state (buffers move, not copy)."""
        return {
            "key": self.handoff_key,
            "next_close": self.next_close,
            "start_instance": self.start_instance,
            "max_retained": self.max_retained,
        }

    def adopt(self, state: dict) -> None:
        """Adopt a predecessor's exported state (same ``handoff_key``)."""
        if state["key"] != self.handoff_key:
            raise ExecutionError(
                f"cannot adopt state across incompatible operators: "
                f"{state['key']} -> {self.handoff_key}"
            )
        self.next_close = state["next_close"]
        self.start_instance = state["start_instance"]
        self.max_retained = state["max_retained"]

    # ------------------------------------------------------------------
    # Elastic-shard protocol: per-key state transplant (DESIGN.md §12)
    # ------------------------------------------------------------------
    @property
    def transplant_key(self) -> tuple:
        """Cross-core identity checked when migrating keys at a barrier.

        Unlike :attr:`handoff_key` it excludes ``num_keys`` (source and
        destination cores own different key counts by construction) and
        includes the close cursor: at a watermark barrier every lockstep
        core has driven the same mutation/watermark history, so two
        cores' instances of the same operator must agree on all of
        these or the migration would splice misaligned state.
        """
        provider = getattr(self, "provider", None)
        return (
            type(self).__name__,
            self.window,
            self.aggregate.name,
            provider,
            self.start_instance,
            self.next_close,
            self.num_instances,
        )

    def extract_keys(self, local_ids: np.ndarray) -> dict:
        """Slice out (and remove) the rows of ``local_ids`` (sorted).

        Only valid at a watermark barrier with no buffered chunk in
        flight, so the operator buffers are exactly the per-key state.
        Remaining keys renumber down to close the gap (local id = rank
        in the sorted owned set).
        """
        self.num_keys -= int(local_ids.size)
        return {"key": self.transplant_key}

    def absorb_keys(
        self, state: dict, positions: np.ndarray, num_keys: int
    ) -> None:
        """Splice an extracted bundle in at ``positions`` of the new
        ``num_keys``-row local key space."""
        if state["key"] != self.transplant_key:
            raise ExecutionError(
                f"cannot absorb keys across incompatible operators: "
                f"{state['key']} -> {self.transplant_key}"
            )
        self.num_keys = num_keys


class _ChunkedRawOperator(_ChunkedOperator):
    """Raw mergeable reads via a rolling per-(key, pane) buffer.

    Each chunk is binned once (O(chunk events)); instances close with a
    gather+reduce over their ``r/p`` panes.  Only panes at or after the
    next open instance's start are retained.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pane = pane_width(self.window)
        self.stride = self.window.slide // self.pane
        self.per_instance = self.window.range // self.pane
        self.pane_offset = self.start_instance * self.stride
        self._panes = [
            np.full((self.num_keys, 0), ident, dtype=np.float64)
            for ident in self.aggregate.identity_components
        ]

    def _ensure_panes(self, upto: int) -> None:
        """Grow the buffer to cover global panes ``[offset, upto)``."""
        span = self._panes[0].shape[1]
        missing = upto - self.pane_offset - span
        if missing > 0:
            self._panes = [
                np.concatenate(
                    (
                        buf,
                        np.full(
                            (self.num_keys, missing), ident, dtype=np.float64
                        ),
                    ),
                    axis=1,
                )
                for buf, ident in zip(
                    self._panes, self.aggregate.identity_components
                )
            ]

    def absorb(
        self, ts: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        if ts.size == 0:
            return
        self.stats.record_pairs(
            self.window,
            logical_raw_pairs(
                ts, self.window, self.num_instances, self.start_instance
            ),
            physical=0,
        )
        panes = ts // self.pane
        # Clip to the panes the owned instance range [start, cap) reads:
        # pre-start events belong only to instances this operator never
        # closes, post-cap events only to its replacement's instances.
        lo_cut = 0
        if panes.size and panes[0] < self.pane_offset:
            lo_cut = int(np.searchsorted(panes, self.pane_offset, side="left"))
        hi_cut = panes.size
        if self.num_instances is not None:
            last_pane = (
                (self.num_instances - 1) * self.stride + self.per_instance
            )
            hi_cut = int(np.searchsorted(panes, last_pane, side="left"))
        if lo_cut or hi_cut < panes.size:
            ts = ts[lo_cut:hi_cut]
            keys = keys[lo_cut:hi_cut]
            values = values[lo_cut:hi_cut]
            panes = panes[lo_cut:hi_cut]
        if ts.size == 0:
            return
        self.stats.record_binned(ts.size)
        lo, hi = int(panes[0]), int(panes[-1])
        self._ensure_panes(hi + 1)
        span = hi - lo + 1
        codes = keys * span + (panes - lo)
        chunk = self.aggregate.segment_reduce(
            codes, values, self.num_keys * span
        )
        at = lo - self.pane_offset
        for ufunc, buf, part in zip(
            self.aggregate.component_ufuncs, self._panes, chunk
        ):
            block = buf[:, at:at + span]
            np.copyto(block, ufunc(block, part.reshape(self.num_keys, span)))
        self._note_retained(self._panes[0].shape[1])

    def _close_range(self, m0: int, m1: int) -> None:
        self._ensure_panes((m1 - 1) * self.stride + self.per_instance)
        index = (
            self.stride * np.arange(m0, m1, dtype=np.int64)[:, None]
            - self.pane_offset
            + np.arange(self.per_instance, dtype=np.int64)[None, :]
        )
        self.stats.record_physical(
            self.window, self.num_keys * (m1 - m0) * self.per_instance
        )
        components = tuple(
            ufunc.reduce(buf[:, index], axis=2)
            for ufunc, buf in zip(self.aggregate.component_ufuncs, self._panes)
        )
        self._emit(m0, m1, components)
        cut = m1 * self.stride - self.pane_offset
        if cut > 0:
            self._panes = [buf[:, cut:] for buf in self._panes]
            self.pane_offset = m1 * self.stride

    def handoff(self) -> dict:
        state = super().handoff()
        state.update(pane_offset=self.pane_offset, panes=self._panes)
        return state

    def adopt(self, state: dict) -> None:
        super().adopt(state)
        self.pane_offset = state["pane_offset"]
        self._panes = state["panes"]

    def extract_keys(self, local_ids: np.ndarray) -> dict:
        state = super().extract_keys(local_ids)
        state["pane_offset"] = self.pane_offset
        state["rows"] = [buf[local_ids] for buf in self._panes]
        self._panes = [np.delete(buf, local_ids, axis=0) for buf in self._panes]
        return state

    def absorb_keys(
        self, state: dict, positions: np.ndarray, num_keys: int
    ) -> None:
        super().absorb_keys(state, positions, num_keys)
        if state["pane_offset"] != self.pane_offset:
            # The pane cursor is a pure function of the watermark
            # history (always next_close * stride at a barrier), so
            # lockstep cores can never disagree here.
            raise ExecutionError(
                f"{self.window}: pane offset mismatch on key absorb — "
                f"{state['pane_offset']} vs {self.pane_offset}"
            )
        width = max(self._panes[0].shape[1], state["rows"][0].shape[1])
        self._panes = [
            _splice_rows(
                _pad_columns(buf, width, ident),
                _pad_columns(rows, width, ident),
                positions,
                num_keys,
            )
            for buf, rows, ident in zip(
                self._panes,
                state["rows"],
                self.aggregate.identity_components,
            )
        ]

    @property
    def retained_state(self) -> int:
        return self._panes[0].shape[1]


class _ChunkedHolisticOperator(_ChunkedOperator):
    """Buffers raw events for open instances; segmented close."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ts = np.empty(0, dtype=np.int64)
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)

    def absorb(
        self, ts: np.ndarray, keys: np.ndarray, values: np.ndarray
    ) -> None:
        if ts.size == 0:
            return
        self.stats.record_pairs(
            self.window,
            logical_raw_pairs(
                ts, self.window, self.num_instances, self.start_instance
            ),
            physical=0,
        )
        if self.num_instances is not None:
            # Drop events past the owned range (drain mode): they only
            # cover instances the replacement operator owns.
            end = (self.num_instances - 1) * self.window.slide + self.window.range
            cut = int(np.searchsorted(ts, end, side="left"))
            ts, keys, values = ts[:cut], keys[:cut], values[:cut]
            if ts.size == 0:
                return
        self._ts = np.concatenate((self._ts, ts))
        self._keys = np.concatenate((self._keys, keys))
        self._values = np.concatenate((self._values, values))
        self._note_retained(self._ts.size)

    def _close_range(self, m0: int, m1: int) -> None:
        if self.consumers:
            raise ExecutionError(
                f"holistic {self.aggregate.name} cannot feed downstream windows"
            )
        span = m1 - m0
        block = np.full((self.num_keys, span), np.nan, dtype=np.float64)
        if self._ts.size:
            k = self.window.instances_per_event
            base = self._ts // self.window.slide
            code_parts, value_parts = [], []
            for j in range(k):
                instance = base - j
                valid = (instance >= m0) & (instance < m1)
                code_parts.append(
                    self._keys[valid] * span + (instance[valid] - m0)
                )
                value_parts.append(self._values[valid])
            codes = np.concatenate(code_parts)
            if codes.size:
                self.stats.record_physical(self.window, int(codes.size))
                segment_ids, computed = holistic_segment_values(
                    codes, np.concatenate(value_parts), self.aggregate
                )
                block.reshape(-1)[segment_ids] = computed
        if self.results is not None:
            self.results[:, m0:m1] = block
        if self.sink is not None:
            self.sink(self.window, m0, m1, block)
        # Drop events no longer covered by any open instance.
        keep = self._ts >= m1 * self.window.slide
        if not keep.all():
            self._ts = self._ts[keep]
            self._keys = self._keys[keep]
            self._values = self._values[keep]

    def handoff(self) -> dict:
        state = super().handoff()
        state.update(ts=self._ts, keys=self._keys, values=self._values)
        return state

    def adopt(self, state: dict) -> None:
        super().adopt(state)
        self._ts = state["ts"]
        self._keys = state["keys"]
        self._values = state["values"]

    def extract_keys(self, local_ids: np.ndarray) -> dict:
        state = super().extract_keys(local_ids)
        mask = np.isin(self._keys, local_ids)
        # Keys travel as ranks into ``local_ids`` so the destination can
        # relabel them with its own local ids; per-key event order is
        # preserved (and the holistic close is order-insensitive — it
        # computes over the per-(key, instance) value multiset).
        state["ts"] = self._ts[mask]
        state["kidx"] = np.searchsorted(local_ids, self._keys[mask])
        state["values"] = self._values[mask]
        keep = ~mask
        kept = self._keys[keep]
        self._ts = self._ts[keep]
        self._values = self._values[keep]
        self._keys = kept - np.searchsorted(local_ids, kept, side="left")
        return state

    def absorb_keys(
        self, state: dict, positions: np.ndarray, num_keys: int
    ) -> None:
        super().absorb_keys(state, positions, num_keys)
        survivors = np.setdiff1d(
            np.arange(num_keys, dtype=np.int64), positions, assume_unique=True
        )
        if self._keys.size:
            self._keys = survivors[self._keys]
        self._ts = np.concatenate((self._ts, state["ts"]))
        self._keys = np.concatenate((self._keys, positions[state["kidx"]]))
        self._values = np.concatenate((self._values, state["values"]))

    @property
    def retained_state(self) -> int:
        return int(self._ts.size)


class _ChunkedSubAggOperator(_ChunkedOperator):
    """Consumes provider partial blocks; covering-set gather on close."""

    def __init__(self, provider: Window, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.provider = provider
        self.multiplier = covering_multiplier(self.window, provider)
        stride, rem = divmod(self.window.slide, provider.slide)
        if rem:
            raise ExecutionError(
                f"{self.window} cannot read from {provider}: "
                "slides incompatible"
            )
        self.stride = stride
        # Provider instance index of the first buffered column.
        self.offset = self.start_instance * stride
        self._partials = [
            np.full((self.num_keys, 0), ident, dtype=np.float64)
            for ident in self.aggregate.identity_components
        ]

    def accept_block(self, p0: int, p1: int, components: tuple) -> None:
        expected = self.offset + self._partials[0].shape[1]
        if p1 <= expected:
            # Entirely before our coverage: a carried-over provider
            # still draining instances an earlier generation owned.
            return
        if p0 > expected:
            raise ExecutionError(
                f"{self.window}: provider block [{p0}, {p1}) is not "
                f"contiguous with buffered instances"
            )
        if p0 < expected:
            skip = expected - p0
            components = tuple(
                np.asarray(part)[:, skip:] for part in components
            )
        self._partials = [
            np.concatenate((buf, np.asarray(part, dtype=np.float64)), axis=1)
            for buf, part in zip(self._partials, components)
        ]
        self._note_retained(self._partials[0].shape[1])

    def _close_range(self, m0: int, m1: int) -> None:
        needed = (m1 - 1) * self.stride + self.multiplier
        if needed > self.offset + self._partials[0].shape[1]:
            raise ExecutionError(
                f"{self.window} needs provider instance {needed - 1} of "
                f"{self.provider}, which has not been emitted"
            )
        index = (
            self.stride * np.arange(m0, m1, dtype=np.int64)[:, None]
            - self.offset
            + np.arange(self.multiplier, dtype=np.int64)[None, :]
        )
        self.stats.record_pairs(
            self.window, self.num_keys * (m1 - m0) * self.multiplier
        )
        components = tuple(
            ufunc.reduce(buf[:, index], axis=2)
            for ufunc, buf in zip(
                self.aggregate.component_ufuncs, self._partials
            )
        )
        self._emit(m0, m1, components)
        # Drop provider instances below the next open instance's
        # covering set — but never past the provider's emitted frontier
        # (when stride > M the frontier lags the cut target, and the
        # next accept_block must still land contiguously).
        span = self._partials[0].shape[1]
        cut = min(m1 * self.stride - self.offset, span)
        if cut > 0:
            self._partials = [buf[:, cut:] for buf in self._partials]
            self.offset += cut

    def handoff(self) -> dict:
        state = super().handoff()
        state.update(offset=self.offset, partials=self._partials)
        return state

    def adopt(self, state: dict) -> None:
        super().adopt(state)
        self.offset = state["offset"]
        self._partials = state["partials"]

    def extract_keys(self, local_ids: np.ndarray) -> dict:
        state = super().extract_keys(local_ids)
        state["offset"] = self.offset
        state["rows"] = [buf[local_ids] for buf in self._partials]
        self._partials = [
            np.delete(buf, local_ids, axis=0) for buf in self._partials
        ]
        return state

    def absorb_keys(
        self, state: dict, positions: np.ndarray, num_keys: int
    ) -> None:
        super().absorb_keys(state, positions, num_keys)
        span = self._partials[0].shape[1]
        if state["offset"] != self.offset or state["rows"][0].shape[1] != span:
            # Both are pure functions of the provider emission history,
            # which is watermark-driven and identical across cores.
            raise ExecutionError(
                f"{self.window}: provider-partial cursor mismatch on key "
                f"absorb — [{state['offset']}, +{state['rows'][0].shape[1]}) "
                f"vs [{self.offset}, +{span})"
            )
        self._partials = [
            _splice_rows(buf, rows, positions, num_keys)
            for buf, rows in zip(self._partials, state["rows"])
        ]

    @property
    def retained_state(self) -> int:
        return self._partials[0].shape[1]


class ChunkedStreamingExecutor:
    """Streaming execution in vectorized watermark blocks.

    Semantics match :class:`StreamingExecutor` — identical results,
    identical logical pair counts, bounded open state — but each block
    of ``chunk_ticks`` timestamps is processed with the pane reduction
    kernels instead of per-event Python dispatch.  ``chunk_ticks``
    defaults to the largest window range, so each block typically
    closes at least one instance of every window.
    """

    def __init__(
        self,
        plan: LogicalPlan,
        batch: EventBatch,
        chunk_ticks: "int | None" = None,
    ):
        self.plan = plan
        self.batch = batch
        self.stats = ExecutionStats()
        if chunk_ticks is None:
            chunk_ticks = max(n.window.range for n in plan.window_nodes())
        if chunk_ticks < 1:
            raise ExecutionError(
                f"chunk_ticks must be >= 1, got {chunk_ticks}"
            )
        self.chunk_ticks = chunk_ticks
        self._operators: dict[Window, _ChunkedOperator] = {}
        self._raw_ops: "list[_ChunkedRawOperator | _ChunkedHolisticOperator]" = []
        self._topo: list[_ChunkedOperator] = []
        self._build()

    def _build(self) -> None:
        batch = self.batch
        for node in self.plan.topological_window_order():
            num_instances = num_complete_instances(node.window, batch.horizon)
            args = (
                node.window,
                node.aggregate,
                batch.num_keys,
                num_instances,
                self.stats,
            )
            operator: _ChunkedOperator
            if node.provider is None:
                if node.aggregate.mergeable:
                    operator = _ChunkedRawOperator(*args)
                else:
                    operator = _ChunkedHolisticOperator(*args)
                self._raw_ops.append(operator)
            else:
                provider_op = self._operators.get(node.provider)
                if provider_op is None:
                    raise ExecutionError(
                        f"provider {node.provider} not built before "
                        f"{node.window}"
                    )
                operator = _ChunkedSubAggOperator(node.provider, *args)
                provider_op.consumers.append(operator)
            if not node.is_factor:
                operator.expose_results()
            self._operators[node.window] = operator
            self._topo.append(operator)

    def run(self) -> "dict[Window, np.ndarray]":
        """Process the batch block-by-block; return per-window results."""
        started = time.perf_counter()
        for _, end, ts, keys, values in self.batch.iter_time_chunks(
            self.chunk_ticks
        ):
            for raw_op in self._raw_ops:
                raw_op.absorb(ts, keys, values)
            # Providers close (and hand blocks downstream) before
            # consumers observe the new watermark: topological order.
            for operator in self._topo:
                operator.advance(end)
        for operator in self._topo:
            operator.advance(self.batch.horizon)
        self.stats.events = self.batch.num_events
        self.stats.wall_seconds = time.perf_counter() - started
        return {
            node.window: self._operators[node.window].results
            for node in self.plan.user_window_nodes()
        }

    def max_retained_state(self) -> int:
        """Largest per-operator buffered-state high-water mark."""
        return max(op.max_retained for op in self._topo)

    def retained_by_window(self) -> "dict[Window, int]":
        """Per-window high-water marks (panes / partials / events)."""
        return {w: op.max_retained for w, op in self._operators.items()}
