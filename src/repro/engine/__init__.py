"""Streaming engines: columnar (fast path) and row-at-a-time (reference)."""

from .columnar import (
    WindowState,
    aggregate_from_provider,
    aggregate_raw,
    aggregate_raw_holistic,
    num_complete_instances,
)
from .events import EventBatch, encode_keys, make_batch
from .executor import ExecutionResult, execute_plan, results_equal
from .outoforder import (
    ReorderBuffer,
    ReorderStats,
    batch_from_unordered,
    reorder_events,
    scramble_batch,
)
from .stats import ExecutionStats
from .streaming import StreamingExecutor

__all__ = [
    "EventBatch",
    "ReorderBuffer",
    "ReorderStats",
    "batch_from_unordered",
    "reorder_events",
    "scramble_batch",
    "ExecutionResult",
    "ExecutionStats",
    "StreamingExecutor",
    "WindowState",
    "aggregate_from_provider",
    "aggregate_raw",
    "aggregate_raw_holistic",
    "encode_keys",
    "execute_plan",
    "make_batch",
    "num_complete_instances",
    "results_equal",
]
