"""Streaming engines: columnar (+ pane-partitioned fast path) and
row-at-a-time / chunked streaming."""

from .columnar import (
    WindowState,
    aggregate_from_provider,
    aggregate_raw,
    aggregate_raw_holistic,
    holistic_segment_values,
    num_complete_instances,
)
from .events import EventBatch, encode_keys, make_batch
from .executor import (
    ExecutionResult,
    available_engines,
    execute_plan,
    register_engine,
    results_equal,
)
from .outoforder import (
    ReorderBuffer,
    ReorderStats,
    batch_from_unordered,
    reorder_events,
    scramble_batch,
)
from .panes import (
    PaneTable,
    aggregate_raw_panes,
    assemble_from_panes,
    build_pane_table,
    logical_raw_pairs,
    pane_width,
)
from .stats import ExecutionStats
from .streaming import ChunkedStreamingExecutor, StreamingExecutor

__all__ = [
    "ChunkedStreamingExecutor",
    "EventBatch",
    "ExecutionResult",
    "ExecutionStats",
    "PaneTable",
    "ReorderBuffer",
    "ReorderStats",
    "StreamingExecutor",
    "WindowState",
    "aggregate_from_provider",
    "aggregate_raw",
    "aggregate_raw_holistic",
    "aggregate_raw_panes",
    "assemble_from_panes",
    "available_engines",
    "batch_from_unordered",
    "build_pane_table",
    "encode_keys",
    "execute_plan",
    "holistic_segment_values",
    "logical_raw_pairs",
    "make_batch",
    "num_complete_instances",
    "pane_width",
    "register_engine",
    "reorder_events",
    "results_equal",
    "scramble_batch",
]
