"""The columnar engine: vectorized window-aggregate operators.

This is the primary execution path (the repo's Trill stand-in).  Each
window-aggregate operator produces a *window state*: per-key, per-
instance partial-aggregate component arrays of shape
``(num_keys, num_instances)``.  States flow between operators exactly
like Trill streams of grouped sub-aggregates flow in the paper's
rewritten plans; finalization happens once, at the union.

Work performed is proportional to the number of (input, instance)
pairs each operator touches — the quantity the paper's cost model
prices — and every operator reports that count to
:class:`~repro.engine.stats.ExecutionStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..aggregates.base import AggregateFunction
from ..errors import ExecutionError
from .. import _kernels as kernels
from ..windows.coverage import covering_multiplier
from ..windows.window import Window
from .events import EventBatch
from .stats import ExecutionStats


@dataclass
class WindowState:
    """Partial aggregates of one window over a finite stream.

    ``components[c][k, m]`` is component ``c`` of the partial aggregate
    for key ``k`` and window instance ``m``.
    """

    window: Window
    components: tuple[np.ndarray, ...]
    num_keys: int
    num_instances: int

    def finalized(self, aggregate: AggregateFunction) -> np.ndarray:
        """Finalize to a ``(num_keys, num_instances)`` result array."""
        return np.asarray(aggregate.finalize(self.components), dtype=np.float64)


def num_complete_instances(window: Window, horizon: int) -> int:
    """Instances of ``window`` that close at or before ``horizon``."""
    return len(window.instance_range(horizon))


def aggregate_raw(
    batch: EventBatch,
    window: Window,
    aggregate: AggregateFunction,
    stats: "ExecutionStats | None" = None,
) -> WindowState:
    """Aggregate raw events into per-instance partials.

    Every event is routed to each of the ``k = r/s`` instances whose
    interval contains it, so the operator performs ``N * k`` pair
    touches — matching the cost model's ``n * (η * r)`` per hyper-period.
    """
    n_inst = num_complete_instances(window, batch.horizon)
    k = window.instances_per_event
    identities = aggregate.identity_components
    if n_inst == 0 or batch.num_events == 0:
        comps = tuple(
            np.full((batch.num_keys, max(n_inst, 0)), ident, dtype=np.float64)
            for ident in identities
        )
        return WindowState(window, comps, batch.num_keys, n_inst)

    base = batch.timestamps // window.slide
    code_parts = []
    value_parts = []
    key_parts = []
    for j in range(k):
        instance = base - j
        valid = (instance >= 0) & (instance < n_inst)
        if not np.any(valid):
            continue
        code_parts.append(
            batch.keys[valid] * n_inst + instance[valid]
        )
        value_parts.append(batch.values[valid])
        key_parts.append(batch.keys[valid])
    if code_parts:
        codes = np.concatenate(code_parts)
        values = np.concatenate(value_parts)
    else:  # all events fall outside complete instances
        codes = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    if stats is not None:
        stats.record_pairs(window, int(codes.size))
    flat = aggregate.segment_reduce(codes, values, batch.num_keys * n_inst)
    comps = tuple(c.reshape(batch.num_keys, n_inst) for c in flat)
    return WindowState(window, comps, batch.num_keys, n_inst)


def aggregate_from_provider(
    provider_state: WindowState,
    window: Window,
    aggregate: AggregateFunction,
    horizon: int,
    stats: "ExecutionStats | None" = None,
) -> WindowState:
    """Aggregate a provider's sub-aggregates into a consumer window.

    Consumer instance ``m`` (interval ``[m*s1, m*s1 + r1)``) merges the
    ``M = covering_multiplier`` provider instances starting at
    ``m*s1 + j*s2`` for ``j in [0, M)`` — the covering set of
    Definition 2.  Work: ``num_keys * n_instances * M`` pair touches.
    """
    provider = provider_state.window
    multiplier = covering_multiplier(window, provider)
    n_inst = num_complete_instances(window, horizon)
    num_keys = provider_state.num_keys
    if n_inst == 0:
        comps = tuple(
            np.full((num_keys, 0), ident, dtype=np.float64)
            for ident in aggregate.identity_components
        )
        return WindowState(window, comps, num_keys, 0)

    stride, rem = divmod(window.slide, provider.slide)
    if rem:
        raise ExecutionError(
            f"{window} cannot read from {provider}: slides incompatible"
        )
    # Provider instance indices per consumer instance: (n_inst, M).
    starts = stride * np.arange(n_inst, dtype=np.int64)[:, None]
    index = starts + np.arange(multiplier, dtype=np.int64)[None, :]
    if index.max() >= provider_state.num_instances:
        raise ExecutionError(
            f"{window} needs provider instance {int(index.max())} of "
            f"{provider}, but only {provider_state.num_instances} exist"
        )
    if stats is not None:
        stats.record_pairs(window, num_keys * n_inst * multiplier)
    comps = []
    for ufunc, comp in zip(
        aggregate.component_ufuncs, provider_state.components
    ):
        gathered = comp[:, index]  # (num_keys, n_inst, M)
        comps.append(ufunc.reduce(gathered, axis=2))
    return WindowState(window, tuple(comps), num_keys, n_inst)


def holistic_segment_values(
    codes: np.ndarray,
    values: np.ndarray,
    aggregate: AggregateFunction,
    native: "bool | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Evaluate a holistic aggregate per integer-coded group.

    Returns ``(segment_ids, results)`` for the non-empty groups.  Values
    are lexsorted by (code, value), so aggregates exposing a
    ``segment_compute`` kernel (MEDIAN/QUANTILE via sorted-segment index
    arithmetic) run in one vectorized pass; others fall back to a
    per-segment ``compute`` loop.

    When ``native`` resolves true (see ``repro._kernels.resolve``) and
    the aggregate declares a ``native_segment_kind``, the whole pass —
    grouping, per-segment sort, closed form — runs in the compiled
    kernel.  The results depend only on each segment's ascending value
    sequence and repeat the NumPy index arithmetic operation for
    operation, so both paths are bit-identical.
    """
    if (
        codes.size
        and kernels.holistic_kind(aggregate) is not None
        and kernels.resolve(native)
    ):
        return kernels.holistic_segment_values(codes, values, aggregate)
    order = np.lexsort((values, codes))
    sorted_codes = codes[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [sorted_codes.size]))
    segment_ids = sorted_codes[starts]
    results = aggregate.segment_compute(sorted_values, starts, ends)
    if results is None:
        results = np.fromiter(
            (
                aggregate.compute(sorted_values[lo:hi])
                for lo, hi in zip(starts, ends)
            ),
            dtype=np.float64,
            count=starts.size,
        )
    return segment_ids, np.asarray(results, dtype=np.float64)


def aggregate_raw_holistic(
    batch: EventBatch,
    window: Window,
    aggregate: AggregateFunction,
    stats: "ExecutionStats | None" = None,
    native: "bool | None" = None,
) -> np.ndarray:
    """Directly evaluate a holistic aggregate per (key, instance).

    Returns finalized values of shape ``(num_keys, num_instances)``.
    There is no partial form, so this only supports the original plan.
    """
    n_inst = num_complete_instances(window, batch.horizon)
    out = np.full((batch.num_keys, n_inst), np.nan, dtype=np.float64)
    if n_inst == 0 or batch.num_events == 0:
        return out
    k = window.instances_per_event
    base = batch.timestamps // window.slide
    code_parts, value_parts = [], []
    for j in range(k):
        instance = base - j
        valid = (instance >= 0) & (instance < n_inst)
        code_parts.append(batch.keys[valid] * n_inst + instance[valid])
        value_parts.append(batch.values[valid])
    codes = np.concatenate(code_parts)
    values = np.concatenate(value_parts)
    if stats is not None:
        stats.record_pairs(window, int(codes.size))
    if codes.size == 0:
        return out
    segment_ids, results = holistic_segment_values(
        codes, values, aggregate, native=native
    )
    out.reshape(-1)[segment_ids] = results
    return out
