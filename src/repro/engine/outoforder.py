"""Out-of-order ingestion with bounded disorder.

Real event streams (including the DEBS trace family) arrive out of
order.  The engines in this package require timestamp-sorted input, so
this module provides the standard streaming front door: a reorder
buffer with a *bounded-lateness* watermark.

An event with timestamp ``t`` may arrive any time before the watermark
passes ``t``; the watermark trails the maximum seen timestamp by
``max_lateness`` ticks.  Events older than the watermark are *late*:
they are counted and dropped (the drop-late policy of Flink/ASA's
default).  Everything the buffer releases is globally sorted, so the
downstream engines' results are identical to running on pre-sorted
input — which is exactly what the tests assert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from .. import _kernels as kernels
from ..errors import ExecutionError
from .events import EventBatch

Event = tuple[int, int, float]  # (timestamp, key, value)


#: Default bound on *retained* late events (counters stay exact).
DEFAULT_LATE_EVENT_CAP = 64


@dataclass
class ReorderStats:
    """Counters of a reorder pass.

    ``late_events`` retains at most ``late_event_cap`` dropped events
    (the earliest ones — debugging wants the first offenders); an
    unbounded list would contradict the bounded-state guarantee every
    operator downstream of this front door maintains (DESIGN.md §5).
    The *counters* — ``late_dropped``, ``max_observed_lateness`` — are
    exact regardless of the cap.
    """

    accepted: int = 0
    late_dropped: int = 0
    max_observed_lateness: int = 0
    late_events: list[Event] = field(default_factory=list)
    late_event_cap: int = DEFAULT_LATE_EVENT_CAP
    late_events_elided: int = 0

    def note_late(self, event: Event, keep: bool) -> None:
        """Count one late drop; retain the event within the cap."""
        self.late_dropped += 1
        if keep:
            if len(self.late_events) < self.late_event_cap:
                self.late_events.append(event)
            else:
                self.late_events_elided += 1

    @property
    def total(self) -> int:
        return self.accepted + self.late_dropped


class ReorderBuffer:
    """Min-heap reorder buffer with a trailing watermark.

    ``push`` accepts one (possibly out-of-order) event and yields every
    event whose timestamp the new watermark has passed, in order.
    ``flush`` drains the remainder at end of stream.
    """

    def __init__(
        self,
        max_lateness: int,
        keep_late_events: bool = False,
        late_event_cap: int = DEFAULT_LATE_EVENT_CAP,
    ):
        if max_lateness < 0:
            raise ExecutionError(
                f"max_lateness must be >= 0, got {max_lateness}"
            )
        if late_event_cap < 0:
            raise ExecutionError(
                f"late_event_cap must be >= 0, got {late_event_cap}"
            )
        self.max_lateness = max_lateness
        self.stats = ReorderStats(late_event_cap=late_event_cap)
        self._keep_late = keep_late_events
        self._heap: list[Event] = []
        self._max_seen = -1
        self._sequence = 0  # tie-break to keep same-timestamp arrival order

    @property
    def watermark(self) -> int:
        """Timestamps strictly below this are final."""
        return self._max_seen - self.max_lateness

    def push(self, ts: int, key: int, value: float) -> Iterator[Event]:
        if ts < 0:
            raise ExecutionError(f"timestamps must be >= 0, got {ts}")
        if ts < self.watermark:
            lateness = self.watermark - ts
            self.stats.max_observed_lateness = max(
                self.stats.max_observed_lateness, lateness
            )
            self.stats.note_late((ts, key, value), self._keep_late)
            return
        self.stats.accepted += 1
        heapq.heappush(self._heap, (ts, self._sequence, key, value))
        self._sequence += 1
        self._max_seen = max(self._max_seen, ts)
        while self._heap and self._heap[0][0] < self.watermark:
            out_ts, _, out_key, out_value = heapq.heappop(self._heap)
            yield (out_ts, out_key, out_value)

    def push_batch(
        self,
        ts: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        native: "bool | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Push a columnar block of (possibly out-of-order) events.

        Returns the released events as ``(ts, keys, values)`` arrays —
        the exact sequence ``push`` would have yielded event by event,
        with identical late-drop decisions and counters.  When the
        compiled kernels are enabled (``repro._kernels``) the heap
        churn runs in C; the pure-Python fallback literally loops
        :meth:`push`, so both paths are bit-identical by construction.
        """
        ts = np.ascontiguousarray(ts, dtype=np.int64)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        n = int(ts.size)
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        if n == 0:
            return empty
        if int(ts.min()) < 0:
            raise ExecutionError(
                f"timestamps must be >= 0, got {int(ts.min())}"
            )
        if kernels.resolve(native):
            (
                out_ts,
                out_keys,
                out_values,
                late_idx,
                late_lateness,
                heap,
                max_seen,
                sequence,
            ) = kernels.NativeReorderHeap.push_batch(
                self._heap,
                self._max_seen,
                self._sequence,
                self.max_lateness,
                ts,
                keys,
                values,
            )
            self._heap = heap
            self._max_seen = max_seen
            self._sequence = sequence
            self.stats.accepted += n - int(late_idx.size)
            for i, lateness in zip(
                late_idx.tolist(), late_lateness.tolist()
            ):
                self.stats.max_observed_lateness = max(
                    self.stats.max_observed_lateness, int(lateness)
                )
                self.stats.note_late(
                    (int(ts[i]), int(keys[i]), float(values[i])),
                    self._keep_late,
                )
            return out_ts, out_keys, out_values
        rel_ts: list[int] = []
        rel_keys: list[int] = []
        rel_values: list[float] = []
        for i in range(n):
            for event in self.push(
                int(ts[i]), int(keys[i]), float(values[i])
            ):
                rel_ts.append(event[0])
                rel_keys.append(event[1])
                rel_values.append(event[2])
        if not rel_ts:
            return empty
        return (
            np.asarray(rel_ts, dtype=np.int64),
            np.asarray(rel_keys, dtype=np.int64),
            np.asarray(rel_values, dtype=np.float64),
        )

    def accept_sorted(
        self, count: int, first_ts: int, last_ts: int
    ) -> None:
        """Account a pre-sorted batch that bypasses the heap (the
        sorted fast path of batch ingestion).

        Only valid on an in-order front door (``max_lateness == 0``)
        with nothing buffered, and only for a batch starting at or
        after the newest seen timestamp — otherwise the bypass could
        reorder events relative to earlier pushes.  Keeps the exact
        ``accepted`` counter and the watermark coherent with
        :meth:`push`.
        """
        if self.max_lateness != 0 or self._heap:
            raise ExecutionError(
                "sorted-batch bypass requires max_lateness=0 and an "
                "empty reorder buffer; push events individually instead"
            )
        if first_ts < self._max_seen:
            raise ExecutionError(
                f"sorted batch starts at {first_ts}, before the newest "
                f"seen timestamp {self._max_seen}"
            )
        self.stats.accepted += count
        self._max_seen = max(self._max_seen, last_ts)

    def flush(self) -> Iterator[Event]:
        """Drain all buffered events (end of stream)."""
        while self._heap:
            ts, _, key, value = heapq.heappop(self._heap)
            yield (ts, key, value)

    @property
    def buffered(self) -> int:
        return len(self._heap)


def reorder_events(
    events: Iterable[Event], max_lateness: int
) -> tuple[list[Event], ReorderStats]:
    """Reorder a finite event iterable; returns (sorted events, stats)."""
    buffer = ReorderBuffer(max_lateness)
    ordered: list[Event] = []
    for ts, key, value in events:
        ordered.extend(buffer.push(ts, key, value))
    ordered.extend(buffer.flush())
    return ordered, buffer.stats


def batch_from_unordered(
    events: Iterable[Event],
    max_lateness: int,
    horizon: "int | None" = None,
    num_keys: "int | None" = None,
) -> tuple[EventBatch, ReorderStats]:
    """Build a sorted :class:`EventBatch` from an out-of-order iterable.

    The returned batch feeds either engine directly; ``stats`` reports
    what the lateness bound cost in dropped events.
    """
    ordered, stats = reorder_events(events, max_lateness)
    if not ordered:
        return (
            EventBatch(
                timestamps=np.empty(0, dtype=np.int64),
                keys=np.empty(0, dtype=np.int64),
                values=np.empty(0, dtype=np.float64),
                horizon=horizon or 1,
                num_keys=num_keys or 1,
            ),
            stats,
        )
    ts = np.asarray([e[0] for e in ordered], dtype=np.int64)
    keys = np.asarray([e[1] for e in ordered], dtype=np.int64)
    values = np.asarray([e[2] for e in ordered], dtype=np.float64)
    if num_keys is None:
        num_keys = int(keys.max()) + 1
    if horizon is None:
        horizon = int(ts[-1]) + 1
    batch = EventBatch(
        timestamps=ts,
        keys=keys,
        values=values,
        horizon=horizon,
        num_keys=num_keys,
    )
    return batch, stats


def scramble_batch(
    batch: EventBatch, max_lateness: int, seed: int = 0
) -> list[Event]:
    """Test/demo helper: displace each event by up to ``max_lateness``
    arrival positions while keeping disorder within the bound.

    Each event's arrival position is its timestamp index plus uniform
    jitter in ``[0, max_lateness]``; sorting by that jittered key yields
    a stream whose disorder a ``ReorderBuffer(max_lateness)`` absorbs
    without drops (events only ever arrive *early* relative to their
    jittered slot, never later than the bound).
    """
    rng = np.random.default_rng(seed)
    jitter = rng.integers(0, max_lateness + 1, batch.num_events)
    order = np.argsort(batch.timestamps + jitter, kind="stable")
    return [
        (
            int(batch.timestamps[i]),
            int(batch.keys[i]),
            float(batch.values[i]),
        )
        for i in order
    ]
