"""Execution statistics: processed-pair counters and throughput.

The paper's cost model counts *inputs processed* (events for raw reads,
sub-aggregates otherwise).  Both engines maintain exactly that counter
per window, which lets tests equate measured work with the analytic
cost model (DESIGN.md invariant 6) and lets benchmarks report a
deterministic, hardware-independent work metric next to wall-clock
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..windows.window import Window


@dataclass
class ExecutionStats:
    """Counters collected while executing one plan on one stream."""

    events: int = 0
    wall_seconds: float = 0.0
    pairs_per_window: dict[Window, int] = field(default_factory=dict)

    def record_pairs(self, window: Window, pairs: int) -> None:
        self.pairs_per_window[window] = (
            self.pairs_per_window.get(window, 0) + pairs
        )

    @property
    def total_pairs(self) -> int:
        """Total inputs processed across all window operators."""
        return sum(self.pairs_per_window.values())

    @property
    def throughput(self) -> float:
        """Events per second of wall-clock time."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events / self.wall_seconds

    def merge(self, other: "ExecutionStats") -> None:
        self.events += other.events
        self.wall_seconds += other.wall_seconds
        for window, pairs in other.pairs_per_window.items():
            self.record_pairs(window, pairs)
