"""Execution statistics: logical pair counters, physical touches, throughput.

The paper's cost model counts *inputs processed* (events for raw reads,
sub-aggregates otherwise).  Every engine maintains exactly that counter
per window — the **logical** pair count — which lets tests equate
measured work with the analytic cost model (DESIGN.md invariant 6) and
lets benchmarks report a deterministic, hardware-independent work
metric next to wall-clock throughput.

Fast execution paths (the pane-partitioned columnar path, the chunked
streaming executor) do strictly less work than the logical count: they
bin each event into one pane and assemble instances from pane partials.
Those paths additionally report **physical** touches — what the
hardware actually did — split into per-window assembly work
(``physical_per_window``) and the shared event-binning passes
(``events_binned``).  The logical counters stay identical across all
paths (DESIGN.md invariant 5/6); the physical counters are the quantity
the engine ablations optimize (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..windows.window import Window


@dataclass
class ExecutionStats:
    """Counters collected while executing one plan on one stream.

    ``pairs_per_window`` is the *logical* count the cost model prices;
    ``physical_per_window`` is the per-window work the execution path
    actually performed (pane/sub-aggregate assembly, raw scans);
    ``events_binned`` counts events routed through shared pane tables
    (charged once per table, not per window, because the binning pass
    is shared by every window reading from that table).
    """

    events: int = 0
    wall_seconds: float = 0.0
    pairs_per_window: dict[Window, int] = field(default_factory=dict)
    physical_per_window: dict[Window, int] = field(default_factory=dict)
    events_binned: int = 0
    bytes_copied: int = 0
    copies_elided: int = 0
    #: Decayed per-shard load report ``{shard: {"events", "bytes",
    #: "slots", "keys"}}`` — attached by the sharded coordinator only
    #: (``None`` on single-core stats; excluded from :meth:`merge`, as
    #: it describes a layout, not additive work).
    shard_loads: "dict[int, dict[str, float]] | None" = None

    def record_pairs(
        self, window: Window, pairs: int, physical: "int | None" = None
    ) -> None:
        """Record ``pairs`` logical inputs processed for ``window``.

        ``physical`` overrides the physical-touch count for paths that
        do less (or different) actual work; by default physical work
        mirrors the logical count (the naive paths touch exactly the
        pairs the cost model prices).
        """
        self.pairs_per_window[window] = (
            self.pairs_per_window.get(window, 0) + pairs
        )
        self.record_physical(window, pairs if physical is None else physical)

    def record_physical(self, window: Window, touches: int) -> None:
        """Record per-window physical touches without logical pairs."""
        if touches:
            self.physical_per_window[window] = (
                self.physical_per_window.get(window, 0) + touches
            )

    def record_binned(self, events: int) -> None:
        """Record one shared pane-table binning pass over ``events``."""
        self.events_binned += events

    def record_copied(self, nbytes: int) -> None:
        """Record ``nbytes`` of event data physically copied.

        The zero-copy data plane (docs/performance.md) charges every
        materializing copy of event columns — ring-slot reads, flush
        re-contiguation — here, so benchmarks can gate bytes copied
        per event end-to-end.
        """
        self.bytes_copied += nbytes

    def record_copy_elided(self, events: int) -> None:
        """Record ``events`` handed downstream without a copy (borrowed
        ring views, single-run flush pass-through)."""
        self.copies_elided += events

    @property
    def total_pairs(self) -> int:
        """Total logical inputs processed across all window operators."""
        return sum(self.pairs_per_window.values())

    @property
    def total_physical(self) -> int:
        """Total physical touches: per-window assembly + shared binning."""
        return sum(self.physical_per_window.values()) + self.events_binned

    @property
    def physical_fraction(self) -> float:
        """Physical / logical work ratio (< 1 on the fast paths)."""
        logical = self.total_pairs
        if logical == 0:
            return 1.0
        return self.total_physical / logical

    @property
    def throughput(self) -> float:
        """Events per second of wall-clock time."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events / self.wall_seconds

    def merge(self, other: "ExecutionStats") -> None:
        self.events += other.events
        self.wall_seconds += other.wall_seconds
        self.events_binned += other.events_binned
        self.bytes_copied += other.bytes_copied
        self.copies_elided += other.copies_elided
        for window, pairs in other.pairs_per_window.items():
            self.pairs_per_window[window] = (
                self.pairs_per_window.get(window, 0) + pairs
            )
        for window, touches in other.physical_per_window.items():
            self.physical_per_window[window] = (
                self.physical_per_window.get(window, 0) + touches
            )
