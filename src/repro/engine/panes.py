"""Pane-partitioned physical execution — the columnar fast path.

:func:`~repro.engine.columnar.aggregate_raw` routes every event to all
``k = r/s`` covering instances, materializing ``N * k`` (event,
instance) pairs.  That matches the cost model's *logical* work but is
physically wasteful: within one window, consecutive instances share
almost all of their events.  This module exploits the classic
pane/slice decomposition (Li et al., "No pane, no gain"; the paper's
Scotty baseline slices the same way): with pane width
``p = gcd(r, s)``, every instance interval is a disjoint union of
``r/p`` panes, so it suffices to

1. **bin** each event once into a per-(key, pane) partial table —
   ``O(N)`` pair touches, shared by every window with the same pane
   width and aggregate; then
2. **assemble** each instance with a vectorized gather+reduce over its
   ``r/p`` consecutive panes — ``num_keys * n_instances * (r/p)``
   touches.

Total physical work is ``N + Σ_w num_keys * n_w * (r_w/p_w)`` instead
of ``Σ_w N * k_w`` — the engine scales with panes, not with ``k``.
Soundness needs only that panes *partition* each instance exactly
(``p | s`` and ``p | r``), so it holds for every mergeable aggregate,
including the partitioned-by-only ones (SUM/COUNT/AVG/...): sharing a
pane table across windows never merges overlapping inputs because each
window's gather reads disjoint panes.

The *logical* pair counters are still reported exactly as the naive
paths count them (DESIGN.md invariant 6); the binning/assembly work is
reported separately as *physical* touches (DESIGN.md §5).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..aggregates.base import AggregateFunction
from ..errors import ExecutionError
from ..plans.nodes import LogicalPlan
from ..windows.window import Window
from .columnar import (
    WindowState,
    aggregate_from_provider,
    aggregate_raw_holistic,
    num_complete_instances,
)
from .events import EventBatch
from .stats import ExecutionStats


def pane_width(window: Window) -> int:
    """``p = gcd(r, s)`` — the widest pane that tiles every instance."""
    return math.gcd(window.range, window.slide)


def logical_raw_pairs(
    timestamps: np.ndarray,
    window: Window,
    num_instances: "int | None",
    start_instance: int = 0,
) -> int:
    """(event, instance) pairs :func:`aggregate_raw` would materialize.

    Event at ``ts`` joins instances ``ts//s - j`` for ``j in [0, k)``
    intersected with ``[start_instance, num_instances)``; counting the
    intersection per event is O(N) instead of O(N * k).
    ``num_instances=None`` means unbounded above (live operators), and
    ``start_instance`` clips below (operators activated mid-stream own
    no instance before their aligned start).
    """
    if timestamps.size == 0:
        return 0
    if num_instances is not None and num_instances <= start_instance:
        return 0
    k = window.instances_per_event
    base = timestamps // window.slide
    hi = base if num_instances is None else np.minimum(base, num_instances - 1)
    lo = np.maximum(base - (k - 1), start_instance)
    return int(np.maximum(hi - lo + 1, 0).sum())


@dataclass
class PaneTable:
    """Per-(key, pane) partial aggregates of one event batch.

    ``components[c][key, pane]`` is component ``c`` of the partial over
    pane interval ``[pane * width, (pane + 1) * width)``.  One table is
    shared by every raw-reading window with the same pane width and
    aggregate.
    """

    width: int
    components: tuple[np.ndarray, ...]
    num_keys: int
    num_panes: int


def build_pane_table(
    batch: EventBatch,
    width: int,
    aggregate: AggregateFunction,
    stats: "ExecutionStats | None" = None,
    native: "bool | None" = None,
) -> PaneTable:
    """Bin every event once into per-(key, pane) partials — O(N)."""
    num_panes = -(-batch.horizon // width)
    panes = batch.timestamps // width
    codes = batch.keys * num_panes + panes
    flat = aggregate.segment_reduce(
        codes, batch.values, batch.num_keys * num_panes, native=native
    )
    if stats is not None:
        stats.record_binned(batch.num_events)
    comps = tuple(c.reshape(batch.num_keys, num_panes) for c in flat)
    return PaneTable(width, comps, batch.num_keys, num_panes)


def assemble_from_panes(
    table: PaneTable,
    window: Window,
    aggregate: AggregateFunction,
    num_instances: int,
    stats: "ExecutionStats | None" = None,
    logical_pairs: "int | None" = None,
) -> WindowState:
    """Gather+reduce pane partials into per-instance partials.

    Instance ``m`` spans panes ``[m * s/p, m * s/p + r/p)``; the gather
    touches ``num_keys * num_instances * (r/p)`` pane partials.
    """
    if window.slide % table.width or window.range % table.width:
        raise ExecutionError(
            f"pane width {table.width} does not tile {window}"
        )
    stride = window.slide // table.width
    per_instance = window.range // table.width
    if num_instances == 0:
        comps = tuple(
            np.full((table.num_keys, 0), ident, dtype=np.float64)
            for ident in aggregate.identity_components
        )
        return WindowState(window, comps, table.num_keys, 0)
    index = (
        stride * np.arange(num_instances, dtype=np.int64)[:, None]
        + np.arange(per_instance, dtype=np.int64)[None, :]
    )
    if stats is not None:
        if logical_pairs is not None:
            stats.record_pairs(window, logical_pairs, physical=0)
        stats.record_physical(
            window, table.num_keys * num_instances * per_instance
        )
    comps = []
    for ufunc, comp in zip(aggregate.component_ufuncs, table.components):
        gathered = comp[:, index]  # (num_keys, n_inst, r/p)
        comps.append(ufunc.reduce(gathered, axis=2))
    return WindowState(window, tuple(comps), table.num_keys, num_instances)


def aggregate_raw_panes(
    batch: EventBatch,
    window: Window,
    aggregate: AggregateFunction,
    stats: "ExecutionStats | None" = None,
    table: "PaneTable | None" = None,
    native: "bool | None" = None,
) -> WindowState:
    """Pane-partitioned drop-in for :func:`aggregate_raw`.

    Produces a bit-identical :class:`WindowState` and identical
    *logical* pair counts while touching ``N + num_keys * n_inst *
    (r/p)`` inputs instead of ``N * k``.  Pass ``table`` to reuse a
    shared pane table (its width must tile the window).
    """
    n_inst = num_complete_instances(window, batch.horizon)
    if n_inst == 0 or batch.num_events == 0:
        identities = aggregate.identity_components
        comps = tuple(
            np.full((batch.num_keys, n_inst), ident, dtype=np.float64)
            for ident in identities
        )
        return WindowState(window, comps, batch.num_keys, n_inst)
    if table is None:
        table = build_pane_table(
            batch, pane_width(window), aggregate, stats, native=native
        )
    logical = logical_raw_pairs(batch.timestamps, window, n_inst)
    return assemble_from_panes(
        table, window, aggregate, n_inst, stats, logical_pairs=logical
    )


def plan_pane_groups(
    plan: LogicalPlan,
) -> "dict[tuple[int, str], list[Window]]":
    """Group raw-reading mergeable windows by (pane width, aggregate).

    Windows in one group share a single pane table: the binning pass is
    paid once per group rather than once per window.
    """
    groups: dict[tuple[int, str], list[Window]] = {}
    for node in plan.window_nodes():
        if node.provider is None and node.aggregate.mergeable:
            key = (pane_width(node.window), node.aggregate.name)
            groups.setdefault(key, []).append(node.window)
    return groups


def execute_plan_panes(
    plan: LogicalPlan, batch: EventBatch, native: "bool | None" = None
) -> "tuple[dict[Window, np.ndarray], ExecutionStats]":
    """Execute ``plan`` on the pane-partitioned columnar path.

    Raw mergeable reads go through shared pane tables; provider reads
    use the (already vectorized) sub-aggregate gather; holistic reads
    fall back to the direct segmented evaluator.  Results and logical
    stats are identical to the plain columnar engine.

    ``native=True`` routes the pane binning and holistic segment
    kernels through the compiled backend when available (the
    ``columnar-panes-native`` engine path) — same bits, fewer cycles.
    """
    stats = ExecutionStats(events=batch.num_events)
    started = time.perf_counter()
    tables: dict[tuple[int, str], PaneTable] = {}
    for (width, agg_name), group in plan_pane_groups(plan).items():
        node = plan.node_for(group[0])
        tables[(width, agg_name)] = build_pane_table(
            batch, width, node.aggregate, stats, native=native
        )

    states: dict[Window, WindowState] = {}
    results: dict[Window, np.ndarray] = {}
    for node in plan.topological_window_order():
        aggregate = node.aggregate
        if node.provider is None:
            if aggregate.mergeable:
                table = tables[(pane_width(node.window), aggregate.name)]
                state = aggregate_raw_panes(
                    batch, node.window, aggregate, stats, table=table
                )
                states[node.window] = state
                if not node.is_factor:
                    results[node.window] = state.finalized(aggregate)
            else:
                if node.is_factor:
                    raise ExecutionError(
                        "holistic aggregates cannot be factor windows"
                    )
                results[node.window] = aggregate_raw_holistic(
                    batch, node.window, aggregate, stats, native=native
                )
        else:
            state = aggregate_from_provider(
                states[node.provider],
                node.window,
                aggregate,
                batch.horizon,
                stats,
            )
            states[node.window] = state
            if not node.is_factor:
                results[node.window] = state.finalized(aggregate)

    stats.wall_seconds = time.perf_counter() - started
    return results, stats
