"""Factor Windows: cost-based query rewriting for correlated window
aggregates.

A full reproduction of Wu, Bernstein, Raizman, Pavlopoulou (ICDE 2022):
the window coverage graph, the cost-based optimizer, factor windows,
query rewriting, a SQL front end, two streaming engines, a stream-
slicing baseline, and the paper's complete evaluation harness.

Quickstart::

    from repro import tumbling, WindowSet, MIN, optimize, rewrite_plan

    windows = WindowSet([tumbling(20), tumbling(30), tumbling(40)])
    result = optimize(windows, MIN)
    print(result.summary())              # 360 -> 246 -> 150
    plan = rewrite_plan(result.best, MIN)
"""

from .aggregates import (
    AVG,
    COUNT,
    MAX,
    MEDIAN,
    MIN,
    STDEV,
    SUM,
    AggregateFunction,
    Taxonomy,
    get_aggregate,
)
from .core import (
    CostModel,
    MinCostWCG,
    OptimizationResult,
    WindowCoverageGraph,
    exhaustive_min_cost,
    min_cost_wcg,
    min_cost_wcg_with_factors,
    optimize,
    rewrite_plan,
)
from .engine import (
    EventBatch,
    ExecutionResult,
    available_engines,
    execute_plan,
    make_batch,
    register_engine,
    results_equal,
)
from .errors import ReproError
from .plans import LogicalPlan, original_plan, to_flink, to_tree, to_trill
from .runtime import PlanSwitchRecord, QuerySession, SessionCore, ShardedSession
from .slicing import execute_sliced
from .sql import compile_query, parse, plan_query
from .windows import (
    CoverageSemantics,
    Window,
    WindowSet,
    covered_by,
    covering_multiplier,
    hopping,
    partitioned_by,
    tumbling,
)

__version__ = "1.0.0"

__all__ = [
    "AVG",
    "AggregateFunction",
    "COUNT",
    "CostModel",
    "CoverageSemantics",
    "EventBatch",
    "ExecutionResult",
    "LogicalPlan",
    "MAX",
    "MEDIAN",
    "MIN",
    "MinCostWCG",
    "OptimizationResult",
    "PlanSwitchRecord",
    "QuerySession",
    "SessionCore",
    "ShardedSession",
    "ReproError",
    "available_engines",
    "STDEV",
    "SUM",
    "Taxonomy",
    "Window",
    "WindowCoverageGraph",
    "WindowSet",
    "compile_query",
    "covered_by",
    "covering_multiplier",
    "execute_plan",
    "execute_sliced",
    "exhaustive_min_cost",
    "get_aggregate",
    "hopping",
    "make_batch",
    "min_cost_wcg",
    "min_cost_wcg_with_factors",
    "optimize",
    "original_plan",
    "parse",
    "partitioned_by",
    "plan_query",
    "register_engine",
    "results_equal",
    "rewrite_plan",
    "to_flink",
    "to_tree",
    "to_trill",
    "tumbling",
]
