"""Exception hierarchy for the factor-windows library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the broad failure categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidWindowError(ReproError, ValueError):
    """A window specification violates ``0 < slide <= range``."""


class CostModelError(ReproError, ValueError):
    """The cost model's preconditions do not hold for a window set.

    The paper assumes every window's range is a multiple of its slide so
    that recurrence counts are integers (Section III-B, footnote 1).
    """


class UnsupportedAggregateError(ReproError, ValueError):
    """An aggregate function cannot be computed the requested way.

    Raised, for example, when a holistic aggregate (MEDIAN) is asked to
    merge sub-aggregates, or when a partitioned-by-only aggregate (SUM)
    is combined over a merely *covered* (overlapping) window.
    """


class PlanError(ReproError, ValueError):
    """A logical query plan is structurally invalid."""


class SqlError(ReproError, ValueError):
    """Base class for errors from the SQL front end."""


class SqlSyntaxError(SqlError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class SqlSemanticError(SqlError):
    """The query parsed but is semantically invalid (unknown aggregate,
    duplicate window names, bad time units, ...)."""


class ExecutionError(ReproError, RuntimeError):
    """A streaming engine failed while executing a plan."""
