"""Exhaustive factor-window search — the paper's "ideal, optimal" bound.

Footnote 3 of Section IV notes that Algorithm 3 is a heuristic for an
NP-hard Steiner-tree problem: an optimal solver would enumerate *all*
valid candidate factor windows, insert them into the WCG, and solve the
Steiner tree exactly.  This module implements that search for small
instances so tests and ablation benchmarks can measure the gap.

The search enumerates every subset (up to ``max_factors``) of the full
candidate pool and runs Algorithm 1 on each expanded graph.  Because
Algorithm 1 is exact once the node set is fixed, the minimum over all
subsets is the true optimum within the candidate pool.
"""

from __future__ import annotations

import math
from functools import lru_cache
from itertools import combinations
from typing import Iterable

from ..errors import CostModelError
from ..windows.coverage import CoverageSemantics, strictly_relates
from ..windows.window import Window, WindowSet
from .cost import CostModel, MinCostWCG, minimize_cost, prune_useless_factors
from .factor import _divisors
from .wcg import WindowCoverageGraph


@lru_cache(maxsize=256)
def _pool_cached(
    user: tuple[Window, ...], semantics: CoverageSemantics
) -> tuple[Window, ...]:
    """Uncapped candidate pool for a window tuple (memoized).

    The exhaustive search and its ablation benchmarks enumerate the
    same pool for every subset size; windows are immutable and
    hashable, so the pool is a pure function of ``(user, semantics)``.
    """
    pool: list[Window] = []
    seen: set[Window] = set(user)
    if semantics is CoverageSemantics.PARTITIONED_BY:
        for window in user:
            for rf in _divisors(window.range):
                if rf == window.range:
                    continue
                factor = Window(rf, rf)
                if factor in seen:
                    continue
                if strictly_relates(window, factor, semantics):
                    pool.append(factor)
                    seen.add(factor)
    else:
        divisors = set()
        for window in user:
            divisors.update(_divisors(window.slide))
        r_max = max(w.range for w in user)
        for sf in sorted(divisors):
            for rf in range(sf, r_max + 1, sf):
                factor = Window(rf, sf)
                if factor in seen:
                    continue
                if any(strictly_relates(w, factor, semantics) for w in user):
                    pool.append(factor)
                    seen.add(factor)
    return tuple(sorted(pool))


def candidate_pool(
    windows: "WindowSet | Iterable[Window]",
    semantics: CoverageSemantics,
    max_candidates: int = 64,
) -> list[Window]:
    """All windows that cover at least one user window (Definition 6).

    For ``partitioned_by``: tumbling windows whose range divides some
    user range.  For ``covered_by``: windows ``⟨rf, sf⟩`` with ``sf``
    dividing some user slide and ``rf`` a multiple of ``sf`` up to the
    largest user range.  The pool is capped to keep the search finite.
    """
    pool = _pool_cached(tuple(windows), semantics)
    if len(pool) > max_candidates:
        raise CostModelError(
            f"candidate pool has {len(pool)} windows; exhaustive search is "
            f"capped at {max_candidates} (pass a larger max_candidates to "
            "override at your own peril)"
        )
    return list(pool)


def exhaustive_min_cost(
    windows: "WindowSet | Iterable[Window]",
    semantics: CoverageSemantics,
    model: "CostModel | None" = None,
    max_factors: int = 3,
    max_candidates: int = 64,
) -> MinCostWCG:
    """The cheapest min-cost WCG over all factor subsets of the pool.

    Exponential in ``max_factors`` — intended for ablation on window
    sets of a handful of windows only.
    """
    model = model or CostModel()
    window_set = windows if isinstance(windows, WindowSet) else WindowSet(list(windows))
    window_set.validate_for_cost_model()
    pool = candidate_pool(window_set, semantics, max_candidates)
    period = model.hyper_period(window_set)

    best: MinCostWCG | None = None
    subsets: Iterable[tuple[Window, ...]] = (
        subset
        for size in range(min(max_factors, len(pool)) + 1)
        for subset in combinations(pool, size)
    )
    for subset in subsets:
        graph = WindowCoverageGraph.build(
            window_set, semantics, factors=subset
        )
        result = minimize_cost(graph, model, period=period)
        result = prune_useless_factors(result)
        if best is None or result.total_cost < best.total_cost:
            best = result
    assert best is not None  # at least the empty subset ran
    return best


def optimality_gap(
    heuristic_cost: int, optimal_cost: int
) -> float:
    """Relative gap ``(heuristic - optimal) / optimal`` (0.0 = optimal)."""
    if optimal_cost <= 0:
        return 0.0
    return (heuristic_cost - optimal_cost) / optimal_cost


def _subset_count(pool_size: int, max_factors: int) -> int:
    """Number of subsets the exhaustive search will evaluate."""
    return sum(
        math.comb(pool_size, size)
        for size in range(min(max_factors, pool_size) + 1)
    )
