"""The one optimize→rewrite pipeline every front end shares.

Before the live runtime existed, each entry point re-implemented the
same sequence — the SQL compiler (`sql/compile.plan_query`), the
multi-query workload optimizer (`core/multiquery`), and the examples
all called :func:`~repro.core.optimizer.optimize` and
:func:`~repro.core.rewrite.rewrite_plan` with slightly different
plumbing.  :func:`plan_windows` is now the single entry point: window
set + aggregate in, :class:`PlannedWindows` out, carrying the
optimization result and every executable plan variant.

Holistic aggregates (no coverage semantics) come back with only the
original plan — exactly the Section III-A fallback every caller had
duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aggregates.base import AggregateFunction
from ..plans.builder import original_plan
from ..plans.nodes import LogicalPlan
from ..windows.coverage import CoverageSemantics
from ..windows.window import Window, WindowSet
from .optimizer import OptimizationResult, optimize
from .rewrite import rewrite_plan


@dataclass
class PlannedWindows:
    """Optimization outcome plus every executable plan variant."""

    optimization: OptimizationResult
    original: LogicalPlan
    rewritten: "LogicalPlan | None"
    with_factors: "LogicalPlan | None"

    @property
    def best_plan(self) -> LogicalPlan:
        """The plan the optimizer recommends executing."""
        best = self.optimization.best
        if best is None:
            return self.original
        if (
            self.optimization.with_factors is best
            and self.with_factors is not None
        ):
            return self.with_factors
        if (
            self.rewritten is not None
            and best is self.optimization.without_factors
        ):
            return self.rewritten
        return self.original

    @property
    def best_cost(self) -> int:
        return self.optimization.best_cost


def plan_windows(
    windows: "WindowSet | list[Window] | tuple[Window, ...]",
    aggregate: AggregateFunction,
    event_rate: int = 1,
    enable_factor_windows: bool = True,
    source_name: str = "Input",
    label: "str | None" = None,
    semantics_override: "CoverageSemantics | None" = None,
) -> PlannedWindows:
    """Optimize a window set and rewrite every variant into plans.

    ``label`` overrides the rewritten plans' description (the workload
    optimizer labels shared group plans ``shared[<aggregate>]``).
    """
    optimization = optimize(
        windows,
        aggregate,
        event_rate=event_rate,
        enable_factor_windows=enable_factor_windows,
        semantics_override=semantics_override,
    )
    original = original_plan(
        optimization.windows, aggregate, source_name=source_name
    )
    rewritten = None
    with_factors = None
    if optimization.without_factors is not None:
        rewritten = rewrite_plan(
            optimization.without_factors,
            aggregate,
            source_name=source_name,
            description=label or "rewritten",
        )
    if optimization.with_factors is not None:
        with_factors = rewrite_plan(
            optimization.with_factors,
            aggregate,
            source_name=source_name,
            description=label or "rewritten+factors",
        )
    return PlannedWindows(
        optimization=optimization,
        original=original,
        rewritten=rewritten,
        with_factors=with_factors,
    )
