"""EXPLAIN: human-readable traces of the optimizer's decisions.

Every cost-based optimizer needs an EXPLAIN path — both for users
("why did my query get this plan?") and for debugging the optimizer
itself.  :func:`explain` re-derives, for a finished
:class:`~repro.core.optimizer.OptimizationResult`:

* the coverage relationships found (the WCG edges),
* every provider considered per window with its per-instance and total
  cost, and which one won,
* the factor windows inserted, with their benefit accounting,
* the final cost arithmetic (matching ``summary()``'s totals).
"""

from __future__ import annotations

from ..windows.coverage import covering_multiplier, strictly_relates
from ..windows.window import VIRTUAL_ROOT, Window
from .cost import CostModel, MinCostWCG
from .optimizer import OptimizationResult
from .wcg import WindowCoverageGraph


def _provider_lines(
    gmin: MinCostWCG,
    graph: WindowCoverageGraph,
    model: CostModel,
    indent: str = "    ",
) -> list[str]:
    lines: list[str] = []
    for window in gmin.graph.nodes:
        if window is VIRTUAL_ROOT:
            continue
        n = model.recurrence_count(window, gmin.period)
        tag = " (factor)" if gmin.graph.is_factor(window) else ""
        lines.append(f"  {window.label}{tag}: n = {n} instances/period")
        options: list[tuple[int, str]] = []
        raw_cost = n * model.raw_instance_cost(window)
        options.append(
            (raw_cost, f"raw events @ η·r = {model.raw_instance_cost(window)}")
        )
        for provider in graph.nodes:
            if provider is window or provider is VIRTUAL_ROOT:
                continue
            if strictly_relates(window, provider, graph.semantics):
                m = covering_multiplier(window, provider)
                options.append((n * m, f"from {provider.label} @ M = {m}"))
        options.sort(key=lambda pair: pair[0])
        chosen = gmin.provider.get(window)
        chosen_label = (
            "raw events" if gmin.reads_raw(window) else f"from {chosen.label}"
        )
        for cost, label in options:
            marker = "->" if label.startswith(chosen_label.split(" @ ")[0]) or (
                label.startswith("raw") and gmin.reads_raw(window)
            ) else "  "
            lines.append(f"{indent}{marker} cost {cost:>8}  {label}")
        lines.append(
            f"{indent}chosen: {chosen_label}"
            f"  (cost {gmin.costs.get(window, 0)})"
        )
    return lines


def _physical_section(result: OptimizationResult, engine: str) -> list[str]:
    """Physical execution paths of the best plan on ``engine``."""
    from ..plans.render import physical_paths
    from .rewrite import rewrite_plan

    best = result.best
    if best is None:
        return [f"physical paths ({engine}): original plan only"]
    plan = rewrite_plan(best, result.aggregate)
    lines = [f"physical paths ({engine}):"]
    for window, path in physical_paths(plan, engine).items():
        lines.append(f"  {window.label}: {path}")
    return lines


def _shard_section(result: OptimizationResult, shards) -> list[str]:
    """Key-shard fan-out of the winning plan (DESIGN.md §7).

    ``shards`` is a fan-out count or a live
    :class:`~repro.runtime.ShardedSession`; a session contributes its
    decayed per-shard load counters (DESIGN.md §12) so the trace shows
    where the stream's weight currently sits.
    """
    from ..plans.render import (
        resolve_shards,
        shard_load_lines,
        shard_merge_description,
    )

    shards, loads = resolve_shards(shards)
    lines = [
        f"shard fan-out (x{shards} key-hash shards):",
        "  plan replicated per shard over a disjoint key slice; "
        "workload mutations broadcast at one safe watermark",
        f"  merge ({result.aggregate.name}): "
        f"{shard_merge_description(result.aggregate)}",
    ]
    if loads is not None:
        lines.append("  load (decayed, per shard):")
        lines.extend(shard_load_lines(loads, indent="    "))
    return lines


def explain(
    result: OptimizationResult,
    engine: "str | None" = None,
    shards: "int | object | None" = None,
) -> str:
    """Render the full optimization trace for ``result``.

    With ``engine`` given, append the physical execution path each
    window of the winning plan takes on that engine (DESIGN.md §5) —
    the logical/physical split makes "what the optimizer chose" and
    "what the engine does" separately inspectable.  With ``shards``
    given — a fan-out count or a live
    :class:`~repro.runtime.ShardedSession` — also append the key-shard
    fan-out the sharded runtime would execute the plan under
    (DESIGN.md §7), including the session's decayed per-shard load
    counters when a session is passed (DESIGN.md §12).
    """
    lines = [
        "EXPLAIN multi-window aggregate optimization",
        f"aggregate : {result.aggregate.name} "
        f"({result.aggregate.taxonomy})",
        f"semantics : {result.semantics or 'none (holistic fallback)'}",
        f"event rate: η = {result.event_rate}",
        f"windows   : "
        + ", ".join(w.label for w in result.windows),
    ]
    if result.semantics is None:
        lines.append(
            "no rewriting: holistic aggregates cannot merge sub-aggregates;"
        )
        lines.append(f"original plan cost = {result.baseline_cost}")
        if engine is not None:
            lines.extend(_physical_section(result, engine))
        if shards is not None:
            lines.extend(_shard_section(result, shards))
        return "\n".join(lines)

    model = CostModel(event_rate=result.event_rate)
    gmin = result.without_factors
    assert gmin is not None
    lines.append(
        f"hyper-period R = {gmin.period}; baseline (independent) cost "
        f"= {result.baseline_cost}"
    )

    graph = WindowCoverageGraph.build(result.windows, result.semantics)
    edges = [
        f"{p.label} -> {c.label}"
        for p, c in graph.edges
        if p is not VIRTUAL_ROOT
    ]
    lines.append("")
    lines.append(f"coverage edges ({len(edges)}): " + (", ".join(edges) or "none"))

    lines.append("")
    lines.append(f"[Algorithm 1] min-cost WCG — total {gmin.total_cost}")
    lines.extend(_provider_lines(gmin, graph, model))

    factored = result.with_factors
    if factored is not None:
        lines.append("")
        lines.append(
            f"[Algorithm 3] with factor windows — total "
            f"{factored.total_cost}"
        )
        if result.inserted_factors:
            for candidate in result.inserted_factors:
                kept = candidate.window in factored.factor_windows
                status = "kept" if kept else "pruned (unused after Alg 1)"
                lines.append(
                    f"  inserted {candidate.window.label} "
                    f"(benefit {candidate.benefit}) — {status}"
                )
            factor_graph = WindowCoverageGraph.build(
                result.windows,
                result.semantics,
                factors=factored.factor_windows,
            )
            lines.extend(_provider_lines(factored, factor_graph, model))
        else:
            lines.append("  no beneficial factor window found")

    lines.append("")
    best = "with factor windows" if result.best is factored else (
        "without factor windows"
    )
    lines.append(
        f"decision: plan {best}; predicted speedup "
        f"{result.predicted_speedup:.2f}x over the original plan"
    )
    if engine is not None:
        lines.append("")
        lines.extend(_physical_section(result, engine))
    if shards is not None:
        lines.append("")
        lines.extend(_shard_section(result, shards))
    return "\n".join(lines)
