"""Core contribution: WCG, cost model, factor windows, rewriting."""

from .adaptive import (
    AdaptiveOptimizer,
    AdaptiveSimulation,
    PlanSwitch,
    RateEstimator,
    plan_cost_at_rate,
    simulate_adaptive,
)
from .cost import CostModel, MinCostWCG, minimize_cost, prune_useless_factors
from .multiquery import Query, SharedGroup, WorkloadPlan, optimize_workload
from .exhaustive import candidate_pool, exhaustive_min_cost, optimality_gap
from .explain import explain
from .factor import (
    FactorCandidate,
    factor_benefit,
    find_best_factor,
    find_best_factor_covered,
    find_best_factor_partitioned,
    generate_candidates_covered,
    generate_candidates_partitioned,
    is_beneficial_partitioned,
    prefer_candidate,
    prune_dependent_candidates,
)
from .optimizer import (
    OptimizationResult,
    min_cost_wcg,
    min_cost_wcg_with_factors,
    optimize,
)
from .rewrite import rewrite_plan
from .wcg import WindowCoverageGraph

__all__ = [
    "AdaptiveOptimizer",
    "AdaptiveSimulation",
    "CostModel",
    "PlanSwitch",
    "Query",
    "SharedGroup",
    "WorkloadPlan",
    "optimize_workload",
    "RateEstimator",
    "plan_cost_at_rate",
    "simulate_adaptive",
    "FactorCandidate",
    "MinCostWCG",
    "OptimizationResult",
    "WindowCoverageGraph",
    "candidate_pool",
    "exhaustive_min_cost",
    "explain",
    "factor_benefit",
    "find_best_factor",
    "find_best_factor_covered",
    "find_best_factor_partitioned",
    "generate_candidates_covered",
    "generate_candidates_partitioned",
    "is_beneficial_partitioned",
    "min_cost_wcg",
    "min_cost_wcg_with_factors",
    "minimize_cost",
    "optimality_gap",
    "optimize",
    "prefer_candidate",
    "prune_dependent_candidates",
    "prune_useless_factors",
    "rewrite_plan",
]
