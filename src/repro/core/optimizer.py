"""The cost-based optimizer: Algorithm 1 and Algorithm 3 facades.

This is the entry point a query compiler calls: given a window set and
an aggregate function, produce the min-cost WCG without factor windows
(Algorithm 1) and with them (Algorithm 3), pick the cheaper, and report
costs, timings, and predicted speedups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..aggregates.base import AggregateFunction
from ..errors import CostModelError
from ..windows.coverage import CoverageSemantics
from ..windows.window import VIRTUAL_ROOT, Window, WindowSet
from .cost import CostModel, MinCostWCG, minimize_cost, prune_useless_factors
from .factor import (
    FactorCandidate,
    direct_downstream,
    generate_candidates_covered,
    generate_candidates_partitioned,
    global_factor_benefit,
)
from .wcg import WindowCoverageGraph


@dataclass
class OptimizationResult:
    """Everything the optimizer decided for one query.

    Attributes
    ----------
    windows / aggregate / semantics / event_rate:
        The optimization inputs (semantics is ``None`` for holistic
        aggregates, in which case no rewriting happens).
    baseline_cost:
        Cost of the original (independent-evaluation) plan.
    without_factors / with_factors:
        Min-cost WCGs from Algorithm 1 and Algorithm 3.  ``with_factors``
        is ``None`` when factor search was disabled or not applicable.
    inserted_factors:
        Factor windows Algorithm 3 inserted (before pruning).
    optimize_seconds:
        Wall-clock optimizer time (the paper's Figure 12 metric).
    """

    windows: WindowSet
    aggregate: AggregateFunction
    semantics: "CoverageSemantics | None"
    event_rate: int
    baseline_cost: int
    without_factors: "MinCostWCG | None" = None
    with_factors: "MinCostWCG | None" = None
    inserted_factors: tuple[FactorCandidate, ...] = field(default_factory=tuple)
    optimize_seconds: float = 0.0

    @property
    def best(self) -> "MinCostWCG | None":
        """The cheapest min-cost WCG found (factor plan wins ties)."""
        if self.with_factors is None:
            return self.without_factors
        if self.without_factors is None:
            return self.with_factors
        if self.with_factors.total_cost <= self.without_factors.total_cost:
            return self.with_factors
        return self.without_factors

    @property
    def best_cost(self) -> int:
        best = self.best
        return self.baseline_cost if best is None else best.total_cost

    @property
    def predicted_speedup(self) -> float:
        """``γ_C`` of the best plan against the original plan."""
        if self.best_cost == 0:
            return float("inf")
        return self.baseline_cost / self.best_cost

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"aggregate={self.aggregate.name} semantics={self.semantics}",
            f"baseline cost      : {self.baseline_cost}",
        ]
        if self.without_factors is not None:
            lines.append(
                f"w/o factor windows : {self.without_factors.total_cost}"
            )
        if self.with_factors is not None:
            factors = ", ".join(
                w.label for w in self.with_factors.factor_windows
            ) or "none kept"
            lines.append(
                f"w/ factor windows  : {self.with_factors.total_cost}"
                f" (factors: {factors})"
            )
        lines.append(f"predicted speedup  : {self.predicted_speedup:.2f}x")
        return "\n".join(lines)


def min_cost_wcg(
    windows: "WindowSet | Iterable[Window]",
    semantics: CoverageSemantics,
    model: "CostModel | None" = None,
) -> MinCostWCG:
    """Algorithm 1: min-cost WCG without factor windows."""
    model = model or CostModel()
    window_set = windows if isinstance(windows, WindowSet) else WindowSet(list(windows))
    window_set.validate_for_cost_model()
    graph = WindowCoverageGraph.build(window_set, semantics)
    return minimize_cost(graph, model)


def min_cost_wcg_with_factors(
    windows: "WindowSet | Iterable[Window]",
    semantics: CoverageSemantics,
    model: "CostModel | None" = None,
) -> tuple[MinCostWCG, tuple[FactorCandidate, ...]]:
    """Algorithm 3: min-cost WCG with factor windows.

    For every node of the augmented WCG that has downstream windows,
    generate candidate factor windows (Algorithm 2 or 5's candidate
    space) and insert the one with the best benefit; then run
    Algorithm 1 over the expanded graph and prune factor windows
    nothing reads from.

    Deviations from the paper (see DESIGN.md §3): candidates are priced
    with :func:`~repro.core.factor.global_factor_benefit` — the exact
    total-cost delta against the windows' current best providers —
    instead of Equation 2's read-from-target assumption.  The paper's
    formula can over-estimate savings and insert a factor that makes
    the final plan *worse*; the global gate makes improvement over
    Algorithm 1 a guarantee, which our property tests enforce.

    Candidates are additionally generated from every *pair* of the
    target's strict descendants, not only from its direct consumers as
    a set.  Algorithm 2/5 derive the candidate space from the gcd of
    all downstream slides (ranges), so a factor serving only a subset
    of the downstream windows is invisible to them — e.g. in
    {W(4,4), W(20,20), W(30,30)}, W(20,20) hangs under W(4,4) and no
    target ever sees the pair {20, 30} whose gcd admits the winning
    factor W(10,10).  Pairwise gcds are a superset of every larger
    subset's gcd, so pair generation covers all multi-consumer
    factors; the exact benefit gate keeps insertion regression-safe.
    """
    model = model or CostModel()
    window_set = windows if isinstance(windows, WindowSet) else WindowSet(list(windows))
    window_set.validate_for_cost_model()
    period = model.hyper_period(window_set)
    graph = WindowCoverageGraph.build(window_set, semantics)
    inserted: list[FactorCandidate] = []

    generate = (
        generate_candidates_partitioned
        if semantics is CoverageSemantics.PARTITIONED_BY
        else generate_candidates_covered
    )
    for target in list(graph.nodes):
        downstream = list(graph.consumers_of(target))
        if not downstream:
            continue
        descendants = direct_downstream(graph.nodes, target, semantics)
        subsets: list[list[Window]] = [downstream]
        for i in range(len(descendants)):
            for j in range(i + 1, len(descendants)):
                subsets.append([descendants[i], descendants[j]])
        best: FactorCandidate | None = None
        seen: set[Window] = set()
        for subset in subsets:
            for window in generate(target, subset, exclude=graph.nodes):
                if window in seen:
                    continue
                seen.add(window)
                benefit = global_factor_benefit(graph, window, period, model)
                if benefit > 0 and (best is None or benefit > best.benefit):
                    best = FactorCandidate(window, benefit)
        if best is not None and not graph.has_node(best.window):
            graph.insert_factor(best.window)
            inserted.append(best)

    result = minimize_cost(graph, model, period=period)
    result = prune_useless_factors(result)
    return result, tuple(inserted)


def optimize(
    windows: "WindowSet | Iterable[Window]",
    aggregate: AggregateFunction,
    event_rate: int = 1,
    enable_factor_windows: bool = True,
    semantics_override: "CoverageSemantics | None" = None,
) -> OptimizationResult:
    """Optimize a multi-window aggregate query end to end.

    Holistic aggregates cannot share sub-aggregates; for them the
    result carries only the baseline cost and no rewritten WCG (the
    caller falls back to the original plan, Section III-A).

    ``semantics_override`` forces a coverage relation instead of the
    aggregate's default.  Forcing ``partitioned_by`` is always sound
    (it is a sub-relation of ``covered_by``); forcing ``covered_by``
    requires an aggregate that merges over overlapping partitions
    (Theorem 6).  The paper's evaluation uses this to run MIN under
    both semantics (Section V-B).
    """
    window_set = windows if isinstance(windows, WindowSet) else WindowSet(list(windows))
    if len(window_set) == 0:
        raise CostModelError("cannot optimize an empty window set")
    model = CostModel(event_rate=event_rate)
    semantics = aggregate.semantics
    if semantics_override is not None:
        if semantics is None:
            raise CostModelError(
                f"holistic aggregate {aggregate.name} supports no coverage "
                "semantics"
            )
        if (
            semantics_override is CoverageSemantics.COVERED_BY
            and not aggregate.supports_overlapping_merge
        ):
            raise CostModelError(
                f"{aggregate.name} cannot use covered_by semantics: it is "
                "not distributive over overlapping partitions"
            )
        semantics = semantics_override
    started = time.perf_counter()
    baseline = model.baseline_cost(window_set)

    result = OptimizationResult(
        windows=window_set,
        aggregate=aggregate,
        semantics=semantics,
        event_rate=event_rate,
        baseline_cost=baseline,
    )
    if semantics is None:
        result.optimize_seconds = time.perf_counter() - started
        return result

    result.without_factors = min_cost_wcg(window_set, semantics, model)
    if enable_factor_windows:
        result.with_factors, result.inserted_factors = (
            min_cost_wcg_with_factors(window_set, semantics, model)
        )
    result.optimize_seconds = time.perf_counter() - started
    return result
