"""Rate-aware adaptive re-optimization (the paper's §VI future work).

The paper's cost model is static: it prices plans for one assumed event
rate η.  Section VI calls out "how to dynamically adjust cost estimates
at runtime by keeping track of the input event rates" as future work.
This module provides exactly that:

* :class:`RateEstimator` — an exponentially-weighted estimate of the
  stream's events-per-tick rate, fed from observed batches;
* :class:`RateController` — estimator + hysteresis replan gate: the
  policy object a *live* :class:`~repro.runtime.QuerySession` feeds
  from real chunk boundaries (rate drift there triggers a watermark-
  safe plan switch, DESIGN.md §6);
* :class:`AdaptiveOptimizer` — re-optimizes when the controller
  triggers, caching plans per rate;
* :func:`simulate_adaptive` — replays a rate trace epoch by epoch and
  accounts the cost of the adaptive policy against two references: the
  static plan optimized once for the initial rate, and the oracle that
  re-optimizes every epoch.

Why rate matters at all: raw-event reads cost ``η·r`` per instance
while sub-aggregate reads cost ``M`` independent of η (Observation 1).
A factor window's benefit is therefore ``η·(Σ nj·rj − nf·rf) −
Σ nj·Mjf``-shaped — negative at low rates (the factor's own raw pass
dominates) and positive at high ones, so the *optimal plan changes with
the rate*, which is what makes adaptivity worth having.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..aggregates.base import AggregateFunction
from ..errors import CostModelError
from ..windows.window import VIRTUAL_ROOT, WindowSet
from .cost import CostModel, MinCostWCG
from .optimizer import OptimizationResult, optimize


class RateEstimator:
    """EWMA estimator of the stream's event rate (events per tick).

    ``alpha`` close to 1 adapts quickly but jitters; close to 0 smooths
    but lags.  The first observation initializes the estimate directly.
    """

    def __init__(self, alpha: float = 0.3, initial_rate: "float | None" = None):
        if not 0.0 < alpha <= 1.0:
            raise CostModelError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._estimate: float | None = initial_rate
        self.observations = 0

    def observe(self, events: int, ticks: int) -> float:
        """Feed one observation window and return the new estimate."""
        if ticks <= 0:
            raise CostModelError(f"observation ticks must be > 0, got {ticks}")
        if events < 0:
            raise CostModelError(f"events must be >= 0, got {events}")
        rate = events / ticks
        if self._estimate is None:
            self._estimate = rate
        else:
            self._estimate = (
                self.alpha * rate + (1.0 - self.alpha) * self._estimate
            )
        self.observations += 1
        return self._estimate

    @property
    def rate(self) -> float:
        if self._estimate is None:
            raise CostModelError("rate estimator has no observations yet")
        return self._estimate

    @property
    def integer_rate(self) -> int:
        """The cost model needs an integer η >= 1."""
        return max(1, round(self.rate))


class RateController:
    """EWMA rate estimator behind a hysteresis replan gate.

    :meth:`observe` feeds one observation window and returns the new
    integer rate when the drift against the currently-planned rate
    exceeds ``hysteresis`` (meaning: re-plan now), else ``None``.  The
    caller decides what re-planning means — the simulator re-optimizes
    one query, the live session re-prices every shared group.
    """

    def __init__(
        self,
        hysteresis: float = 0.25,
        alpha: float = 0.3,
        initial_rate: "float | None" = None,
    ):
        if hysteresis < 0:
            raise CostModelError("hysteresis must be >= 0")
        self.hysteresis = hysteresis
        self.estimator = RateEstimator(alpha=alpha, initial_rate=initial_rate)
        self.planned_rate: "int | None" = (
            None if initial_rate is None else max(1, round(initial_rate))
        )

    def observe(self, events: int, ticks: int) -> "int | None":
        """Feed one observation; return the new rate iff a replan is due."""
        self.estimator.observe(events, ticks)
        rate = self.estimator.integer_rate
        if self.planned_rate is not None:
            drift = abs(rate - self.planned_rate) / self.planned_rate
            if drift <= self.hysteresis:
                return None
        self.planned_rate = rate
        return rate


@dataclass
class PlanSwitch:
    """Record of one re-optimization decision."""

    epoch: int
    rate: int
    cost: int
    used_factors: bool


class AdaptiveOptimizer:
    """Re-optimizes a query when the observed rate drifts.

    ``hysteresis`` is the relative rate change that triggers
    re-optimization (0.25 = re-plan on a ±25% drift).  Plans are cached
    per integer rate, so oscillating rates do not re-run the search.
    """

    def __init__(
        self,
        windows: WindowSet,
        aggregate: AggregateFunction,
        hysteresis: float = 0.25,
        alpha: float = 0.3,
    ):
        self.windows = windows
        self.aggregate = aggregate
        self.controller = RateController(hysteresis=hysteresis, alpha=alpha)
        self.estimator = self.controller.estimator
        self.hysteresis = hysteresis
        self._cache: dict[int, OptimizationResult] = {}
        self._current: OptimizationResult | None = None
        self.switches: list[PlanSwitch] = []

    @property
    def current(self) -> OptimizationResult:
        if self._current is None:
            raise CostModelError("no plan yet: call observe() first")
        return self._current

    def observe(self, events: int, ticks: int, epoch: int = 0) -> bool:
        """Feed an observation; returns True when the plan changed."""
        rate = self.controller.observe(events, ticks)
        if rate is None:
            return False
        result = self._cache.get(rate)
        if result is None:
            result = optimize(self.windows, self.aggregate, event_rate=rate)
            self._cache[rate] = result
        changed = self._current is None or not _same_plan(
            self._current.best, result.best
        )
        self._current = result
        if changed:
            self.switches.append(
                PlanSwitch(
                    epoch=epoch,
                    rate=rate,
                    cost=result.best_cost,
                    used_factors=bool(
                        result.with_factors is result.best
                        and result.with_factors.factor_windows
                    ),
                )
            )
        return changed


def _same_plan(left: "MinCostWCG | None", right: "MinCostWCG | None") -> bool:
    if left is None or right is None:
        return left is right
    return left.provider == right.provider


def plan_cost_at_rate(
    result: OptimizationResult, rate: int
) -> int:
    """Re-price an already-chosen plan under a different event rate.

    Providers stay fixed; only raw-read instance costs scale with η.
    This is what a static plan actually costs once the rate drifts.
    """
    best = result.best
    model = CostModel(event_rate=rate)
    if best is None:
        return model.baseline_cost(result.windows)
    total = 0
    for window in best.graph.nodes:
        if window is VIRTUAL_ROOT:
            continue
        n = model.recurrence_count(window, best.period)
        total += n * model.instance_cost(window, best.provider[window])
    return total


@dataclass
class AdaptiveSimulation:
    """Outcome of :func:`simulate_adaptive` over a rate trace."""

    adaptive_cost: int = 0
    static_cost: int = 0
    oracle_cost: int = 0
    switches: list[PlanSwitch] = field(default_factory=list)
    epoch_rates: list[int] = field(default_factory=list)

    @property
    def regret(self) -> float:
        """Adaptive cost over oracle cost (1.0 = perfect)."""
        if self.oracle_cost == 0:
            return 1.0
        return self.adaptive_cost / self.oracle_cost

    @property
    def savings_vs_static(self) -> float:
        """Fraction of the static plan's cost the adaptive policy saves."""
        if self.static_cost == 0:
            return 0.0
        return 1.0 - self.adaptive_cost / self.static_cost


def simulate_adaptive(
    windows: WindowSet,
    aggregate: AggregateFunction,
    rate_trace: Sequence[int],
    epoch_ticks: "int | None" = None,
    hysteresis: float = 0.25,
    alpha: float = 0.5,
) -> AdaptiveSimulation:
    """Replay ``rate_trace`` (events/tick per epoch) against three
    policies and account per-epoch plan costs.

    Each epoch spans one hyper-period (or ``epoch_ticks``).  *Static*
    optimizes once for the first epoch's rate and never re-plans;
    *adaptive* follows :class:`AdaptiveOptimizer`; *oracle* re-optimizes
    with the true rate every epoch.
    """
    if not rate_trace:
        raise CostModelError("rate trace must be non-empty")
    model = CostModel()
    period = epoch_ticks or model.hyper_period(windows)

    static = optimize(windows, aggregate, event_rate=max(1, rate_trace[0]))
    adaptive = AdaptiveOptimizer(
        windows, aggregate, hysteresis=hysteresis, alpha=alpha
    )
    outcome = AdaptiveSimulation()

    oracle_cache: dict[int, OptimizationResult] = {}
    for epoch, rate in enumerate(rate_trace):
        rate = max(1, int(rate))
        outcome.epoch_rates.append(rate)
        adaptive.observe(rate * period, period, epoch=epoch)

        outcome.static_cost += plan_cost_at_rate(static, rate)
        outcome.adaptive_cost += plan_cost_at_rate(adaptive.current, rate)
        oracle = oracle_cache.get(rate)
        if oracle is None:
            oracle = optimize(windows, aggregate, event_rate=rate)
            oracle_cache[rate] = oracle
        outcome.oracle_cost += oracle.best_cost

    outcome.switches = list(adaptive.switches)
    return outcome
