"""Multi-query optimization: sharing across concurrent queries.

The paper's motivating scenario (Section I) is Azure IoT Central:
*multiple* dashboard queries — often 5 to 10 — over the *same* device
stream, each with its own window sizes.  The paper optimizes one query
at a time; this module extends the framework to a query *workload*:

1. Queries are grouped by (aggregate function, coverage semantics) —
   sub-aggregates are only interchangeable within such a group.
2. Each group's window sets are merged into one combined window set
   (duplicates collapse: two dashboards asking for the same hourly MIN
   share one operator outright).
3. The combined set is optimized with Algorithms 1 + 3, so coverage
   *between* queries is exploited and one factor window can serve many
   queries.
4. The merged min-cost WCG is rewritten into one shared plan per group,
   with a routing table mapping every (query, window) back to its
   operator.

The result is compared against per-query optimization: the shared plan
is never worse, because the merged WCG's provider options are a
superset of every individual query's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..aggregates.base import AggregateFunction
from ..errors import CostModelError
from ..plans.nodes import LogicalPlan
from ..windows.coverage import CoverageSemantics
from ..windows.window import Window, WindowSet
from .cost import CostModel, MinCostWCG
from .optimizer import min_cost_wcg_with_factors, optimize
from .rewrite import rewrite_plan


@dataclass(frozen=True)
class Query:
    """One query of the workload: an aggregate over a window set."""

    name: str
    windows: WindowSet
    aggregate: AggregateFunction

    def __post_init__(self) -> None:
        if len(self.windows) == 0:
            raise CostModelError(f"query {self.name!r} has no windows")


@dataclass
class SharedGroup:
    """One (aggregate, semantics) group of the optimized workload.

    All costs are normalized to the *workload* hyper-period (the lcm of
    every window range in the workload): plan costs are periodic, so
    cost over ``k·R`` is exactly ``k`` times the cost over ``R``, which
    makes costs of different window sets comparable and additive.
    """

    aggregate: AggregateFunction
    semantics: "CoverageSemantics | None"
    queries: list[Query]
    combined: "WindowSet | None" = None
    gmin: "MinCostWCG | None" = None
    plan: "LogicalPlan | None" = None
    shared_cost: int = 0  # over the workload hyper-period

    def routing(self) -> dict[tuple[str, Window], Window]:
        """(query name, requested window) → operator window.

        Identity mapping today (merged operators keep their windows),
        but gives callers a stable contract if future versions remap.
        """
        table = {}
        for query in self.queries:
            for window in query.windows:
                table[(query.name, window)] = window
        return table


@dataclass
class WorkloadPlan:
    """Result of optimizing a whole query workload.

    All costs are over one workload hyper-period (``period``).
    """

    groups: list[SharedGroup] = field(default_factory=list)
    independent_cost: int = 0
    baseline_cost: int = 0
    period: int = 0

    @property
    def shared_cost(self) -> int:
        return sum(group.shared_cost for group in self.groups)

    @property
    def sharing_gain(self) -> float:
        """Per-query-optimal cost over shared cost (≥ 1)."""
        if self.shared_cost == 0:
            return float("inf")
        return self.independent_cost / self.shared_cost

    @property
    def total_speedup(self) -> float:
        """Naive (unoptimized, unshared) cost over shared cost."""
        if self.shared_cost == 0:
            return float("inf")
        return self.baseline_cost / self.shared_cost

    def summary(self) -> str:
        lines = [
            f"queries            : "
            f"{sum(len(g.queries) for g in self.groups)}"
            f" in {len(self.groups)} shared group(s)",
            f"naive cost         : {self.baseline_cost}",
            f"per-query optimized: {self.independent_cost}",
            f"shared workload    : {self.shared_cost}",
            f"gain from sharing  : {self.sharing_gain:.2f}x",
            f"total speedup      : {self.total_speedup:.2f}x",
        ]
        return "\n".join(lines)


def _group_key(query: Query):
    semantics = query.aggregate.semantics
    return (query.aggregate.name, semantics)


def _merge_window_sets(queries: Sequence[Query]) -> WindowSet:
    merged = WindowSet()
    for query in queries:
        for window in query.windows:
            if window not in merged:
                merged.add(window)
    return merged


def optimize_workload(
    queries: Sequence[Query],
    event_rate: int = 1,
    enable_factor_windows: bool = True,
) -> WorkloadPlan:
    """Optimize a workload of concurrent queries with cross-query
    sharing.

    Also computes the two reference costs used in reports: the naive
    cost (every window of every query evaluated from raw events, with
    duplicate windows across queries each paying full price, as
    independent deployments would) and the per-query-optimized cost
    (each query optimized alone; duplicates still unshared).
    """
    if not queries:
        raise CostModelError("workload must contain at least one query")
    names = [q.name for q in queries]
    if len(set(names)) != len(names):
        raise CostModelError("query names must be unique")

    model = CostModel(event_rate=event_rate)
    workload = WorkloadPlan()

    # Common accounting period: every per-query and per-group cost is
    # scaled from its own hyper-period up to this one, so the sums are
    # apples-to-apples (plan costs are periodic in R).
    import math

    all_ranges = [w.range for q in queries for w in q.windows]
    workload_period = math.lcm(*all_ranges)
    workload.period = workload_period

    groups: dict[tuple, list[Query]] = {}
    for query in queries:
        groups.setdefault(_group_key(query), []).append(query)

    for (_, semantics), members in groups.items():
        aggregate = members[0].aggregate
        group = SharedGroup(
            aggregate=aggregate, semantics=semantics, queries=members
        )
        group_baseline = 0
        for query in members:
            scale = workload_period // model.hyper_period(query.windows)
            query_baseline = scale * model.baseline_cost(query.windows)
            workload.baseline_cost += query_baseline
            group_baseline += query_baseline
            result = optimize(
                query.windows,
                aggregate,
                event_rate=event_rate,
                enable_factor_windows=enable_factor_windows,
            )
            workload.independent_cost += scale * result.best_cost
        if semantics is not None:
            group.combined = _merge_window_sets(members)
            if enable_factor_windows:
                group.gmin, _ = min_cost_wcg_with_factors(
                    group.combined, semantics, model
                )
            else:
                from .optimizer import min_cost_wcg

                group.gmin = min_cost_wcg(group.combined, semantics, model)
            group.plan = rewrite_plan(
                group.gmin,
                aggregate,
                description=f"shared[{aggregate.name}]",
            )
            group_scale = workload_period // group.gmin.period
            group.shared_cost = group_scale * group.gmin.total_cost
        else:
            group.shared_cost = group_baseline
        workload.groups.append(group)
    return workload
